"""Tests for top-down bulk loading."""

import numpy as np
import pytest

from repro.core import HybridTree, compute_stats
from repro.core.bulkload import bulk_load_into
from repro.datasets import clustered_dataset, uniform_dataset
from repro.geometry.rect import Rect
from tests.conftest import brute_force_range, random_boxes


class TestBulkLoad:
    def test_equivalent_results_to_dynamic(self, rng):
        data = uniform_dataset(4000, 8, seed=20)
        bulk = HybridTree.bulk_load(data)
        dynamic = HybridTree(8)
        for oid, v in enumerate(data):
            dynamic.insert(v, oid)
        for query in random_boxes(rng, 8, 15):
            expected = brute_force_range(data, query)
            assert set(bulk.range_search(query)) == expected
            assert set(dynamic.range_search(query)) == expected

    def test_validates(self):
        data = clustered_dataset(6000, 16, clusters=7, seed=21)
        tree = HybridTree.bulk_load(data)
        tree.validate()
        assert len(tree) == 6000

    def test_zero_overlap_after_bulk(self):
        data = uniform_dataset(5000, 8, seed=22)
        tree = HybridTree.bulk_load(data)
        stats = compute_stats(tree)
        assert stats.overlapping_split_count == 0
        assert stats.data_level_overlap_volume == pytest.approx(0.0)

    def test_custom_oids(self):
        data = uniform_dataset(100, 4, seed=23)
        oids = np.arange(1000, 1100, dtype=np.uint32)
        tree = HybridTree.bulk_load(data, oids=oids)
        assert sorted(tree.range_search(Rect.unit(4))) == list(range(1000, 1100))

    def test_small_datasets(self):
        for n in (0, 1, 2, 5):
            data = uniform_dataset(n, 4, seed=24) if n else np.empty((0, 4), np.float32)
            tree = HybridTree.bulk_load(data)
            assert len(tree) == n
            if n:
                tree.validate()
                assert len(tree.range_search(Rect.unit(4))) == n

    def test_single_data_node(self):
        data = uniform_dataset(10, 64, seed=25)
        tree = HybridTree.bulk_load(data)
        assert tree.height == 1
        assert len(tree.range_search(Rect.unit(64))) == 10

    def test_dynamic_inserts_after_bulk(self, rng):
        data = uniform_dataset(3000, 8, seed=26)
        tree = HybridTree.bulk_load(data)
        extra = uniform_dataset(500, 8, seed=27)
        for i, v in enumerate(extra):
            tree.insert(v, 10_000 + i)
        tree.validate()
        everything = np.vstack([data, extra])
        q = random_boxes(rng, 8, 5)[0]
        assert set(tree.range_search(q)) == {
            (i if i < 3000 else 10_000 + i - 3000)
            for i in brute_force_range(everything, q)
        }

    def test_deletes_after_bulk(self):
        data = uniform_dataset(2000, 8, seed=28)
        tree = HybridTree.bulk_load(data)
        for oid in range(700):
            assert tree.delete(data[oid], oid)
        tree.validate()
        assert len(tree) == 1300

    def test_rejects_nonempty_tree(self):
        data = uniform_dataset(50, 4, seed=29)
        tree = HybridTree(4)
        tree.insert(data[0], 0)
        with pytest.raises(ValueError):
            bulk_load_into(tree, data)

    def test_rejects_misaligned_oids(self):
        data = uniform_dataset(50, 4, seed=30)
        with pytest.raises(ValueError):
            HybridTree.bulk_load(data, oids=np.arange(49))

    def test_rejects_wrong_shape(self):
        tree = HybridTree(4)
        with pytest.raises(ValueError):
            bulk_load_into(tree, np.zeros((10, 5), dtype=np.float32))

    def test_utilization_reasonable(self):
        data = uniform_dataset(8000, 16, seed=31)
        tree = HybridTree.bulk_load(data)
        stats = compute_stats(tree)
        assert stats.avg_data_utilization >= 0.5

    def test_duplicates_bulk(self):
        data = np.tile(np.array([[0.5] * 4], dtype=np.float32), (500, 1))
        tree = HybridTree.bulk_load(data)
        tree.validate()
        assert len(tree.point_search(data[0])) == 500


class TestWritePathFixes:
    """Regression tests for the write-path bugfix sweep."""

    def test_bulk_load_marks_tree_modified(self):
        data = uniform_dataset(200, 4, seed=40)
        tree = HybridTree(4)
        bulk_load_into(tree, data)
        assert tree.modified_since_save
        assert tree._soa_snapshot is None

    def test_bulk_into_reopened_empty_tree_requires_save(self, tmp_path):
        """A bulk load is a mutation like any other: the parallel-session
        guard must see it, or workers would silently serve the stale file."""
        path = str(tmp_path / "empty.pages")
        seed = HybridTree(4)
        seed.save(path)
        seed.close()
        tree = HybridTree.open(path)
        bulk_load_into(tree, uniform_dataset(300, 4, seed=41))
        assert tree.modified_since_save
        assert tree._soa_snapshot is None  # stale SOA kernel dropped
        with pytest.raises(ValueError, match="unsaved"):
            tree.session(workers=2)
        tree.close()

    def test_insert_rejects_out_of_range_oids(self):
        from repro.core import MAX_OID, OidRangeError

        tree = HybridTree(4)
        v = np.full(4, 0.5, dtype=np.float32)
        for bad in (-1, MAX_OID + 1, 2**40):
            with pytest.raises(OidRangeError):
                tree.insert(v, bad)
        with pytest.raises(OidRangeError):
            tree.insert(v, 1.5)  # not an integer at all
        assert len(tree) == 0  # nothing slipped in
        tree.insert(v, MAX_OID)  # the boundary itself is storable
        assert tree.point_search(v) == [MAX_OID]

    def test_bulk_load_rejects_out_of_range_oids(self):
        """np.asarray(..., dtype=np.uint32) used to wrap int64 oids
        silently; every bad id must now raise before the tree mutates."""
        from repro.core import MAX_OID, OidRangeError

        data = uniform_dataset(50, 4, seed=42)
        bad_oid_sets = [
            np.arange(50, dtype=np.int64) - 1,  # negative
            np.arange(50, dtype=np.int64) + MAX_OID - 10,  # > MAX_OID
            np.arange(50, dtype=np.float64),  # non-integer dtype
        ]
        for oids in bad_oid_sets:
            with pytest.raises(OidRangeError):
                HybridTree.bulk_load(data, oids=oids)
        ok = np.arange(50, dtype=np.int64) + (MAX_OID - 49)
        tree = HybridTree.bulk_load(data, oids=ok)
        found = sorted(tree.range_search(Rect([0.0] * 4, [1.0] * 4)))
        assert found == sorted(int(o) for o in ok)

    def test_skewed_split_tree_falls_back_to_dynamic_inserts(self):
        """Geometrically-skewed data at a tiny min_fill produces pack
        partitions with a single leaf on one side; packing used to raise
        NotImplementedError — now those entries defer to dynamic inserts."""
        n = 600
        data = np.empty((n, 2), dtype=np.float32)
        data[:, 0] = 0.9 ** np.arange(n)
        data[:, 0] /= data[:, 0].max()
        data[:, 1] = 0.5
        tree = HybridTree(2, page_size=512, min_fill=0.05)
        deferred = bulk_load_into(tree, data)
        assert deferred > 0  # the skew fallback really fired
        assert len(tree) == n
        tree.validate()
        for i in range(0, n, 37):
            assert i in tree.point_search(data[i])
