"""Tests for top-down bulk loading."""

import numpy as np
import pytest

from repro.core import HybridTree, compute_stats
from repro.core.bulkload import bulk_load_into
from repro.datasets import clustered_dataset, uniform_dataset
from repro.geometry.rect import Rect
from tests.conftest import brute_force_range, random_boxes


class TestBulkLoad:
    def test_equivalent_results_to_dynamic(self, rng):
        data = uniform_dataset(4000, 8, seed=20)
        bulk = HybridTree.bulk_load(data)
        dynamic = HybridTree(8)
        for oid, v in enumerate(data):
            dynamic.insert(v, oid)
        for query in random_boxes(rng, 8, 15):
            expected = brute_force_range(data, query)
            assert set(bulk.range_search(query)) == expected
            assert set(dynamic.range_search(query)) == expected

    def test_validates(self):
        data = clustered_dataset(6000, 16, clusters=7, seed=21)
        tree = HybridTree.bulk_load(data)
        tree.validate()
        assert len(tree) == 6000

    def test_zero_overlap_after_bulk(self):
        data = uniform_dataset(5000, 8, seed=22)
        tree = HybridTree.bulk_load(data)
        stats = compute_stats(tree)
        assert stats.overlapping_split_count == 0
        assert stats.data_level_overlap_volume == pytest.approx(0.0)

    def test_custom_oids(self):
        data = uniform_dataset(100, 4, seed=23)
        oids = np.arange(1000, 1100, dtype=np.uint32)
        tree = HybridTree.bulk_load(data, oids=oids)
        assert sorted(tree.range_search(Rect.unit(4))) == list(range(1000, 1100))

    def test_small_datasets(self):
        for n in (0, 1, 2, 5):
            data = uniform_dataset(n, 4, seed=24) if n else np.empty((0, 4), np.float32)
            tree = HybridTree.bulk_load(data)
            assert len(tree) == n
            if n:
                tree.validate()
                assert len(tree.range_search(Rect.unit(4))) == n

    def test_single_data_node(self):
        data = uniform_dataset(10, 64, seed=25)
        tree = HybridTree.bulk_load(data)
        assert tree.height == 1
        assert len(tree.range_search(Rect.unit(64))) == 10

    def test_dynamic_inserts_after_bulk(self, rng):
        data = uniform_dataset(3000, 8, seed=26)
        tree = HybridTree.bulk_load(data)
        extra = uniform_dataset(500, 8, seed=27)
        for i, v in enumerate(extra):
            tree.insert(v, 10_000 + i)
        tree.validate()
        everything = np.vstack([data, extra])
        q = random_boxes(rng, 8, 5)[0]
        assert set(tree.range_search(q)) == {
            (i if i < 3000 else 10_000 + i - 3000)
            for i in brute_force_range(everything, q)
        }

    def test_deletes_after_bulk(self):
        data = uniform_dataset(2000, 8, seed=28)
        tree = HybridTree.bulk_load(data)
        for oid in range(700):
            assert tree.delete(data[oid], oid)
        tree.validate()
        assert len(tree) == 1300

    def test_rejects_nonempty_tree(self):
        data = uniform_dataset(50, 4, seed=29)
        tree = HybridTree(4)
        tree.insert(data[0], 0)
        with pytest.raises(ValueError):
            bulk_load_into(tree, data)

    def test_rejects_misaligned_oids(self):
        data = uniform_dataset(50, 4, seed=30)
        with pytest.raises(ValueError):
            HybridTree.bulk_load(data, oids=np.arange(49))

    def test_rejects_wrong_shape(self):
        tree = HybridTree(4)
        with pytest.raises(ValueError):
            bulk_load_into(tree, np.zeros((10, 5), dtype=np.float32))

    def test_utilization_reasonable(self):
        data = uniform_dataset(8000, 16, seed=31)
        tree = HybridTree.bulk_load(data)
        stats = compute_stats(tree)
        assert stats.avg_data_utilization >= 0.5

    def test_duplicates_bulk(self):
        data = np.tile(np.array([[0.5] * 4], dtype=np.float32), (500, 1))
        tree = HybridTree.bulk_load(data)
        tree.validate()
        assert len(tree.point_search(data[0])) == 500
