"""Tests for the EDA split cost model and Minkowski probabilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.eda import (
    best_split_dimension_data,
    best_split_dimension_index,
    data_split_eda_increase,
    index_split_eda_increase,
    index_split_eda_increase_integrated,
)
from repro.geometry.minkowski import minkowski_overlap_probability, minkowski_sum_rect
from repro.geometry.rect import Rect


class TestMinkowski:
    def test_point_region_probability_is_query_volume(self):
        # A zero-extent region is hit iff the query covers it.
        p = minkowski_overlap_probability(np.zeros(3), 0.2)
        assert p == pytest.approx(0.2**3)

    def test_full_region_probability_is_one_clipped(self):
        p = minkowski_overlap_probability(np.ones(2), 0.5, clip_to_unit_space=True)
        assert p == 1.0

    def test_unclipped_matches_paper_formula(self):
        extents = np.array([0.3, 0.4])
        assert minkowski_overlap_probability(extents, 0.1) == pytest.approx(0.4 * 0.5)

    def test_rejects_negative_query(self):
        with pytest.raises(ValueError):
            minkowski_overlap_probability(np.ones(2), -0.1)

    def test_minkowski_sum_rect(self):
        grown = minkowski_sum_rect(Rect([0.4, 0.4], [0.6, 0.6]), 0.2)
        assert np.allclose(grown.low, [0.3, 0.3])
        assert np.allclose(grown.high, [0.7, 0.7])


class TestDataSplitCost:
    def test_formula(self):
        assert data_split_eda_increase(0.4, 0.1) == pytest.approx(0.1 / 0.5)

    def test_decreasing_in_extent(self):
        costs = [data_split_eda_increase(s, 0.1) for s in (0.1, 0.2, 0.4, 0.8)]
        assert costs == sorted(costs, reverse=True)

    def test_max_extent_is_optimal(self):
        extents = np.array([0.2, 0.7, 0.4])
        assert best_split_dimension_data(extents) == 1
        # Optimality holds for every query size (paper Section 3.2).
        for r in (0.01, 0.1, 0.5):
            costs = [data_split_eda_increase(s, r) for s in extents]
            assert int(np.argmin(costs)) == 1

    def test_zero_denominator(self):
        assert data_split_eda_increase(0.0, 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            data_split_eda_increase(-1.0, 0.1)


class TestIndexSplitCost:
    def test_formula(self):
        assert index_split_eda_increase(0.5, 0.1, 0.1) == pytest.approx(0.2 / 0.6)

    def test_overlap_free_reduces_to_data_case(self):
        assert index_split_eda_increase(0.5, 0.0, 0.1) == pytest.approx(
            data_split_eda_increase(0.5, 0.1)
        )

    def test_full_overlap_costs_one(self):
        assert index_split_eda_increase(0.5, 0.5, 0.1) == pytest.approx(1.0)

    def test_best_dimension_prefers_low_overlap_ratio(self):
        extents = np.array([0.5, 0.5])
        overlaps = np.array([0.3, 0.05])
        assert best_split_dimension_index(extents, overlaps, 0.1) == 1

    def test_never_split_dimension_implicitly_eliminated(self):
        # w == s means the dimension was never used below: cost exactly 1.
        extents = np.array([0.5, 0.4])
        overlaps = np.array([0.5, 0.1])
        assert best_split_dimension_index(extents, overlaps, 0.2) == 1

    def test_integrated_closed_form_matches_quadrature(self):
        closed = index_split_eda_increase_integrated(0.5, 0.1, max_query_side=1.0)
        quad = index_split_eda_increase_integrated(
            0.5, 0.1, query_side_pdf=lambda r: np.ones_like(r), samples=20000
        )
        assert closed == pytest.approx(quad, rel=1e-4)

    def test_integrated_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            index_split_eda_increase_integrated(0.5, 0.1, samples=1)


@settings(max_examples=100, deadline=None)
@given(
    st.floats(0.01, 1.0),
    st.floats(0.0, 1.0),
    st.floats(0.001, 1.0),
)
def test_property_index_cost_bounded(extent, overlap_frac, r):
    """(w + r)/(s + r) lies in (0, 1] whenever w <= s."""
    overlap = extent * overlap_frac
    cost = index_split_eda_increase(extent, overlap, r)
    assert 0.0 < cost <= 1.0 + 1e-12
