"""Protocol conformance: every index behaves identically through the kernel.

The structure-agnostic traversal kernel (:mod:`repro.engine.kernel`) is the
single query engine behind every paged structure's single-query, batched and
parallel execution.  This suite pins down the contract on tie-heavy,
duplicate-heavy data, for every registered index kind:

- exactness against the sequential-scan oracle for box range, distance
  range and k-NN queries (L2 and, where the structure supports it, L1);
- **bit-identical** results between the per-query loop and the batched
  ``*_many`` calls;
- identical results again through ``ParallelQueryEngine`` thread views of
  the live index at 1, 2 and 4 workers;
- deterministic ``(distance, oid)`` k-NN tie-breaking — ties keep the
  smallest oids, in every structure;
- honest ``charged_reads``: the measured loop charges sequential reads too
  (regression — it used to checkpoint only random reads, reporting zero
  for the scan structures);
- metric preconditions: the SS-tree and the M-tree reject metrics their
  geometry cannot bound, in both single and batched form.
"""

import numpy as np
import pytest

from repro.baselines import SequentialScan
from repro.distances import L1, L2
from repro.eval.harness import build_index
from repro.geometry.rect import Rect
from tests.conftest import brute_force_range, random_boxes

N = 900
DIMS = 4

# Every index kind the harness can build, minus the hybrid split-policy
# variants (covered by the hybrid tree's own suites).
KINDS = [
    "hybrid",
    "rtree",
    "xtree",
    "kdbtree",
    "sstree",
    "srtree",
    "mtree",
    "hbtree",
    "vafile",
    "scan",
]
BOX_KINDS = [k for k in KINDS if k != "mtree"]  # M-tree: no box geometry
L1_KINDS = [k for k in KINDS if k not in ("sstree", "mtree")]


@pytest.fixture(scope="module")
def data():
    """Tie-heavy dataset: grid-quantized coordinates (exact distance ties)
    plus outright duplicated rows under distinct oids."""
    rng = np.random.default_rng(7)
    base = np.round(rng.random((N // 2, DIMS)) * 8.0) / 8.0
    dup = base[rng.integers(0, len(base), N - len(base))]
    return np.vstack([base, dup]).astype(np.float32)


@pytest.fixture(scope="module")
def built(data):
    return {kind: build_index(kind, data) for kind in KINDS}


@pytest.fixture(scope="module")
def oracle(data):
    return SequentialScan.from_points(data)


@pytest.fixture(scope="module")
def boxes():
    rng = np.random.default_rng(21)
    return random_boxes(rng, DIMS, 10)


@pytest.fixture(scope="module")
def centers(data):
    rng = np.random.default_rng(22)
    # Query from stored points: duplicates guarantee distance-zero ties.
    return data[rng.integers(0, len(data), 8)].astype(np.float64)


# ----------------------------------------------------------------------
# Exactness against the scan oracle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BOX_KINDS)
def test_range_exact(kind, built, data, boxes):
    index = built[kind]
    for box in boxes:
        assert set(index.range_search(box)) == brute_force_range(data, box), kind


@pytest.mark.parametrize("kind", KINDS)
def test_distance_range_exact(kind, built, oracle, centers):
    index = built[kind]
    for q in centers:
        expected = sorted(oracle.distance_range(q, 0.4, L2))
        assert sorted(index.distance_range(q, 0.4, L2)) == expected, kind


@pytest.mark.parametrize("kind", L1_KINDS)
def test_distance_range_l1_exact(kind, built, oracle, centers):
    index = built[kind]
    for q in centers:
        expected = sorted(oracle.distance_range(q, 0.6, L1))
        assert sorted(index.distance_range(q, 0.6, L1)) == expected, kind


@pytest.mark.parametrize("kind", KINDS)
def test_knn_ties_deterministic(kind, built, oracle, centers):
    """On tied distances every structure keeps the smallest oids — the
    answer is one deterministic (distance, oid) prefix, not a choice."""
    index = built[kind]
    for q in centers:
        expected = oracle.knn(q, 12, L2)
        got = index.knn(q, 12, L2)
        assert [oid for oid, _ in got] == [oid for oid, _ in expected], kind
        assert np.allclose(
            [d for _, d in got], [d for _, d in expected], atol=1e-9
        ), kind


@pytest.mark.parametrize("kind", L1_KINDS)
def test_knn_l1_ties_deterministic(kind, built, oracle, centers):
    index = built[kind]
    for q in centers:
        expected = oracle.knn(q, 12, L1)
        got = index.knn(q, 12, L1)
        assert [oid for oid, _ in got] == [oid for oid, _ in expected], kind


# ----------------------------------------------------------------------
# Batch-vs-loop bit identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", BOX_KINDS)
def test_batch_range_identical_to_loop(kind, built, boxes):
    index = built[kind]
    assert index.range_search_many(boxes) == [
        index.range_search(b) for b in boxes
    ], kind


@pytest.mark.parametrize("kind", KINDS)
def test_batch_distance_identical_to_loop(kind, built, centers):
    index = built[kind]
    assert index.distance_range_many(centers, 0.4, L2) == [
        index.distance_range(q, 0.4, L2) for q in centers
    ], kind


@pytest.mark.parametrize("kind", KINDS)
def test_batch_knn_identical_to_loop(kind, built, centers):
    index = built[kind]
    assert index.knn_many(centers, 9, L2) == [
        index.knn(q, 9, L2) for q in centers
    ], kind


@pytest.mark.parametrize("kind", [k for k in KINDS if k not in ("vafile", "scan")])
def test_measured_loop_matches_batch_results(kind, built, centers):
    """The instrumented ``*_loop`` methods return the same answers the
    kernel batch does (they are the benchmark's loop side).  The hybrid
    tree does not inherit the mixin, so the loop is invoked unbound — it
    only needs ``.io`` and the single-query method."""
    from repro.baselines.common import LoopQueryMixin

    index = built[kind]
    loop_results, loop_metrics = LoopQueryMixin.knn_loop(
        index, centers, 9, L2, return_metrics=True
    )
    batch_results, batch_metrics = index.knn_many(centers, 9, L2, return_metrics=True)
    assert loop_results == batch_results, kind
    assert loop_metrics.num_queries == batch_metrics.num_queries == len(centers)
    # Shared traversal can never charge more pages than the loop.
    assert batch_metrics.charged_reads <= loop_metrics.charged_reads, kind


# ----------------------------------------------------------------------
# Parallel thread views of the live index
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_identical_to_serial(kind, workers, built, boxes, centers):
    from repro.engine.parallel import ParallelQueryEngine

    index = built[kind]
    with ParallelQueryEngine(index, workers=workers) as engine:
        if kind != "mtree":
            assert engine.range_search_many(boxes) == index.range_search_many(
                boxes
            ), kind
        assert engine.distance_range_many(
            centers, 0.4, L2
        ) == index.distance_range_many(centers, 0.4, L2), kind
        assert engine.knn_many(centers, 9, L2) == index.knn_many(
            centers, 9, L2
        ), kind


def test_parallel_live_index_rejects_process_modes(built):
    from repro.engine.parallel import ParallelQueryEngine

    with pytest.raises(ValueError, match="thread"):
        ParallelQueryEngine(built["rtree"], workers=2, mode="spawn")


# ----------------------------------------------------------------------
# Deletes (structures that support them) stay conformant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["hybrid", "rtree", "xtree", "hbtree", "scan"])
def test_conformance_after_deletes(kind, data):
    index = build_index(kind, data[:300])
    kept = np.ones(300, dtype=bool)
    for oid in range(0, 300, 3):
        assert index.delete(data[oid], oid), kind
        kept[oid] = False
    remaining = data[:300][kept]
    oid_map = np.flatnonzero(kept)
    box = Rect(np.full(DIMS, 0.2), np.full(DIMS, 0.8))
    expected = {int(oid_map[i]) for i in brute_force_range(remaining, box)}
    assert set(index.range_search(box)) == expected, kind
    assert index.range_search_many([box])[0] == index.range_search(box), kind


# ----------------------------------------------------------------------
# Accounting: the loop charges sequential reads too (regression)
# ----------------------------------------------------------------------
def test_scan_loop_charges_sequential_reads(built, boxes):
    scan = built["scan"]
    scan.io.reset()
    _, metrics = scan.range_search_many(boxes, return_metrics=True)
    assert metrics.charged_reads == scan.pages() * len(boxes)


def test_vafile_loop_charges_sequential_reads(built, centers):
    va = built["vafile"]
    va.io.reset()
    _, metrics = va.knn_many(centers, 5, L2, return_metrics=True)
    # Every query pays at least the full approximation-file scan.
    assert metrics.charged_reads >= va.approximation_pages() * len(centers)


# ----------------------------------------------------------------------
# Metric preconditions survive batching
# ----------------------------------------------------------------------
def test_sstree_rejects_l1_batched(built, centers):
    with pytest.raises(ValueError, match="Euclidean"):
        built["sstree"].distance_range_many(centers, 0.4, L1)
    with pytest.raises(ValueError, match="Euclidean"):
        built["sstree"].knn_many(centers, 3, L1)


def test_mtree_rejects_foreign_metric_batched(built, centers):
    with pytest.raises(ValueError):
        built["mtree"].distance_range_many(centers, 0.4, L1)
    with pytest.raises(ValueError):
        built["mtree"].knn_many(centers, 3, L1)


def test_mtree_rejects_box_queries(built, boxes):
    with pytest.raises(TypeError, match="bounding-box"):
        built["mtree"].range_search(boxes[0])
    with pytest.raises(TypeError, match="bounding-box"):
        built["mtree"].range_search_many(boxes)
