"""Direct unit tests for DataNode / IndexNode / EntryLeaf."""

import numpy as np
import pytest

from repro.baselines.common import EntryLeaf
from repro.core.kdnodes import KDInternal, KDLeaf
from repro.core.nodes import DataNode, IndexNode
from repro.geometry.rect import Rect


class TestDataNode:
    def test_add_and_views(self):
        node = DataNode(3, 8)
        node.add(np.array([0.1, 0.2, 0.3], dtype=np.float32), 7)
        node.add(np.array([0.4, 0.5, 0.6], dtype=np.float32), 9)
        assert node.count == 2
        assert node.points().shape == (2, 3)
        assert node.live_oids().tolist() == [7, 9]
        assert node.dims == 3 and node.capacity == 8

    def test_overflow_guard(self):
        node = DataNode(2, 2)
        node.add(np.zeros(2, dtype=np.float32), 0)
        node.add(np.zeros(2, dtype=np.float32), 1)
        assert node.is_full
        with pytest.raises(RuntimeError):
            node.add(np.zeros(2, dtype=np.float32), 2)

    def test_remove_at_swaps_last(self):
        node = DataNode(2, 4)
        for i in range(3):
            node.add(np.full(2, i / 10, dtype=np.float32), i)
        node.remove_at(0)
        assert node.count == 2
        assert set(node.live_oids().tolist()) == {1, 2}

    def test_remove_at_bounds(self):
        node = DataNode(2, 4)
        node.add(np.zeros(2, dtype=np.float32), 0)
        with pytest.raises(IndexError):
            node.remove_at(1)
        with pytest.raises(IndexError):
            node.remove_at(-1)

    def test_find_entry_exact_match_only(self):
        node = DataNode(2, 4)
        v = np.array([0.25, 0.75], dtype=np.float32)
        node.add(v, 5)
        assert node.find_entry(v, 5) == 0
        assert node.find_entry(v, 6) is None
        assert node.find_entry(np.array([0.25, 0.7501], dtype=np.float32), 5) is None

    def test_find_entry_with_duplicate_oids(self):
        node = DataNode(1, 4)
        node.add(np.array([0.1], dtype=np.float32), 5)
        node.add(np.array([0.2], dtype=np.float32), 5)
        assert node.find_entry(np.array([0.2], dtype=np.float32), 5) == 1

    def test_live_rect(self):
        node = DataNode(2, 4)
        node.add(np.array([0.1, 0.9], dtype=np.float32), 0)
        node.add(np.array([0.5, 0.2], dtype=np.float32), 1)
        rect = node.live_rect()
        assert np.allclose(rect.low, [0.1, 0.2], atol=1e-6)
        assert np.allclose(rect.high, [0.5, 0.9], atol=1e-6)

    def test_live_rect_empty_raises(self):
        with pytest.raises(ValueError):
            DataNode(2, 4).live_rect()

    def test_utilization(self):
        node = DataNode(2, 4)
        node.add(np.zeros(2, dtype=np.float32), 0)
        assert node.utilization() == 0.25

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            DataNode(2, 1)

    def test_float32_storage(self):
        node = DataNode(1, 4)
        node.add(np.array([1 / 3], dtype=np.float64), 0)
        assert node.vectors.dtype == np.float32
        assert node.points()[0, 0] == np.float32(1 / 3)


class TestIndexNode:
    def _node(self):
        kd = KDInternal(0, 0.5, 0.4, KDLeaf(10), KDLeaf(20))
        return IndexNode(kd, level=1)

    def test_fanout_and_children(self):
        node = self._node()
        assert node.fanout == 2
        assert node.child_ids() == [10, 20]

    def test_children_with_regions(self):
        node = self._node()
        regions = dict(node.children_with_regions(Rect.unit(2)))
        assert regions[10] == Rect([0, 0], [0.5, 1])
        assert regions[20] == Rect([0.4, 0], [1, 1])

    def test_level_validation(self):
        with pytest.raises(ValueError):
            IndexNode(KDLeaf(1), level=0)

    def test_utilization(self):
        node = self._node()
        assert node.utilization(4) == 0.5


class TestEntryLeaf:
    def test_basics(self):
        leaf = EntryLeaf(2, 4)
        leaf.add(np.array([0.1, 0.2], dtype=np.float32), 3)
        assert leaf.count == 1 and not leaf.is_full
        assert leaf.level == 0
        assert leaf.capacity == 4

    def test_rect(self):
        leaf = EntryLeaf(2, 4)
        leaf.add(np.array([0.1, 0.8], dtype=np.float32), 0)
        leaf.add(np.array([0.3, 0.4], dtype=np.float32), 1)
        rect = leaf.rect()
        assert np.allclose(rect.low, [0.1, 0.4], atol=1e-6)

    def test_rect_empty_raises(self):
        with pytest.raises(ValueError):
            EntryLeaf(2, 4).rect()

    def test_overflow_guard(self):
        leaf = EntryLeaf(1, 2)
        leaf.add(np.zeros(1, dtype=np.float32), 0)
        leaf.add(np.zeros(1, dtype=np.float32), 1)
        with pytest.raises(RuntimeError):
            leaf.add(np.zeros(1, dtype=np.float32), 2)
