"""Failure injection: corruption and misuse must fail loudly, not wrongly."""

import os

import numpy as np
import pytest

from repro.core import HybridTree
from repro.datasets import uniform_dataset
from repro.geometry.rect import Rect
from repro.storage.errors import PageCorruptionError
from repro.storage.pagestore import FilePageStore
from repro.storage.serialization import HybridNodeCodec


@pytest.fixture()
def saved_tree(tmp_path):
    data = uniform_dataset(1200, 6, seed=91)
    tree = HybridTree(6)
    for oid, v in enumerate(data):
        tree.insert(v, oid)
    path = str(tmp_path / "t.pages")
    tree.save(path)
    return path, tree, data


class TestPageCorruption:
    def test_unknown_node_kind_detected(self, saved_tree):
        path, tree, _ = saved_tree
        # Smash the root page's kind byte.
        with open(path, "r+b") as f:
            f.seek(tree.root_id * 4096)
            f.write(b"\x77")
        reopened = HybridTree.open(path)
        with pytest.raises(ValueError):
            reopened.range_search(Rect.unit(6))

    def test_dims_mismatch_detected(self, saved_tree):
        path, tree, _ = saved_tree
        reopened = HybridTree.open(path)
        # Point the codec at the wrong dimensionality.
        reopened.nm.codec = HybridNodeCodec(5, reopened.data_capacity)
        with pytest.raises(ValueError):
            # Force a data page through the wrong codec.
            reopened.nm.evict_all()
            reopened.range_search(Rect.unit(6))

    def test_truncated_file_fails_cleanly(self, saved_tree):
        path, _, _ = saved_tree
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 4096)  # lose the superblock
        with pytest.raises(PageCorruptionError):
            HybridTree.open(path)

    def test_torn_superblock_fails_cleanly(self, saved_tree):
        path, _, _ = saved_tree
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.seek(size - 4096 + 16)
            f.write(b"\x00" * 64)  # tear the superblock's header + manifest
        with pytest.raises(PageCorruptionError):
            HybridTree.open(path)

    def test_corrupt_kd_tree_payload(self, saved_tree):
        path, tree, _ = saved_tree
        # Find an index page (the root of a multi-level tree) and scribble
        # over its kd payload so decoding hits an invalid tag.
        root = tree.nm.get(tree.root_id, charge=False)
        from repro.core.nodes import IndexNode

        assert isinstance(root, IndexNode)
        with open(path, "r+b") as f:
            f.seek(tree.root_id * 4096 + 3)  # past kind+level header
            f.write(b"\x09" * 64)
        reopened = HybridTree.open(path)
        with pytest.raises(Exception):
            reopened.range_search(Rect.unit(6))


class TestStoreMisuse:
    def test_read_unallocated_page(self, tmp_path):
        with FilePageStore(tmp_path / "x.bin", page_size=64) as store:
            with pytest.raises(KeyError):
                store.read(3)

    def test_write_unallocated_page(self, tmp_path):
        with FilePageStore(tmp_path / "x.bin", page_size=64) as store:
            with pytest.raises(KeyError):
                store.write(5, b"data")

    def test_page_overflow_rejected_before_touching_disk(self, tmp_path):
        with FilePageStore(tmp_path / "x.bin", page_size=16) as store:
            pid = store.allocate()
            before = store.stats.random_writes
            with pytest.raises(ValueError):
                store.write(pid, b"x" * 17)
            assert store.stats.random_writes == before

    def test_free_then_read_foreign_content(self):
        """Recycled pages belong to their new owner; stale reads are the
        caller's bug, and the allocator makes that detectable via ids."""
        from repro.storage.pagestore import InMemoryPageStore

        store = InMemoryPageStore()
        a = store.allocate()
        store.write(a, b"old")
        store.free(a)
        b = store.allocate()
        assert b == a  # recycling is explicit and deterministic

    def test_nodemanager_double_free_rejected(self):
        # A tolerated double free would put the id on the free list twice
        # and eventually hand one page to two different nodes.
        from repro.storage.nodemanager import NodeManager

        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "x", charge=False)
        nm.free(pid)
        with pytest.raises(ValueError, match="double free"):
            nm.free(pid)
        assert nm.cached_nodes == 0
        # The freed id is recycled exactly once.
        assert nm.allocate() == pid
        assert nm.allocate() == pid + 1


class TestAPIMisuse:
    def test_query_wrong_dims(self):
        tree = HybridTree(4)
        with pytest.raises(ValueError):
            tree.knn(np.zeros(3), 1)
        with pytest.raises(ValueError):
            tree.distance_range(np.zeros(5), 1.0)

    def test_insert_non_finite(self):
        tree = HybridTree(2)
        for bad in (np.inf, -np.inf, np.nan):
            with pytest.raises(ValueError):
                tree.insert(np.array([bad, 0.0]), 1)

    def test_save_overwrites_stale_file(self, tmp_path):
        data = uniform_dataset(300, 4, seed=92)
        path = str(tmp_path / "t.pages")
        big = HybridTree(4)
        for oid, v in enumerate(data):
            big.insert(v, oid)
        big.save(path)
        small = HybridTree(4)
        small.insert(data[0], 0)
        small.save(path)  # must truncate, not splice into the old file
        reopened = HybridTree.open(path)
        assert len(reopened) == 1
        assert set(reopened.range_search(Rect.unit(4))) == {0}
