"""Tests for repro.engine: batch queries, query sessions, metrics.

The load-bearing property of the shared-traversal engine is that it is an
*execution* optimization only: every batch method must return bit-identical
results to looping the single-query method, while charging each visited
node one read for the whole batch instead of one per query.
"""

import numpy as np
import pytest

from repro.baselines import RTree, SequentialScan
from repro.core import HybridTree
from repro.datasets import colhist_dataset, range_workload
from repro.distances import L1, L2, WeightedEuclidean
from repro.engine import (
    BatchMetrics,
    LoopRecorder,
    QuerySession,
    ascii_histogram,
    knn_many,
    range_search_many,
)
from repro.eval import run_workload, run_workload_batched
from repro.geometry.rect import Rect
from tests.conftest import random_boxes


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.random((2500, 8)).astype(np.float32)


@pytest.fixture(scope="module")
def tree(data):
    t = HybridTree(8)
    for oid, v in enumerate(data):
        t.insert(v, oid)
    return t


@pytest.fixture(scope="module")
def boxes(rng):
    return random_boxes(rng, 8, 30)


@pytest.fixture(scope="module")
def centers(rng):
    return rng.random((40, 8))


class TestRangeBatch:
    def test_bit_identical_to_loop(self, tree, boxes):
        assert tree.range_search_many(boxes) == [tree.range_search(b) for b in boxes]

    def test_single_query_batch(self, tree, boxes):
        assert tree.range_search_many(boxes[:1]) == [tree.range_search(boxes[0])]

    def test_empty_batch(self, tree):
        assert tree.range_search_many([]) == []

    def test_dims_mismatch_rejected(self, tree):
        with pytest.raises(ValueError):
            tree.range_search_many([Rect.unit(5)])

    def test_charges_each_node_once_per_batch(self, tree, boxes):
        tree.io.reset()
        for b in boxes:
            tree.range_search(b)
        loop_reads = tree.io.random_reads
        tree.io.reset()
        _, metrics = tree.range_search_many(boxes, return_metrics=True)
        assert metrics.charged_reads == tree.io.random_reads
        assert metrics.charged_reads <= tree.pages()
        assert metrics.charged_reads < loop_reads
        # The attributed per-query page counts are the loop's exact counts.
        assert metrics.pages.sum() == loop_reads

    def test_empty_tree(self):
        empty = HybridTree(8)
        assert empty.range_search_many([Rect.unit(8)]) == [[]]


class TestDistanceRangeBatch:
    @pytest.mark.parametrize(
        "metric",
        [L1, L2, WeightedEuclidean(np.arange(1, 9, dtype=np.float64))],
        ids=["L1", "L2", "weighted"],
    )
    def test_bit_identical_to_loop(self, tree, centers, metric):
        got = tree.distance_range_many(centers, 0.7, metric)
        assert got == [tree.distance_range(c, 0.7, metric) for c in centers]

    def test_per_query_radii(self, tree, centers, rng):
        radii = rng.uniform(0.2, 0.9, size=len(centers))
        got = tree.distance_range_many(centers, radii)
        assert got == [
            tree.distance_range(c, float(r)) for c, r in zip(centers, radii)
        ]

    def test_negative_radius_rejected(self, tree, centers):
        with pytest.raises(ValueError):
            tree.distance_range_many(centers, -0.1)


class TestKnnBatch:
    @pytest.mark.parametrize("k", [1, 5, 13])
    def test_bit_identical_to_loop(self, tree, centers, k):
        assert tree.knn_many(centers, k) == [tree.knn(c, k) for c in centers]

    def test_metric_variants(self, tree, centers):
        for metric in (L1, WeightedEuclidean(np.arange(1, 9, dtype=np.float64))):
            got = tree.knn_many(centers[:10], 5, metric)
            assert got == [tree.knn(c, 5, metric) for c in centers[:10]]

    def test_k_larger_than_tree(self):
        small = HybridTree(2)
        for i in range(5):
            small.insert(np.array([i / 10, i / 10]), i)
        assert small.knn_many(np.zeros((3, 2)), 50) == [small.knn(np.zeros(2), 50)] * 3

    def test_invalid_k_rejected(self, tree, centers):
        with pytest.raises(ValueError):
            tree.knn_many(centers, 0)
        with pytest.raises(ValueError):
            tree.knn_many(centers, 3, approximation_factor=-1.0)

    def test_ties_broken_identically(self):
        """Many duplicate points at the kth boundary: the batch traversal
        visits nodes in a different order than the single-query descent, so
        only the deterministic (distance, oid) order keeps them identical."""
        tree = HybridTree(2)
        rng = np.random.default_rng(9)
        oid = 0
        for _ in range(40):  # 40 copies of the same 8 positions
            for pos in range(8):
                tree.insert(np.array([pos / 8, pos / 8]), oid)
                oid += 1
        for v in rng.random((200, 2)):
            tree.insert(v, oid)
            oid += 1
        queries = np.array([[p / 8, p / 8] for p in range(8)], dtype=np.float64)
        got = tree.knn_many(queries, 7)
        assert got == [tree.knn(q, 7) for q in queries]
        for hits in got:
            assert hits == sorted(hits, key=lambda t: (t[1], t[0]))

    def test_approximate_guarantee_holds(self, tree, centers):
        eps = 1.0
        exact = tree.knn_many(centers, 10)
        approx = tree.knn_many(centers, 10, approximation_factor=eps)
        for ex, ap in zip(exact, approx):
            assert len(ap) == 10
            assert ap[-1][1] <= ex[-1][1] * (1.0 + eps) + 1e-9

    def test_fewer_reads_than_loop(self, tree, centers):
        tree.io.reset()
        for c in centers:
            tree.knn(c, 10)
        loop_reads = tree.io.random_reads
        tree.io.reset()
        tree.knn_many(centers, 10)
        assert tree.io.random_reads < loop_reads


class TestQuerySession:
    def test_results_unchanged_inside_session(self, tree, boxes, centers):
        with tree.session(pin_levels=2) as session:
            assert session.range_search_many(boxes) == tree.range_search_many(boxes)
            assert session.knn_many(centers, 5) == tree.knn_many(centers, 5)
            assert session.knn(centers[0], 5) == tree.knn(centers[0], 5)

    def test_pins_upper_levels_and_unpins_on_exit(self, tree):
        with QuerySession(tree, pin_levels=2) as session:
            assert 0 < session.pinned_pages <= tree.pages()
            assert tree.nm.pinned_nodes == session.pinned_pages
        assert tree.nm.pinned_nodes == 0

    def test_pinned_directory_reads_are_free(self, tree, centers):
        with QuerySession(tree, pin_levels=tree.height) as _:
            tree.io.reset()
            tree.knn_many(centers, 5)
            # The whole tree is pinned: queries charge nothing.
            assert tree.io.random_reads == 0
        tree.io.reset()
        tree.knn_many(centers, 5)
        assert tree.io.random_reads > 0  # cold accounting restored

    def test_rejects_negative_pin_levels(self, tree):
        with pytest.raises(ValueError):
            QuerySession(tree, pin_levels=-1)

    def test_pins_survive_bounded_eviction(self, data, tmp_path):
        tree = HybridTree(8)
        for oid, v in enumerate(data[:1200]):
            tree.insert(v, oid)
        path = str(tmp_path / "t.pages")
        tree.save(path)
        reopened = HybridTree.open(path, buffer_pages=4)
        with QuerySession(reopened, pin_levels=1) as session:
            reopened.range_search(Rect.unit(8))  # thrash the tiny pool
            assert reopened.nm.pinned_nodes == session.pinned_pages
            reopened.io.reset()
            reopened.nm.get(reopened.root_id)
            assert reopened.io.random_reads == 0  # pinned root never evicted


class TestMetrics:
    def test_from_batch_run_attribution(self):
        m = BatchMetrics.from_batch_run(
            "x", node_visits=np.array([1, 3, 0, 4]), charged_reads=5, wall_seconds=2.0
        )
        assert m.attributed
        assert m.num_queries == 4
        assert m.latencies.sum() == pytest.approx(2.0)
        assert m.latencies[1] == pytest.approx(2.0 * 3 / 8)
        assert np.array_equal(m.pages, [1, 3, 0, 4])
        assert m.charged_reads == 5

    def test_from_batch_run_no_visits(self):
        m = BatchMetrics.from_batch_run("x", np.zeros(3), 0, 0.3)
        assert m.latencies.sum() == pytest.approx(0.3)

    def test_summary_and_render(self):
        m = BatchMetrics.from_batch_run("lbl", np.arange(1, 11), 7, 1.0)
        s = m.summary()
        assert s["label"] == "lbl" and s["queries"] == 10
        assert s["charged_reads"] == 7
        text = m.render()
        assert "lbl" in text and "charged page reads" in text

    def test_percentiles(self):
        m = BatchMetrics.from_batch_run("x", np.ones(4), 4, 1.0)
        assert m.percentile(50) == pytest.approx(0.25)
        assert m.percentile(100, "pages") == 1.0

    def test_ascii_histogram(self):
        assert ascii_histogram(np.empty(0)) == "(no samples)"
        lines = ascii_histogram(np.arange(100), bins=5).splitlines()
        assert len(lines) == 5
        assert all("#" in line for line in lines)

    def test_loop_recorder_measures_exactly(self, tree, boxes):
        recorder = LoopRecorder("loop", tree.io)
        tree.io.reset()
        for b in boxes[:5]:
            recorder.start_query()
            tree.range_search(b)
            recorder.end_query()
        m = recorder.finish(charged_reads=tree.io.random_reads)
        assert not m.attributed
        assert m.num_queries == 5
        assert m.pages.sum() == m.charged_reads == tree.io.random_reads
        assert np.all(m.latencies >= 0)

    def test_return_metrics_tuple(self, tree, boxes):
        results, metrics = tree.range_search_many(boxes, return_metrics=True)
        assert isinstance(metrics, BatchMetrics)
        assert metrics.num_queries == len(boxes)
        assert results == tree.range_search_many(boxes)


class TestBaselineBatchMixin:
    @pytest.mark.parametrize("cls", [SequentialScan, RTree], ids=["scan", "rtree"])
    def test_batch_equals_loop(self, data, boxes, centers, cls):
        index = cls.from_points(data)
        assert index.range_search_many(boxes) == [index.range_search(b) for b in boxes]
        assert index.distance_range_many(centers[:8], 0.6) == [
            index.distance_range(c, 0.6) for c in centers[:8]
        ]
        assert index.knn_many(centers[:8], 5) == [index.knn(c, 5) for c in centers[:8]]

    def test_metrics_available(self, data, boxes):
        scan = SequentialScan.from_points(data)
        _, metrics = scan.range_search_many(boxes, return_metrics=True)
        assert isinstance(metrics, BatchMetrics)
        assert metrics.num_queries == len(boxes)


class TestHarnessBatched:
    def test_matches_loop_harness(self):
        data = colhist_dataset(1200, 16, seed=3)
        tree = HybridTree.bulk_load(data)
        workload = range_workload(data, 20, 0.01, seed=4)
        loop = run_workload(tree, data, workload, kind="hybrid")
        batched, metrics = run_workload_batched(tree, data, workload, kind="hybrid")
        assert batched.avg_result_count == loop.avg_result_count
        assert batched.num_queries == loop.num_queries
        assert metrics.num_queries == len(workload)
        assert batched.avg_disk_accesses < loop.avg_disk_accesses


def test_module_level_functions_match_methods(tree, boxes, centers):
    assert range_search_many(tree, boxes) == tree.range_search_many(boxes)
    assert knn_many(tree, centers[:5], 3) == tree.knn_many(centers[:5], 3)
