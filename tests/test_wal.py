"""Write-ahead log: durability, kill-point matrix, group commit, snapshots.

Four guarantees under test, mirroring the save-path crash matrix in
``test_crash_matrix.py``:

1. **Durability** — every mutation committed through the WAL survives a
   process death with *no* save(): reopening (plain or mmap) replays the
   log over the last checkpoint.
2. **Old-or-new at transaction granularity** — truncate or corrupt the
   log at *any* byte and the recovered state is exactly the state after
   some committed prefix of transactions, never a hybrid.
3. **Checkpoint crash safety** — kill the checkpointer at any page write
   or between the atomic rename and the log reset; recovery always sees
   either (old superblock + live log) or (new superblock + stale log),
   both of which reproduce the committed state.
4. **Snapshot isolation** — readers pinned before a write (snapshot
   views, parallel-engine workers, mmap mappings across a checkpoint)
   return bit-identical results to the quiesced pre-write state while
   the writer keeps mutating.
"""

import shutil
import threading

import numpy as np
import pytest

import repro.core.hybridtree as hybridtree_mod
from repro.core import HybridTree
from repro.datasets import uniform_dataset
from repro.geometry.rect import Rect
from repro.storage import wal as wal_io
from repro.storage.errors import CrashError, ReadOnlyStoreError
from repro.storage.faults import FaultInjectingPageStore
from repro.storage.pagestore import VersionedOverlayStore
from repro.storage.recovery import salvage, verify

DIMS = 3
EVERYTHING = Rect([0.0] * DIMS, [1.0] * DIMS)
QUERY = Rect([0.2] * DIMS, [0.8] * DIMS)

_real_save_store = hybridtree_mod._save_store


def _fingerprint(tree):
    """Everything a query can observe, in a comparable form."""
    return (
        len(tree),
        sorted(tree.range_search(EVERYTHING)),
        sorted(tree.range_search(QUERY)),
        tree.knn(np.full(DIMS, 0.4, dtype=np.float32), 5),
    )


def _disk_state(path, mmap=False):
    tree = HybridTree.open(path, mmap=mmap)
    try:
        return _fingerprint(tree)
    finally:
        tree.close()


@pytest.fixture()
def saved(tmp_path):
    data = uniform_dataset(120, DIMS, seed=11)
    tree = HybridTree.bulk_load(data)
    path = str(tmp_path / "t.pages")
    tree.save(path)
    tree.close()
    return path, data


def _mutate(tree, data, start_oid, count):
    """A deterministic mix of inserts and deletes; one transaction each."""
    for i in range(count):
        if i % 5 == 4:
            tree.delete(data[i], i)
        else:
            tree.insert(
                np.clip(data[i] * 0.5 + 0.25, 0.0, 1.0), start_oid + i
            )


class TestDurability:
    def test_mutations_survive_reopen_without_save(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 40)
        live = _fingerprint(tree)
        tree.close()  # no save(): the log is the only durable copy

        reopened = HybridTree.open(path)
        assert reopened.wal_replayed_transactions == 40
        assert _fingerprint(reopened) == live
        reopened.validate()
        reopened.close()

        # The zero-copy read path replays through an overlay and answers
        # identically (the stale SOA snapshot must not be used).
        mapped = HybridTree.open(path, mmap=True)
        assert _fingerprint(mapped) == live
        mapped.close()

    def test_noop_mutation_appends_nothing(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        before = tree.wal.size_bytes
        assert not tree.delete(np.full(DIMS, 0.123, dtype=np.float32), 999999)
        assert tree.wal.size_bytes == before
        tree.close()

    def test_wal_requires_writable_path(self, saved):
        path, _ = saved
        with pytest.raises(ValueError, match="mmap"):
            HybridTree.open(path, mmap=True, wal=True)

    def test_concurrent_writers_serialize_correctly(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        errors = []

        def writer(tid):
            try:
                for i in range(25):
                    vec = np.clip(
                        data[(tid * 25 + i) % len(data)] * 0.9 + 0.05, 0.0, 1.0
                    )
                    tree.insert(vec, 5000 + tid * 25 + i)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(tree) == 120 + 100
        live = _fingerprint(tree)
        tree.close()
        assert _disk_state(path) == live


class TestKillPointMatrix:
    def _committed_states(self, saved, transactions=10):
        """Run ``transactions`` mutations, fingerprinting after each commit."""
        path, data = saved
        states = [_disk_state(path)]
        tree = HybridTree.open(path, wal=True)
        for i in range(transactions):
            if i % 4 == 3:
                assert tree.delete(data[i], i)
            else:
                tree.insert(
                    np.clip(data[i] * 0.5 + 0.25, 0.0, 1.0), 3000 + i
                )
            states.append(_fingerprint(tree))
        tree.close()
        return path, states

    def test_truncation_at_every_boundary_recovers_a_committed_prefix(
        self, saved, tmp_path
    ):
        path, states = self._committed_states(saved)
        wal_path = wal_io.wal_path_for(path)
        full = open(wal_path, "rb").read()
        scan = wal_io.scan_wal(wal_path)
        assert scan.transactions == 10 and scan.truncated_reason is None

        # Every record boundary, plus cuts inside a header and inside a
        # payload — a kill mid-write can land anywhere.
        cuts = {0, len(full)}
        for record in scan.records:
            cuts.update(
                {
                    record.offset,
                    record.offset + 11,                      # torn header
                    record.offset + wal_io.RECORD_HEADER_SIZE + 3,  # torn payload
                    record.end_offset,
                }
            )
        cuts = sorted(c for c in cuts if c <= len(full))

        workdir = tmp_path / "cut"
        workdir.mkdir()
        target = str(workdir / "t.pages")
        previous_txns = -1
        for cut in cuts:
            shutil.copyfile(path, target)
            with open(wal_io.wal_path_for(target), "wb") as f:
                f.write(full[:cut])
            partial = wal_io.scan_wal(wal_io.wal_path_for(target))
            # Usable transactions are monotone in the truncation point.
            assert partial.transactions >= max(previous_txns, 0)
            previous_txns = partial.transactions
            recovered = _disk_state(target)
            assert recovered == states[partial.transactions], cut
            assert recovered in states  # old-or-new, never a hybrid
            report = verify(target)
            assert report.ok, (cut, report.errors)

        # The whole file replays every transaction.
        assert previous_txns == 10
        assert _disk_state(target) == states[-1]

    def test_bitflip_in_log_discards_from_the_damage_onward(
        self, saved, tmp_path
    ):
        path, states = self._committed_states(saved)
        wal_path = wal_io.wal_path_for(path)
        full = bytearray(open(wal_path, "rb").read())
        scan = wal_io.scan_wal(wal_path)
        victim = scan.records[len(scan.records) // 2]
        flip_at = victim.offset + wal_io.RECORD_HEADER_SIZE + 5
        full[flip_at] ^= 0x40

        target = str(tmp_path / "flip.pages")
        shutil.copyfile(path, target)
        with open(wal_io.wal_path_for(target), "wb") as f:
            f.write(bytes(full))
        partial = wal_io.scan_wal(wal_io.wal_path_for(target))
        assert partial.truncated_reason is not None
        assert 0 < partial.transactions < 10
        assert _disk_state(target) == states[partial.transactions]

    def test_uncommitted_tail_is_discarded(self, saved, tmp_path):
        """Page records with no commit behind them must not be applied."""
        path, states = self._committed_states(saved, transactions=3)
        wal_path = wal_io.wal_path_for(path)
        scan = wal_io.scan_wal(wal_path)
        pages, commit = wal_io.committed_transactions(scan)[-1]
        # Keep the last transaction's page images but drop its commit.
        cut = pages[-1].end_offset if pages else commit.offset
        full = open(wal_path, "rb").read()
        target = str(tmp_path / "tail.pages")
        shutil.copyfile(path, target)
        with open(wal_io.wal_path_for(target), "wb") as f:
            f.write(full[:cut])
        partial = wal_io.scan_wal(wal_io.wal_path_for(target))
        assert partial.transactions == 2
        assert partial.discarded_records == len(pages)
        assert _disk_state(target) == states[2]


class TestGroupCommit:
    def test_concurrent_commits_coalesce_to_one_fsync(self, tmp_path):
        wal = wal_io.WriteAheadLog(str(tmp_path / "x.wal"), 4096, 0)
        wal.sync_count = 0  # discount the header fsync bookkeeping
        for i in range(8):
            wal.append_commit({"i": i})
        barrier = threading.Barrier(8)

        def committer():
            barrier.wait()
            wal.commit()

        threads = [threading.Thread(target=committer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All eight targets were covered by the first leader's single fsync.
        assert wal.commit_count == 8
        assert wal.sync_count == 1
        wal.close()

    def test_scan_round_trips_records(self, tmp_path):
        path = str(tmp_path / "x.wal")
        wal = wal_io.WriteAheadLog(path, 4096, 7)
        from repro.storage.page import PAGE_KIND_BLOB, frame_page

        image = frame_page(b"payload", 4096, PAGE_KIND_BLOB)
        wal.append_page(42, image)
        wal.append_commit({"kind": "test", "count": 1})
        wal.commit()
        wal.close()

        scan = wal_io.scan_wal(path)
        assert scan.header["base_generation"] == 7
        assert scan.transactions == 1
        types = [r.type for r in scan.records]
        assert types == [wal_io.REC_PAGE, wal_io.REC_COMMIT]
        assert scan.records[0].page_id == 42
        assert scan.records[0].payload == image

    def test_reopen_continues_existing_log(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 5)
        first_lsn = tree.wal.last_lsn
        tree.close()

        # Reopen with wal=True: replays the 5 transactions *and* keeps
        # appending to the same log without losing them.
        tree = HybridTree.open(path, wal=True)
        assert tree.wal_replayed_transactions == 5
        assert tree.wal.last_lsn == first_lsn
        for i in range(5):
            tree.insert(np.clip(data[i] * 0.3 + 0.35, 0.0, 1.0), 2000 + i)
        live = _fingerprint(tree)
        tree.close()
        reopened = HybridTree.open(path)
        assert reopened.wal_replayed_transactions == 10
        assert _fingerprint(reopened) == live
        reopened.close()


class TestCheckpoint:
    def test_checkpoint_folds_log_and_resets_it(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 30)
        live = _fingerprint(tree)
        logged = tree.wal.size_bytes
        info = tree.checkpoint()
        assert info["generation"] == 1
        assert info["wal_bytes_folded"] == logged
        assert tree.wal.size_bytes < logged  # back to just the header
        tree.close()

        reopened = HybridTree.open(path)
        assert reopened.wal_replayed_transactions == 0  # all in the superblock
        assert _fingerprint(reopened) == live
        reopened.close()

    @pytest.mark.parametrize("torn", [False, True], ids=["clean-cut", "torn-write"])
    def test_checkpoint_crash_at_every_write_boundary(
        self, saved, tmp_path, monkeypatch, torn
    ):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 20)
        live = _fingerprint(tree)
        tree.close()

        def crashing_factory(k):
            def factory(p, page_size):
                store = FaultInjectingPageStore(
                    _real_save_store(p, page_size), seed=2000 + k
                )
                store.crash_after_writes(k, torn=torn)
                return store

            return factory

        workdir = tmp_path / "ckpt"
        workdir.mkdir()
        target = str(workdir / "t.pages")
        completed = False
        for k in range(60):
            shutil.copyfile(path, target)
            shutil.copyfile(wal_io.wal_path_for(path), wal_io.wal_path_for(target))
            monkeypatch.setattr(
                hybridtree_mod, "_save_store", crashing_factory(k)
            )
            victim = HybridTree.open(target, wal=True)
            try:
                victim.checkpoint()
            except CrashError:
                victim.close()
                # Old superblock + intact log: nothing lost.
                report = verify(target)
                assert report.ok, (k, report.errors)
                assert report.wal_transactions == 20
                assert _disk_state(target) == live, k
            else:
                victim.close()
                monkeypatch.setattr(hybridtree_mod, "_save_store", _real_save_store)
                assert _disk_state(target) == live, k
                completed = True
                break
        assert completed, "crash matrix never reached a clean checkpoint"

    def test_stale_log_after_rename_is_ignored(self, saved, tmp_path):
        """Simulate a kill between the rename and the log reset."""
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 15)
        live = _fingerprint(tree)
        stale_log = open(wal_io.wal_path_for(path), "rb").read()
        tree.checkpoint()
        tree.close()

        # Put the pre-checkpoint log back: generation 0 against a
        # generation-1 superblock.  Replay must ignore it — the new
        # superblock already contains every logged transaction.
        with open(wal_io.wal_path_for(path), "wb") as f:
            f.write(stale_log)
        report = verify(path)
        assert report.ok
        assert report.wal_stale
        reopened = HybridTree.open(path)
        assert reopened.wal_replayed_transactions == 0
        assert _fingerprint(reopened) == live
        reopened.close()


class TestSnapshotIsolation:
    def test_view_is_bit_identical_to_pin_time_state(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 10)
        pinned = _fingerprint(tree)

        view = tree.snapshot_view()
        store = tree.nm.store
        assert isinstance(store, VersionedOverlayStore)
        assert store.pinned_snapshots == 1

        _mutate(tree, data, 2000, 60)
        assert _fingerprint(tree) != pinned  # the writer really moved on
        assert _fingerprint(view) == pinned  # the reader did not
        view.validate()

        with pytest.raises(ReadOnlyStoreError):
            view.insert(np.full(DIMS, 0.5, dtype=np.float32), 99999)
        with pytest.raises(ReadOnlyStoreError):
            view.delete(np.full(DIMS, 0.5, dtype=np.float32), 1)

        view.close()
        assert store.pinned_snapshots == 0
        assert store.preserved_pages == 0  # pin released its page versions
        tree.close()

    def test_views_require_wal(self, saved):
        path, _ = saved
        tree = HybridTree.open(path)
        with pytest.raises(ValueError, match="wal"):
            tree.snapshot_view()
        tree.close()

    def test_concurrent_reader_and_writer_threads(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        stop = threading.Event()
        failures = []

        def writer():
            oid = 7000
            while not stop.is_set():
                vec = np.clip(
                    data[oid % len(data)] * 0.8 + 0.1, 0.0, 1.0
                )
                tree.insert(vec, oid)
                oid += 1

        def reader():
            try:
                for _ in range(12):
                    view = tree.snapshot_view()
                    baseline = _fingerprint(view)
                    for _ in range(5):
                        if _fingerprint(view) != baseline:
                            failures.append("snapshot drifted under writes")
                            return
                    view.close()
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(repr(exc))

        wt = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(3)]
        wt.start()
        for r in readers:
            r.start()
        for r in readers:
            r.join()
        stop.set()
        wt.join()
        assert not failures
        # Every preserved version is released once the pins are gone.
        assert tree.nm.store.pinned_snapshots == 0
        assert tree.nm.store.preserved_pages == 0
        live = _fingerprint(tree)
        tree.close()
        assert _disk_state(path) == live

    def test_parallel_engine_serves_snapshot_of_live_wal_tree(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 25)
        serial = [sorted(tree.range_search(QUERY)), tree.knn(data[0], 5)]
        store = tree.nm.store
        with tree.session(workers=2, mode="thread") as session:
            assert store.pinned_snapshots > 0  # workers run on pinned views
            parallel = [
                sorted(session.range_search(QUERY)),
                session.knn(data[0], 5),
            ]
        assert parallel == serial
        assert store.pinned_snapshots == 0
        tree.close()

    def test_mmap_reader_survives_a_checkpoint(self, saved):
        path, data = saved
        before = _disk_state(path)
        mapped = HybridTree.open(path, mmap=True)
        assert _fingerprint(mapped) == before

        writer = HybridTree.open(path, wal=True)
        _mutate(writer, data, 1000, 20)
        after = _fingerprint(writer)
        writer.checkpoint()  # atomic rename swaps the file under the mapping
        writer.close()

        # The old mapping keeps serving the pre-checkpoint snapshot…
        assert _fingerprint(mapped) == before
        mapped.close()
        # …and a fresh mapping sees the checkpointed state.
        assert _disk_state(path, mmap=True) == after


class TestFsckAndSalvage:
    def test_fsck_reports_log_state(self, saved):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        _mutate(tree, data, 1000, 8)
        tree.close()

        report = verify(path)
        assert report.ok
        assert report.wal_path == wal_io.wal_path_for(path)
        assert report.wal_transactions == 8
        assert not report.wal_stale
        assert "8 committed transaction(s)" in report.render()

        # A torn tail is a note, not an error: open handles it.
        with open(wal_io.wal_path_for(path), "ab") as f:
            f.write(b"\x00" * 17)
        report = verify(path)
        assert report.ok
        assert report.wal_transactions == 8
        assert any("discarded" in note for note in report.wal_notes)

    def test_salvage_recovers_wal_only_entries(self, saved, tmp_path):
        path, data = saved
        tree = HybridTree.open(path, wal=True)
        fresh = [
            (np.full(DIMS, 0.05 + 0.009 * i, dtype=np.float32), 9000 + i)
            for i in range(12)
        ]
        for vec, oid in fresh:
            tree.insert(vec, oid)
        expected = _fingerprint(tree)
        tree.close()

        out = str(tmp_path / "salvaged.pages")
        report = salvage(path, out)
        assert report.wal_transactions == 12
        assert report.wal_pages_applied > 0
        rebuilt = HybridTree.open(out)
        assert sorted(rebuilt.range_search(EVERYTHING)) == expected[1]
        for vec, oid in fresh:
            assert oid in rebuilt.point_search(vec)
        rebuilt.close()
