"""Conformance of the vectorized SOA kernel against the object-walk kernel.

The struct-of-arrays snapshot (:mod:`repro.engine.soa`) promises
**bit-identical** answers to the object-walk kernel for every query kind
on every compilable structure — same oids, same distances, same ordering,
same charged page accounting.  These tests pin that promise on
tie/duplicate-heavy quantized data (where ordering and dedup subtleties
actually bite), after deletes, through the persisted mmap path, and
across the snapshot lifecycle (invalidation on mutation, graceful
degradation on a corrupt section, fsck/salvage handling).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import HybridTree
from repro.distances import (
    L1,
    L2,
    LINF,
    LpMetric,
    QuadraticFormMetric,
    WeightedEuclidean,
)
from repro.engine.kernel import (
    kernel_distance_range_many,
    kernel_knn_many,
    kernel_range_search_many,
)
from repro.eval.harness import build_index
from repro.geometry.rect import Rect
from repro.storage.recovery import salvage, verify

STRUCTURES = (
    "hybrid",
    "rtree",
    "xtree",
    "kdbtree",
    "sstree",
    "srtree",
    "mtree",
    "hbtree",
)
# Bounding spheres are Euclidean: these structures accept only L2 for
# distance/knn queries (trav_check_metric raises for anything else).
L2_ONLY = {"sstree", "srtree", "mtree"}
DIMS = 4
K = 7


def _quantized(n=420, dims=DIMS, seed=7):
    """Tie- and duplicate-heavy data: coordinates on a coarse lattice."""
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 6, size=(n, dims)) / 5.0).astype(np.float32)


def _workload(seed=11, count=18, dims=DIMS):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(count, dims)).astype(np.float32)
    # Box corners on the same lattice as the data so query edges collide
    # with point coordinates exactly (the tie cases).
    lows = rng.integers(0, 4, size=(count, dims)) / 5.0
    boxes = [Rect(lo, lo + 0.4) for lo in lows]
    return centers, boxes


def _metrics_for(kind):
    if kind in L2_ONLY:
        return [L2]
    return [
        L1,
        L2,
        LINF,
        LpMetric(3.0),
        WeightedEuclidean(np.linspace(0.5, 2.0, DIMS)),
        QuadraticFormMetric(np.diag(np.linspace(1.0, 2.0, DIMS))),
    ]


def _assert_same(soa, obj, what):
    results_s, metrics_s = soa
    results_o, metrics_o = obj
    assert results_s == results_o, f"{what}: results diverged"
    assert metrics_s.charged_reads == metrics_o.charged_reads, (
        f"{what}: charged reads diverged"
    )
    assert list(metrics_s.pages) == list(metrics_o.pages), (
        f"{what}: per-query page counts diverged"
    )


def _check_all_kinds(index, centers, boxes, metrics, k=K):
    """Every query kind, SOA dispatch vs the object-walk oracle."""
    snap = index.compile_snapshot()
    assert index.soa_snapshot is snap
    if getattr(index, "trav_supports_box", True):
        soa = index.range_search_many(boxes, return_metrics=True)
        index.invalidate_snapshot()
        obj = kernel_range_search_many(index, boxes, return_metrics=True)
        index._soa_snapshot = snap
        _assert_same(soa, obj, "range")
    for metric in metrics:
        soa = index.distance_range_many(centers, 0.45, metric, return_metrics=True)
        index.invalidate_snapshot()
        obj = kernel_distance_range_many(
            index, centers, 0.45, metric, return_metrics=True
        )
        index._soa_snapshot = snap
        _assert_same(soa, obj, f"distance[{metric!r}]")
        for approx in (0.0, 0.2):
            soa = index.knn_many(
                centers, k, metric, approximation_factor=approx, return_metrics=True
            )
            index.invalidate_snapshot()
            obj = kernel_knn_many(
                index,
                centers,
                k,
                metric,
                approximation_factor=approx,
                return_metrics=True,
            )
            index._soa_snapshot = snap
            _assert_same(soa, obj, f"knn[{metric!r}, approx={approx}]")


@pytest.mark.parametrize("kind", STRUCTURES)
def test_bit_identity_on_tie_heavy_data(kind):
    data = _quantized()
    centers, boxes = _workload()
    index = build_index(kind, data)
    _check_all_kinds(index, centers, boxes, _metrics_for(kind))


@pytest.mark.parametrize("kind", ["hybrid", "rtree", "hbtree"])
def test_bit_identity_after_deletes(kind):
    data = _quantized(seed=3)
    centers, boxes = _workload(seed=5)
    index = build_index(kind, data)
    for oid in range(0, len(data), 3):
        assert index.delete(data[oid], oid)
    assert index.soa_snapshot is None  # mutation invalidated it
    _check_all_kinds(index, centers, boxes, [L2, LINF])


@pytest.mark.parametrize("kind", ["hybrid", "rtree", "mtree"])
def test_mutations_invalidate_snapshot(kind):
    data = _quantized(n=120)
    index = build_index(kind, data)
    index.compile_snapshot()
    assert index.soa_snapshot is not None
    index.insert(np.full(DIMS, 0.5, dtype=np.float32), 9999)
    assert index.soa_snapshot is None, "insert must drop the snapshot"
    index.compile_snapshot()
    if hasattr(index, "delete"):
        assert index.delete(data[0], 0)
        assert index.soa_snapshot is None, "delete must drop the snapshot"


def test_compile_is_cached_until_invalidated():
    index = build_index("hybrid", _quantized(n=100))
    first = index.compile_snapshot()
    assert index.compile_snapshot() is first
    assert index.compile_snapshot(force=True) is not first
    index.invalidate_snapshot()
    assert index.soa_snapshot is None


def test_non_traversable_index_cannot_compile():
    from repro.engine.soa import compile_snapshot

    scan = build_index("scan", _quantized(n=50))
    with pytest.raises(TypeError, match="trav"):
        compile_snapshot(scan)


def test_box_query_on_distance_index_raises():
    index = build_index("mtree", _quantized(n=100))
    index.compile_snapshot()
    with pytest.raises(TypeError, match="distance-based"):
        index.range_search_many([Rect(np.zeros(DIMS), np.ones(DIMS))])


# ----------------------------------------------------------------------
# Persistence: snapshot section, mmap path, corruption, fsck, salvage
# ----------------------------------------------------------------------
def _saved_tree(tmp_path, with_snapshot=True):
    data = _quantized(seed=9)
    tree = HybridTree.bulk_load(data)
    if with_snapshot:
        tree.compile_snapshot()
    path = os.path.join(tmp_path, "tree.pages")
    tree.save(path)
    return path, data


@pytest.mark.parametrize("mmap", [False, True])
def test_saved_snapshot_reattaches_and_conforms(tmp_path, mmap):
    path, _ = _saved_tree(tmp_path)
    centers, boxes = _workload(seed=13)
    reopened = HybridTree.open(path, mmap=mmap)
    try:
        assert reopened.soa_snapshot is not None
        assert reopened._soa_load_error is None
        _check_all_kinds(reopened, centers, boxes, [L2, L1])
    finally:
        reopened.close()


def test_save_without_snapshot_has_no_section(tmp_path):
    path, _ = _saved_tree(tmp_path, with_snapshot=False)
    report = verify(path)
    assert report.ok and not report.has_snapshot
    reopened = HybridTree.open(path)
    try:
        assert reopened.soa_snapshot is None
        assert reopened._soa_load_error is None
    finally:
        reopened.close()


def _corrupt_snapshot_section(path):
    from repro.storage.superblock import read_superblock

    manifest, page_size = read_superblock(path)
    loc = manifest["soa"]
    offset = loc["start"] * page_size + loc["bytes"] // 2
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


@pytest.mark.parametrize("mmap", [False, True])
def test_corrupt_snapshot_degrades_to_object_walk(tmp_path, mmap):
    path, data = _saved_tree(tmp_path)
    _corrupt_snapshot_section(path)
    reopened = HybridTree.open(path, mmap=mmap)
    try:
        assert reopened.soa_snapshot is None
        assert "CRC mismatch" in reopened._soa_load_error
        # Queries still run (object walk) and still agree with brute force.
        box = Rect(np.zeros(DIMS), np.full(DIMS, 0.4))
        expected = set(
            np.flatnonzero(
                np.all((data >= box.low) & (data <= box.high), axis=1)
            ).tolist()
        )
        assert set(reopened.range_search_many([box])[0]) == expected
    finally:
        reopened.close()


def test_fsck_reports_snapshot_section(tmp_path):
    path, _ = _saved_tree(tmp_path)
    clean = verify(path)
    assert clean.ok and clean.has_snapshot and not clean.snapshot_errors

    _corrupt_snapshot_section(path)
    report = verify(path)
    assert report.has_snapshot
    assert any("CRC32" in err for err in report.snapshot_errors)
    # A bad snapshot is a degraded cache, not a damaged tree: fsck stays ok.
    assert report.ok, report.errors


def test_salvage_drops_snapshot_section(tmp_path):
    path, data = _saved_tree(tmp_path)
    _corrupt_snapshot_section(path)
    out = os.path.join(tmp_path, "rebuilt.pages")
    report = salvage(path, out)
    assert report.snapshot_dropped
    rebuilt = HybridTree.open(out)
    try:
        assert rebuilt.soa_snapshot is None
        assert len(rebuilt) == len(data)
    finally:
        rebuilt.close()
