"""Tests for the paged storage substrate."""

import numpy as np
import pytest

from repro.storage import (
    DEFAULT_PAGE_SIZE,
    FilePageStore,
    InMemoryPageStore,
    IOStats,
    LRUBufferPool,
    NodeManager,
    PageLayout,
    data_node_capacity,
    kdtree_node_capacity,
    rtree_node_capacity,
    srtree_node_capacity,
    sstree_node_capacity,
)
from repro.storage.iostats import SEQUENTIAL_SPEEDUP, AccessKind
from repro.storage.page import sequential_scan_pages


class TestPageLayout:
    def test_usable(self):
        assert PageLayout().usable == DEFAULT_PAGE_SIZE - 32

    def test_rejects_tiny_pages(self):
        with pytest.raises(ValueError):
            PageLayout(page_size=16)

    def test_data_capacity_paper_values(self):
        # 4K pages: ~59 16-d entries, ~15 64-d entries (float32 + oid).
        assert data_node_capacity(16) == (4096 - 32) // (16 * 4 + 4)
        assert data_node_capacity(64) == (4096 - 32) // (64 * 4 + 4)
        assert data_node_capacity(64) == 15

    def test_data_capacity_rejects_absurd_dims(self):
        with pytest.raises(ValueError):
            data_node_capacity(10_000)

    def test_kdtree_fanout_dimension_independent(self):
        caps = {kdtree_node_capacity(d) for d in (2, 16, 64, 256)}
        assert len(caps) == 1
        assert caps.pop() > 100  # "high fanout"

    def test_rtree_fanout_shrinks_linearly(self):
        assert rtree_node_capacity(64) < rtree_node_capacity(16) / 2

    def test_srtree_fanout_smallest(self):
        for dims in (16, 32, 64):
            assert srtree_node_capacity(dims) < sstree_node_capacity(dims)
            assert srtree_node_capacity(dims) < rtree_node_capacity(dims)
        assert srtree_node_capacity(64) <= 6  # the paper-era collapse

    def test_sequential_scan_pages(self):
        per_page = data_node_capacity(16)
        assert sequential_scan_pages(per_page, 16) == 1
        assert sequential_scan_pages(per_page + 1, 16) == 2


class TestIOStats:
    def test_record_and_totals(self):
        io = IOStats()
        io.record(AccessKind.RANDOM_READ, 3)
        io.record(AccessKind.SEQUENTIAL_READ, 10)
        io.record(AccessKind.RANDOM_WRITE)
        assert io.total_accesses == 14
        assert io.random_accesses == 4
        assert io.sequential_accesses == 10

    def test_weighted_cost_sequential_discount(self):
        io = IOStats()
        io.record(AccessKind.SEQUENTIAL_READ, 10)
        assert io.weighted_cost() == pytest.approx(10 / SEQUENTIAL_SPEEDUP)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IOStats().record(AccessKind.RANDOM_READ, -1)

    def test_checkpoint_delta(self):
        io = IOStats()
        io.record(AccessKind.RANDOM_READ, 5)
        io.checkpoint()
        io.record(AccessKind.RANDOM_READ, 2)
        io.record(AccessKind.SEQUENTIAL_WRITE, 1)
        delta = io.since_checkpoint()
        assert delta.random_reads == 2 and delta.sequential_writes == 1

    def test_since_checkpoint_requires_checkpoint(self):
        with pytest.raises(RuntimeError):
            IOStats().since_checkpoint()

    def test_nested_checkpoints(self):
        io = IOStats()
        io.checkpoint()
        io.record(AccessKind.RANDOM_READ)
        io.checkpoint()
        io.record(AccessKind.RANDOM_READ, 2)
        assert io.since_checkpoint().random_reads == 2
        assert io.since_checkpoint().random_reads == 3

    def test_reset(self):
        io = IOStats()
        io.record(AccessKind.RANDOM_READ)
        io.reset()
        assert io.total_accesses == 0


class TestInMemoryPageStore:
    def test_allocate_read_write(self):
        store = InMemoryPageStore()
        pid = store.allocate()
        store.write(pid, b"hello")
        assert store.read(pid).startswith(b"hello")
        assert store.stats.random_reads == 1 and store.stats.random_writes == 1

    def test_unallocated_read_raises(self):
        with pytest.raises(KeyError):
            InMemoryPageStore().read(0)

    def test_overflow_rejected(self):
        store = InMemoryPageStore(page_size=8)
        pid = store.allocate()
        with pytest.raises(ValueError):
            store.write(pid, b"123456789")

    def test_free_recycles(self):
        store = InMemoryPageStore()
        a = store.allocate()
        store.free(a)
        assert store.allocate() == a
        assert store.allocated_pages == 1

    def test_ensure_allocated(self):
        store = InMemoryPageStore()
        store.ensure_allocated(5)
        store.write(5, b"x")
        assert store.read(5)[0:1] == b"x"


class TestFilePageStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "pages.bin"
        with FilePageStore(path, page_size=64) as store:
            a = store.allocate()
            b = store.allocate()
            store.write(a, b"alpha")
            store.write(b, b"beta")
            store.flush()
        with FilePageStore(path, page_size=64) as store:
            assert store.allocated_pages == 2
            assert store.read(0).startswith(b"alpha")
            assert store.read(1).startswith(b"beta")

    def test_short_page_padded(self, tmp_path):
        with FilePageStore(tmp_path / "p.bin", page_size=32) as store:
            pid = store.allocate()
            store.write(pid, b"x")
            assert len(store.read(pid)) == 32


class TestBufferPool:
    def test_hit_and_miss_accounting(self):
        store = InMemoryPageStore()
        pids = [store.allocate() for _ in range(3)]
        for pid in pids:
            store.write(pid, bytes([pid]))
        store.stats.reset()
        pool = LRUBufferPool(store, capacity=2)
        pool.read(pids[0])
        pool.read(pids[0])
        assert pool.hits == 1 and pool.misses == 1
        assert store.stats.random_reads == 1  # hit not charged

    def test_lru_eviction_writes_back_dirty(self):
        store = InMemoryPageStore()
        pids = [store.allocate() for _ in range(3)]
        pool = LRUBufferPool(store, capacity=2)
        pool.write(pids[0], b"a")
        pool.write(pids[1], b"b")
        pool.write(pids[2], b"c")  # evicts pids[0], which is dirty
        assert store.read(pids[0]).startswith(b"a")

    def test_failed_writeback_keeps_dirty_victim(self):
        # If evicting a dirty victim fails mid-write-back, the frame must
        # stay in the pool (still dirty) — dropping it would lose the only
        # copy of the data.
        from repro.storage.errors import TransientStorageError
        from repro.storage.faults import FaultInjectingPageStore

        inner = InMemoryPageStore()
        store = FaultInjectingPageStore(inner)
        pids = [store.allocate() for _ in range(3)]
        pool = LRUBufferPool(store, capacity=2)
        pool.write(pids[0], b"a")
        pool.write(pids[1], b"b")
        store.fail_writes(1)
        with pytest.raises(TransientStorageError):
            pool.write(pids[2], b"c")  # write-back of victim pids[0] fails
        # The victim survived in the pool and its data is intact.
        assert pool.read(pids[0]).startswith(b"a")
        assert pool.hits == 1
        # A retry succeeds and nothing was lost.
        pool.write(pids[2], b"c")
        pool.flush()
        for pid, payload in zip(pids, (b"a", b"b", b"c")):
            assert inner.read(pid).startswith(payload)

    def test_flush(self):
        store = InMemoryPageStore()
        pid = store.allocate()
        pool = LRUBufferPool(store, capacity=2)
        pool.write(pid, b"z")
        pool.flush()
        assert store.read(pid).startswith(b"z")

    def test_invalidate(self):
        store = InMemoryPageStore()
        pid = store.allocate()
        pool = LRUBufferPool(store, capacity=2)
        pool.write(pid, b"z")
        pool.invalidate(pid)
        assert len(pool) == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUBufferPool(InMemoryPageStore(), 0)

    def test_hit_rate(self):
        store = InMemoryPageStore()
        pid = store.allocate()
        store.write(pid, b"")
        pool = LRUBufferPool(store, capacity=1)
        assert pool.hit_rate == 0.0
        pool.read(pid)
        pool.read(pid)
        assert pool.hit_rate == 0.5


class TestNodeManager:
    def test_get_charges_one_read(self):
        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "node", charge=False)
        nm.stats.reset()
        assert nm.get(pid) == "node"
        assert nm.stats.random_reads == 1

    def test_uncharged_get(self):
        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "node", charge=False)
        nm.stats.reset()
        nm.get(pid, charge=False)
        assert nm.stats.total_accesses == 0

    def test_missing_node_without_codec(self):
        nm = NodeManager()
        pid = nm.allocate()
        with pytest.raises(KeyError):
            nm.get(pid)

    def test_flush_requires_codec(self):
        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "x")
        with pytest.raises(RuntimeError):
            nm.flush()

    def test_evict_all_guards_dirty(self):
        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "x")
        with pytest.raises(RuntimeError):
            nm.evict_all()

    def test_free_drops_cache(self):
        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "x")
        nm.free(pid)
        assert nm.cached_nodes == 0


class TestHybridNodeCodec:
    def test_data_node_round_trip(self):
        from repro.core.nodes import DataNode
        from repro.storage.serialization import HybridNodeCodec

        rng = np.random.default_rng(0)
        codec = HybridNodeCodec(dims=8, data_capacity=20)
        node = DataNode(8, 20)
        for i in range(13):
            node.add(rng.random(8).astype(np.float32), i * 7)
        decoded = codec.decode(codec.encode(node))
        assert decoded.count == 13
        assert np.array_equal(decoded.points(), node.points())
        assert np.array_equal(decoded.live_oids(), node.live_oids())

    def test_index_node_round_trip(self):
        from repro.core.kdnodes import KDInternal, KDLeaf
        from repro.core.nodes import IndexNode
        from repro.storage.serialization import HybridNodeCodec

        codec = HybridNodeCodec(dims=4, data_capacity=10)
        kd = KDInternal(
            2, 0.75, 0.5, KDLeaf(7), KDInternal(0, 0.25, 0.25, KDLeaf(9), KDLeaf(11))
        )
        node = IndexNode(kd, level=3)
        decoded = codec.decode(codec.encode(node))
        assert decoded.level == 3
        assert decoded.child_ids() == [7, 9, 11]
        assert decoded.kd_root.dim == 2
        assert decoded.kd_root.lsp == pytest.approx(0.75)
        assert decoded.kd_root.rsp == pytest.approx(0.5)

    def test_oversized_node_rejected(self):
        from repro.core.nodes import DataNode
        from repro.storage.serialization import HybridNodeCodec

        codec = HybridNodeCodec(dims=64, data_capacity=64, page_size=4096)
        node = DataNode(64, 64)  # deliberately beyond the 4K budget
        for i in range(64):
            node.add(np.zeros(64, dtype=np.float32), i)
        with pytest.raises(ValueError):
            codec.encode(node)

    def test_unknown_kind_rejected(self):
        from repro.storage.serialization import HybridNodeCodec

        with pytest.raises(ValueError):
            HybridNodeCodec(2, 4).decode(b"\x99\x00\x00\x00")

    def test_full_capacity_nodes_fit_page(self):
        """The capacity model must never admit a node that cannot be packed."""
        from repro.core.kdnodes import KDInternal, KDLeaf
        from repro.core.nodes import DataNode, IndexNode
        from repro.storage.serialization import HybridNodeCodec

        for dims in (2, 16, 64):
            codec = HybridNodeCodec(dims, data_node_capacity(dims))
            full = DataNode(dims, data_node_capacity(dims))
            for i in range(full.capacity):
                full.add(np.zeros(dims, dtype=np.float32), i)
            assert len(codec.encode(full)) <= 4096

        # Balanced kd-tree with the maximum number of leaves.
        cap = kdtree_node_capacity(16)

        def build(lo, hi):
            if hi - lo == 1:
                return KDLeaf(lo)
            mid = (lo + hi) // 2
            return KDInternal(0, 0.5, 0.5, build(lo, mid), build(mid, hi))

        codec = HybridNodeCodec(16, data_node_capacity(16))
        node = IndexNode(build(0, cap), level=1)
        assert len(codec.encode(node)) <= 4096


class TestBoundedNodeManager:
    def _saved_tree(self, tmp_path):
        from repro.core import HybridTree
        from repro.datasets import uniform_dataset
        from repro.geometry.rect import Rect

        data = uniform_dataset(1500, 6, seed=70)
        tree = HybridTree(6)
        for oid, v in enumerate(data):
            tree.insert(v, oid)
        path = str(tmp_path / "t.pages")
        tree.save(path)
        return path, tree, Rect([0.2] * 6, [0.8] * 6)

    def test_requires_codec(self):
        with pytest.raises(ValueError):
            NodeManager(max_cached=4)

    def test_rejects_zero_capacity(self):
        from repro.storage.serialization import HybridNodeCodec

        with pytest.raises(ValueError):
            NodeManager(codec=HybridNodeCodec(2, 8), max_cached=0)

    def test_eviction_bounds_cache(self, tmp_path):
        from repro.core import HybridTree

        path, tree, box = self._saved_tree(tmp_path)
        reopened = HybridTree.open(path, buffer_pages=8)
        reopened.range_search(box)
        assert reopened.nm.cached_nodes <= 8

    def test_results_identical_under_pressure(self, tmp_path):
        from repro.core import HybridTree

        path, tree, box = self._saved_tree(tmp_path)
        cold = HybridTree.open(path)
        tight = HybridTree.open(path, buffer_pages=4)
        assert set(tight.range_search(box)) == set(cold.range_search(box))

    def test_warm_hits_are_free(self, tmp_path):
        from repro.core import HybridTree

        path, tree, box = self._saved_tree(tmp_path)
        buffered = HybridTree.open(path, buffer_pages=10_000)
        buffered.range_search(box)
        buffered.io.reset()
        buffered.range_search(box)
        assert buffered.io.random_reads == 0  # fully cached: no faults

    def test_bounded_miss_respects_charge_flag(self, tmp_path):
        """Regression: ``get(..., charge=False)`` used to charge anyway when
        the bounded cache missed and the page was re-read from the store."""
        from repro.core import HybridTree

        path, tree, box = self._saved_tree(tmp_path)
        small = HybridTree.open(path, buffer_pages=4)
        small.range_search(box)  # fault + evict: root may no longer be cached
        small.nm.evict_all()
        small.io.reset()
        small.nm.get(small.root_id, charge=False)
        assert small.io.total_accesses == 0
        # validate() reads every page uncharged even under a bounded pool.
        small.io.reset()
        small.validate()
        assert small.io.total_accesses == 0

    def test_dirty_eviction_writes_back(self, tmp_path):
        from repro.core import HybridTree
        from repro.geometry.rect import Rect
        import numpy as np

        path, tree, box = self._saved_tree(tmp_path)
        small = HybridTree.open(path, buffer_pages=6)
        v = np.full(6, 0.5, dtype=np.float32)
        small.insert(v, 999_999)
        # Thrash the cache so the dirty page is evicted and re-read.
        small.range_search(Rect.unit(6))
        assert 999_999 in small.point_search(v)


class TestPinning:
    def test_pin_charges_once_then_free(self):
        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "node", charge=False)
        nm.stats.reset()
        assert nm.pin(pid) == "node"
        assert nm.stats.random_reads == 1
        nm.get(pid)
        nm.get(pid)
        assert nm.stats.random_reads == 1  # pinned visits are free
        nm.unpin(pid)
        nm.get(pid)
        assert nm.stats.random_reads == 2

    def test_unpin_all(self):
        nm = NodeManager()
        pids = [nm.allocate() for _ in range(3)]
        for pid in pids:
            nm.put(pid, "n", charge=False)
            nm.pin(pid, charge=False)
        assert nm.pinned_nodes == 3
        nm.unpin_all()
        assert nm.pinned_nodes == 0

    def test_free_discards_pin(self):
        nm = NodeManager()
        pid = nm.allocate()
        nm.put(pid, "n", charge=False)
        nm.pin(pid, charge=False)
        nm.free(pid)
        assert nm.pinned_nodes == 0

    def test_pinned_never_evicted_under_pressure(self, tmp_path):
        from repro.core import HybridTree
        from repro.datasets import uniform_dataset
        from repro.geometry.rect import Rect

        data = uniform_dataset(1500, 6, seed=71)
        tree = HybridTree(6)
        for oid, v in enumerate(data):
            tree.insert(v, oid)
        path = str(tmp_path / "t.pages")
        tree.save(path)
        small = HybridTree.open(path, buffer_pages=3)
        small.nm.pin(small.root_id)
        small.range_search(Rect.unit(6))  # way more than 3 pages touched
        assert small.nm.cached_nodes <= 3 + small.nm.pinned_nodes
        small.io.reset()
        small.nm.get(small.root_id)
        assert small.io.random_reads == 0

    def test_evict_all_keeps_pinned(self):
        class StrCodec:
            def encode(self, node):
                return node.encode()

            def decode(self, data):
                return data.rstrip(b"\x00").decode()

        nm = NodeManager(codec=StrCodec())
        pid, other = nm.allocate(), nm.allocate()
        nm.put(pid, "a", charge=False)
        nm.put(other, "b", charge=False)
        nm.flush()
        nm.pin(pid, charge=False)
        nm.evict_all()
        assert nm.cached_nodes == 1
        nm.stats.reset()
        assert nm.get(pid) == "a"
        assert nm.stats.random_reads == 0


class TestPageFraming:
    def test_round_trip(self):
        from repro.storage import frame_page, unframe_page

        page = frame_page(b"hello", 4096, kind=1, level=3, entry_count=42)
        assert len(page) == 4096
        header, payload = unframe_page(page)
        assert payload == b"hello"
        assert (header.kind, header.level, header.entry_count) == (1, 3, 42)

    def test_payload_budget_enforced(self):
        from repro.storage import PAGE_HEADER_SIZE, frame_page

        frame_page(b"x" * (4096 - PAGE_HEADER_SIZE), 4096, kind=1)
        with pytest.raises(ValueError):
            frame_page(b"x" * (4096 - PAGE_HEADER_SIZE + 1), 4096, kind=1)

    def test_empty_payload(self):
        from repro.storage import frame_page, unframe_page

        header, payload = unframe_page(frame_page(b"", 512, kind=3))
        assert payload == b""
        assert header.payload_length == 0

    def test_zero_page_rejected(self):
        from repro.storage import PageCorruptionError, unframe_page

        with pytest.raises(PageCorruptionError):
            unframe_page(b"\x00" * 4096, page_id=9)

    def test_truncated_page_rejected(self):
        from repro.storage import PageCorruptionError, frame_page, unframe_page

        page = frame_page(b"data", 4096, kind=1)
        with pytest.raises(PageCorruptionError):
            unframe_page(page[:16])

    def test_corruption_error_is_a_value_error(self):
        from repro.storage import PageCorruptionError

        err = PageCorruptionError("CRC32 mismatch", page_id=5)
        assert isinstance(err, ValueError)
        assert "page 5" in str(err)


class TestAllocatorHardening:
    def test_double_free_rejected(self):
        store = InMemoryPageStore()
        pid = store.allocate()
        store.free(pid)
        with pytest.raises(ValueError, match="double free"):
            store.free(pid)

    def test_free_after_recycle_is_legal(self):
        store = InMemoryPageStore()
        pid = store.allocate()
        store.free(pid)
        assert store.allocate() == pid
        store.free(pid)  # freed again only after being re-allocated

    def test_ensure_allocated_jumps_horizon(self):
        store = InMemoryPageStore()
        store.ensure_allocated(10_000_000)  # O(1), not a 10M-iteration loop
        assert store._next_id == 10_000_001
        store.ensure_allocated(5)  # never shrinks
        assert store._next_id == 10_000_001

    def test_set_allocator_state(self):
        store = InMemoryPageStore()
        store.set_allocator_state(10, [2, 7, 99])  # 99 out of range: dropped
        assert store._next_id == 10
        assert set(store.free_page_ids) == {2, 7}
        with pytest.raises(ValueError):
            store.set_allocator_state(10, [3, 3])


class TestOverlayPageStore:
    def test_reads_fall_through_writes_do_not(self, tmp_path):
        from repro.storage import OverlayPageStore

        with FilePageStore(tmp_path / "base.bin", page_size=64) as base:
            pid = base.allocate()
            base.write(pid, b"disk", charge=False)
            base.flush()
            overlay = OverlayPageStore(base)
            assert overlay.read(pid, charge=False).startswith(b"disk")
            overlay.write(pid, b"memory", charge=False)
            assert overlay.read(pid, charge=False).startswith(b"memory")
            # The file never saw the overlay write.
            assert base.read(pid, charge=False).startswith(b"disk")

    def test_overlay_pages_beyond_base_read_as_zeros(self, tmp_path):
        from repro.storage import OverlayPageStore

        with FilePageStore(tmp_path / "base.bin", page_size=64) as base:
            overlay = OverlayPageStore(base)
            pid = overlay.allocate()
            assert overlay.read(pid, charge=False) == b"\x00" * 64

    def test_shares_stats_with_base(self, tmp_path):
        from repro.storage import OverlayPageStore

        with FilePageStore(tmp_path / "base.bin", page_size=64) as base:
            overlay = OverlayPageStore(base)
            pid = overlay.allocate()
            overlay.write(pid, b"x")
            overlay.read(pid)
            assert base.stats.random_writes == 1
            assert base.stats.random_reads == 1


class TestChecksummedFileStore:
    def test_checked_read_rejects_raw_bytes(self, tmp_path):
        from repro.storage import PageCorruptionError

        with FilePageStore(tmp_path / "x.bin", 4096, checksums=True) as store:
            pid = store.allocate()
            store.write(pid, b"raw unframed bytes", charge=False)
            with pytest.raises(PageCorruptionError):
                store.read(pid, charge=False)

    def test_checked_read_accepts_framed_page(self, tmp_path):
        from repro.storage import frame_page, unframe_page

        with FilePageStore(tmp_path / "x.bin", 4096, checksums=True) as store:
            pid = store.allocate()
            store.write(pid, frame_page(b"payload", 4096, kind=1), charge=False)
            _, payload = unframe_page(store.read(pid, charge=False))
            assert payload == b"payload"
