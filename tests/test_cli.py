"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info", "--dims", "16", "64"]) == 0
    out = capsys.readouterr().out
    assert "226" in out  # dimension-independent kd fanout
    assert "hybrid" in out


def test_generate_build_query_roundtrip(tmp_path, capsys):
    data_path = str(tmp_path / "d.npy")
    tree_path = str(tmp_path / "t.pages")
    assert main([
        "generate", "--dataset", "clustered", "--count", "800",
        "--dims", "6", "--seed", "3", "--out", data_path,
    ]) == 0
    data = np.load(data_path)
    assert data.shape == (800, 6)

    assert main(["build", "--data", data_path, "--out", tree_path, "--bulk"]) == 0
    capsys.readouterr()

    vector = ",".join(str(float(x)) for x in data[13])
    assert main([
        "query", "--tree", tree_path, "--vector", vector, "--knn", "3",
        "--metric", "l1",
    ]) == 0
    out = capsys.readouterr().out
    lines = [line for line in out.strip().splitlines() if line]
    assert len(lines) == 3
    first_oid, first_dist = lines[0].split("\t")
    assert first_oid == "13" and float(first_dist) == 0.0


def test_query_radius_and_box(tmp_path, capsys):
    data_path = str(tmp_path / "d.npy")
    tree_path = str(tmp_path / "t.pages")
    main(["generate", "--dataset", "uniform", "--count", "500", "--dims", "3",
          "--out", data_path])
    main(["build", "--data", data_path, "--out", tree_path])
    capsys.readouterr()

    data = np.load(data_path)
    vector = ",".join(str(float(x)) for x in data[0])
    assert main([
        "query", "--tree", tree_path, "--vector", vector, "--radius", "0.2",
    ]) == 0
    out = capsys.readouterr().out
    assert "0\t0.000000" in out

    assert main(["query", "--tree", tree_path, "--box", "0,0,0:1,1,1"]) == 0
    out = capsys.readouterr().out
    assert len(out.strip().splitlines()) == 500


def test_query_requires_mode(tmp_path):
    data_path = str(tmp_path / "d.npy")
    tree_path = str(tmp_path / "t.pages")
    main(["generate", "--dataset", "uniform", "--count", "50", "--dims", "2",
          "--out", data_path])
    main(["build", "--data", data_path, "--out", tree_path])
    with pytest.raises(SystemExit):
        main(["query", "--tree", tree_path, "--vector", "0.5,0.5"])


def test_bad_metric_rejected(tmp_path):
    data_path = str(tmp_path / "d.npy")
    tree_path = str(tmp_path / "t.pages")
    main(["generate", "--dataset", "uniform", "--count", "50", "--dims", "2",
          "--out", data_path])
    main(["build", "--data", data_path, "--out", tree_path])
    with pytest.raises(SystemExit):
        main(["query", "--tree", tree_path, "--vector", "0.5,0.5", "--knn", "1",
              "--metric", "hamming"])


def test_custom_lp_metric(tmp_path, capsys):
    data_path = str(tmp_path / "d.npy")
    tree_path = str(tmp_path / "t.pages")
    main(["generate", "--dataset", "uniform", "--count", "200", "--dims", "2",
          "--out", data_path])
    main(["build", "--data", data_path, "--out", tree_path])
    capsys.readouterr()
    assert main(["query", "--tree", tree_path, "--vector", "0.5,0.5",
                 "--knn", "2", "--metric", "3"]) == 0


def test_bench_smoke(capsys):
    assert main(["bench", "--figure", "fig5", "--scale", "0.05"]) == 0
    out = capsys.readouterr().out
    assert "hybrid" in out and "hybrid-vam" in out
