"""Tests for bounding spheres (SS/SR-tree substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect
from repro.geometry.sphere import Sphere


class TestConstruction:
    def test_basic(self):
        s = Sphere(np.array([0.0, 0.0]), 1.0)
        assert s.dims == 2 and s.radius == 1.0

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            Sphere(np.array([0.0]), -0.1)

    def test_from_points_covers_all(self):
        pts = np.random.default_rng(0).random((50, 4))
        s = Sphere.from_points(pts)
        dists = np.linalg.norm(pts - s.center, axis=1)
        assert np.all(dists <= s.radius + 1e-9)

    def test_from_points_centroid(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0]])
        s = Sphere.from_points(pts)
        assert np.allclose(s.center, [1.0, 0.0])
        assert s.radius == pytest.approx(1.0)

    def test_merge_all_covers_children(self):
        a = Sphere(np.array([0.0, 0.0]), 1.0)
        b = Sphere(np.array([4.0, 0.0]), 0.5)
        m = Sphere.merge_all([a, b], weights=[3, 1])
        for child in (a, b):
            gap = np.linalg.norm(child.center - m.center) + child.radius
            assert gap <= m.radius + 1e-9

    def test_merge_all_rejects_empty(self):
        with pytest.raises(ValueError):
            Sphere.merge_all([])


class TestPredicates:
    def test_contains_point(self):
        s = Sphere(np.array([0.0, 0.0]), 1.0)
        assert s.contains_point(np.array([0.6, 0.6]))
        assert not s.contains_point(np.array([0.9, 0.9]))

    def test_mindist_point(self):
        s = Sphere(np.array([0.0, 0.0]), 1.0)
        assert s.mindist_point(np.array([3.0, 0.0])) == pytest.approx(2.0)
        assert s.mindist_point(np.array([0.2, 0.0])) == 0.0

    def test_intersects_rect(self):
        s = Sphere(np.array([0.0, 0.0]), 1.0)
        assert s.intersects_rect(Rect([0.5, 0.5], [2, 2]))
        assert not s.intersects_rect(Rect([2, 2], [3, 3]))

    def test_intersects_sphere(self):
        a = Sphere(np.array([0.0, 0.0]), 1.0)
        assert a.intersects_sphere(Sphere(np.array([1.5, 0.0]), 0.6))
        assert not a.intersects_sphere(Sphere(np.array([3.0, 0.0]), 0.5))


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(-5, 5, width=32), min_size=3, max_size=3),
        min_size=1,
        max_size=30,
    )
)
def test_property_from_points_is_bounding(points):
    pts = np.array(points)
    s = Sphere.from_points(pts)
    assert np.all(np.linalg.norm(pts - s.center, axis=1) <= s.radius + 1e-6)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.floats(-5, 5, width=32), min_size=2, max_size=2),
    st.floats(0, 3, width=32),
    st.lists(st.floats(-5, 5, width=32), min_size=2, max_size=2),
)
def test_property_mindist_lower_bounds_members(center, radius, probe):
    """mindist to the ball never exceeds the distance to any member point."""
    s = Sphere(np.array(center), float(radius))
    probe = np.array(probe)
    # The centre is a member of the ball.
    assert s.mindist_point(probe) <= np.linalg.norm(probe - s.center) + 1e-9
