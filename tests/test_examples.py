"""Smoke tests: every example script runs to completion.

Marked ``slow`` — they build real indexes.  Deselect with ``-m "not slow"``.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, monkeypatch, tmp_path) -> None:
    monkeypatch.chdir(tmp_path)  # scripts write temp files relative to /tmp
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


@pytest.mark.slow
def test_quickstart_runs(monkeypatch, tmp_path, capsys):
    _run("quickstart.py", monkeypatch, tmp_path)
    out = capsys.readouterr().out
    assert "built:" in out and "insert/delete ok" in out


@pytest.mark.slow
def test_polygon_retrieval_runs(monkeypatch, tmp_path, capsys):
    _run("polygon_retrieval.py", monkeypatch, tmp_path)
    out = capsys.readouterr().out
    assert "nearest shapes" in out and "cold-start" in out


@pytest.mark.slow
def test_image_search_runs(monkeypatch, tmp_path, capsys):
    _run("image_search.py", monkeypatch, tmp_path)
    out = capsys.readouterr().out
    assert "iteration 3" in out and "ingested 100 new images" in out


@pytest.mark.slow
def test_cost_model_tour_runs(monkeypatch, tmp_path, capsys):
    _run("cost_model_tour.py", monkeypatch, tmp_path)
    out = capsys.readouterr().out
    assert "ELS  0 bits" in out


def test_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    for script in scripts:
        source = (EXAMPLES / script).read_text()
        assert source.lstrip().startswith('"""'), f"{script} lacks a docstring"
        assert "def main()" in source, f"{script} lacks a main()"
