"""Unit and property tests for repro.geometry.rect."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.rect import Rect


def rect_strategy(dims=3, lo=-10.0, hi=10.0):
    """Random valid rects with finite float coordinates."""

    def build(corners):
        a = np.array(corners[0])
        b = np.array(corners[1])
        return Rect(np.minimum(a, b), np.maximum(a, b))

    coord = st.floats(lo, hi, allow_nan=False, allow_infinity=False, width=32)
    point = st.lists(coord, min_size=dims, max_size=dims)
    return st.tuples(point, point).map(build)


class TestConstruction:
    def test_unit_cube(self):
        r = Rect.unit(4)
        assert r.dims == 4
        assert r.volume() == 1.0
        assert np.all(r.low == 0.0) and np.all(r.high == 1.0)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Rect([0.0, 1.0], [1.0, 0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            Rect([0.0, 0.0], [1.0])

    def test_from_points_is_tight(self):
        pts = np.array([[0.1, 0.9], [0.5, 0.2], [0.3, 0.4]])
        r = Rect.from_points(pts)
        assert np.allclose(r.low, [0.1, 0.2])
        assert np.allclose(r.high, [0.5, 0.9])

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect.from_points(np.empty((0, 2)))

    def test_merge_all(self):
        r = Rect.merge_all([Rect([0, 0], [1, 1]), Rect([2, -1], [3, 0.5])])
        assert np.allclose(r.low, [0, -1])
        assert np.allclose(r.high, [3, 1])

    def test_merge_all_rejects_empty(self):
        with pytest.raises(ValueError):
            Rect.merge_all([])

    def test_around_point(self):
        r = Rect.around_point(np.array([0.5, 0.5]), 0.1)
        assert np.allclose(r.low, [0.4, 0.4])
        assert np.allclose(r.high, [0.6, 0.6])


class TestMeasures:
    def test_volume_and_margin(self):
        r = Rect([0, 0, 0], [2, 3, 4])
        assert r.volume() == 24.0
        assert r.margin() == 9.0

    def test_degenerate_volume(self):
        r = Rect([1, 1], [1, 2])
        assert r.volume() == 0.0

    def test_center(self):
        assert np.allclose(Rect([0, 2], [2, 4]).center, [1, 3])


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect([0, 0], [1, 1])
        assert r.contains_point(np.array([0.0, 1.0]))
        assert not r.contains_point(np.array([1.0001, 0.5]))

    def test_contains_rect(self):
        outer = Rect([0, 0], [4, 4])
        assert outer.contains_rect(Rect([1, 1], [2, 2]))
        assert outer.contains_rect(outer)
        assert not Rect([1, 1], [2, 2]).contains_rect(outer)

    def test_intersects_shared_boundary(self):
        assert Rect([0, 0], [1, 1]).intersects(Rect([1, 0], [2, 1]))

    def test_disjoint(self):
        assert not Rect([0, 0], [1, 1]).intersects(Rect([1.5, 0], [2, 1]))


class TestCombination:
    def test_intersection(self):
        inter = Rect([0, 0], [2, 2]).intersection(Rect([1, 1], [3, 3]))
        assert inter == Rect([1, 1], [2, 2])

    def test_intersection_disjoint_is_none(self):
        assert Rect([0, 0], [1, 1]).intersection(Rect([2, 2], [3, 3])) is None

    def test_enlargement_zero_inside(self):
        r = Rect([0, 0], [1, 1])
        assert r.enlargement(np.array([0.5, 0.5])) == 0.0
        assert r.enlargement(np.array([2.0, 0.5])) > 0.0

    def test_overlap_volume(self):
        a = Rect([0, 0], [2, 2])
        b = Rect([1, 1], [3, 3])
        assert a.overlap_volume(b) == 1.0
        assert a.overlap_volume(Rect([5, 5], [6, 6])) == 0.0

    def test_clip_below_and_above(self):
        r = Rect([0, 0], [4, 4])
        assert r.clip_below(0, 1.5) == Rect([0, 0], [1.5, 4])
        assert r.clip_above(1, 3.0) == Rect([0, 3], [4, 4])

    def test_clip_clamps_out_of_range_bounds(self):
        r = Rect([0, 0], [4, 4])
        assert r.clip_below(0, 9.0) == r
        assert r.clip_above(0, -3.0) == r
        # Clipping below the low bound degenerates, never inverts.
        assert r.clip_below(0, -1.0).extents[0] == 0.0


class TestVectorized:
    def test_contains_points_mask(self):
        r = Rect([0, 0], [1, 1])
        pts = np.array([[0.5, 0.5], [1.5, 0.5], [1.0, 1.0]])
        assert r.contains_points_mask(pts).tolist() == [True, False, True]


class TestDunder:
    def test_eq_and_hash(self):
        assert Rect([0, 0], [1, 1]) == Rect([0, 0], [1, 1])
        assert hash(Rect([0, 0], [1, 1])) == hash(Rect([0, 0], [1, 1]))
        assert Rect([0, 0], [1, 1]) != Rect([0, 0], [1, 2])

    def test_repr_roundtrippable_values(self):
        assert "Rect" in repr(Rect([0], [1]))


@settings(max_examples=100, deadline=None)
@given(rect_strategy(), rect_strategy())
def test_property_intersection_commutes(a, b):
    ab = a.intersection(b)
    ba = b.intersection(a)
    assert (ab is None) == (ba is None)
    if ab is not None:
        assert ab == ba


@settings(max_examples=100, deadline=None)
@given(rect_strategy(), rect_strategy())
def test_property_merge_contains_both(a, b):
    m = a.merge(b)
    assert m.contains_rect(a) and m.contains_rect(b)


@settings(max_examples=100, deadline=None)
@given(rect_strategy(), rect_strategy())
def test_property_intersection_within_both(a, b):
    inter = a.intersection(b)
    if inter is not None:
        assert a.contains_rect(inter) and b.contains_rect(inter)
        assert a.intersects(b)
    else:
        assert not a.intersects(b)


@settings(max_examples=100, deadline=None)
@given(rect_strategy(), rect_strategy())
def test_property_overlap_volume_bounded(a, b):
    ov = a.overlap_volume(b)
    assert 0.0 <= ov <= min(a.volume(), b.volume()) + 1e-9


@settings(max_examples=100, deadline=None)
@given(rect_strategy())
def test_property_contains_implies_intersects(a):
    assert a.intersects(a)
    assert a.contains_rect(a)
