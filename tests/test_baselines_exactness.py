"""Cross-structure exactness: every index answers every query identically.

These are the load-bearing integration tests: for random datasets, every
index structure (hybrid tree included) must return exactly the brute-force
answer for box range, distance range and k-NN queries.
"""

import numpy as np
import pytest

from repro.baselines import HBTree, KDBTree, RTree, SRTree, SSTree, SequentialScan
from repro.core import HybridTree
from repro.distances import L1, L2
from repro.geometry.rect import Rect
from tests.conftest import (
    brute_force_distance_range,
    brute_force_knn_dists,
    brute_force_range,
    random_boxes,
)

N = 2500
DIMS = 6


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(99)
    # Half uniform, half clustered — exercises skew.
    uniform = rng.random((N // 2, DIMS))
    centers = rng.random((5, DIMS))
    clustered = centers[rng.integers(0, 5, N - N // 2)] + rng.normal(
        0, 0.03, (N - N // 2, DIMS)
    )
    return np.clip(np.vstack([uniform, clustered]), 0, 1).astype(np.float32)


def _build(cls, data, **kwargs):
    if cls is HybridTree:
        tree = HybridTree(data.shape[1], **kwargs)
        for oid, v in enumerate(data):
            tree.insert(v, oid)
        return tree
    return cls.from_points(data, **kwargs)


INDEXES = [
    ("hybrid", HybridTree, {}),
    ("hybrid-noels", HybridTree, {"els_bits": 0}),
    ("seqscan", SequentialScan, {}),
    ("rtree", RTree, {}),
    ("sstree", SSTree, {}),
    ("srtree-rtree", SRTree, {"insert_policy": "rtree"}),
    ("srtree-sstree", SRTree, {"insert_policy": "sstree"}),
    ("kdbtree", KDBTree, {}),
    ("hbtree", HBTree, {}),
]


@pytest.fixture(scope="module")
def built(data):
    return {name: _build(cls, data, **kw) for name, cls, kw in INDEXES}


@pytest.mark.parametrize("name", [n for n, _, _ in INDEXES])
def test_range_search_exact(name, data, built, rng):
    index = built[name]
    for query in random_boxes(rng, DIMS, 12):
        assert set(index.range_search(query)) == brute_force_range(data, query), name


@pytest.mark.parametrize("name", [n for n, _, _ in INDEXES])
def test_point_search_exact(name, data, built):
    index = built[name]
    for oid in (0, 7, N - 1):
        assert oid in index.point_search(data[oid]), name


@pytest.mark.parametrize(
    "name", [n for n, _, _ in INDEXES if n not in ("sstree",)]
)
def test_distance_range_l1_exact(name, data, built, rng):
    """L1 queries on every structure that supports arbitrary metrics."""
    index = built[name]
    for _ in range(6):
        q = data[int(rng.integers(N))].astype(np.float64)
        radius = float(rng.uniform(0.2, 0.8))
        got = {oid for oid, _ in index.distance_range(q, radius, L1)}
        assert got == brute_force_distance_range(data, q, radius, L1), name


@pytest.mark.parametrize("name", [n for n, _, _ in INDEXES])
def test_distance_range_l2_exact(name, data, built, rng):
    index = built[name]
    for _ in range(6):
        q = data[int(rng.integers(N))].astype(np.float64)
        radius = float(rng.uniform(0.1, 0.5))
        got = {oid for oid, _ in index.distance_range(q, radius, L2)}
        assert got == brute_force_distance_range(data, q, radius, L2), name


@pytest.mark.parametrize("name", [n for n, _, _ in INDEXES])
def test_knn_l2_exact(name, data, built, rng):
    index = built[name]
    for _ in range(5):
        q = rng.random(DIMS)
        got = index.knn(q, 8, L2)
        expected = brute_force_knn_dists(data, q, 8, L2)
        assert np.allclose([d for _, d in got], expected, atol=1e-5), name


@pytest.mark.parametrize(
    "name", [n for n, _, _ in INDEXES if n not in ("sstree",)]
)
def test_knn_l1_exact(name, data, built, rng):
    index = built[name]
    for _ in range(5):
        q = rng.random(DIMS)
        got = index.knn(q, 8, L1)
        expected = brute_force_knn_dists(data, q, 8, L1)
        assert np.allclose([d for _, d in got], expected, atol=1e-5), name


def test_sstree_rejects_non_euclidean(built):
    with pytest.raises(ValueError):
        built["sstree"].distance_range(np.zeros(DIMS), 1.0, L1)
    with pytest.raises(ValueError):
        built["sstree"].knn(np.zeros(DIMS), 3, L1)


def test_all_indexes_account_io(built):
    whole = Rect.unit(DIMS)
    for name, index in built.items():
        index.io.reset()
        index.range_search(whole)
        assert index.io.total_accesses > 0, name


def test_all_indexes_report_pages_and_len(built):
    for name, index in built.items():
        assert len(index) == N, name
        assert index.pages() > 0, name


@pytest.mark.parametrize("structure", ["kdbtree", "hbtree", "srtree-rtree"])
def test_property_randomized_small_trees(structure):
    """Randomized mini-instances: build, query, compare with brute force.

    Complements the fixed-seed module fixtures with many small shapes
    (duplicates, clusters, few points) where split edge cases live.
    """
    import numpy as np

    from repro.geometry.rect import Rect

    cls_and_kwargs = {
        "kdbtree": (KDBTree, {}),
        "hbtree": (HBTree, {}),
        "srtree-rtree": (SRTree, {"insert_policy": "rtree"}),
    }[structure]
    cls, kwargs = cls_and_kwargs
    for seed in range(12):
        rng = np.random.default_rng(seed * 7 + 1)
        n = int(rng.integers(10, 400))
        dims = int(rng.integers(2, 6))
        if rng.random() < 0.3:  # duplicate-heavy instance
            base = rng.random((max(2, n // 10), dims))
            points = base[rng.integers(0, len(base), n)].astype(np.float32)
        else:
            points = rng.random((n, dims)).astype(np.float32)
        index = cls.from_points(points, **kwargs)
        lo = rng.random(dims) * 0.6
        box = Rect(lo, np.minimum(lo + rng.random(dims) * 0.4 + 0.05, 1.0))
        assert set(index.range_search(box)) == brute_force_range(points, box), (
            structure,
            seed,
        )
        q = rng.random(dims)
        got = index.knn(q, min(5, n), L2)
        expected = brute_force_knn_dists(points, q, min(5, n), L2)
        assert np.allclose([d for _, d in got], expected, atol=1e-5), (structure, seed)
