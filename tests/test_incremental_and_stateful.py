"""Distance browsing, range counting, and a stateful fuzz of the tree."""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core import HybridTree
from repro.datasets import clustered_dataset
from repro.distances import L1, L2
from repro.geometry.rect import Rect
from tests.conftest import brute_force_range, random_boxes


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(2500, 6, clusters=8, seed=77)


@pytest.fixture(scope="module")
def tree(data):
    t = HybridTree(6)
    for oid, v in enumerate(data):
        t.insert(v, oid)
    return t


class TestNearestIter:
    def test_yields_in_distance_order(self, tree, data, rng):
        q = rng.random(6)
        dists = [d for _, d in zip(range(200), ())]  # placeholder
        out = []
        for (oid, dist), _ in zip(tree.nearest_iter(q, L2), range(200)):
            out.append(dist)
        assert out == sorted(out)

    def test_prefix_equals_knn(self, tree, data, rng):
        for metric in (L1, L2):
            q = rng.random(6)
            browsed = []
            for (oid, dist), _ in zip(tree.nearest_iter(q, metric), range(15)):
                browsed.append(dist)
            knn = [d for _, d in tree.knn(q, 15, metric)]
            assert np.allclose(browsed, knn, atol=1e-9)

    def test_full_exhaustion(self, data):
        small = HybridTree(6)
        for oid, v in enumerate(data[:300]):
            small.insert(v, oid)
        results = list(small.nearest_iter(np.full(6, 0.5), L2))
        assert len(results) == 300
        assert {oid for oid, _ in results} == set(range(300))

    def test_lazy_io(self, tree, data, rng):
        """Stopping early must not traverse the whole tree."""
        q = data[3].astype(np.float64)
        tree.io.reset()
        for _ in zip(tree.nearest_iter(q, L2), range(5)):
            pass
        assert tree.io.random_reads < tree.pages() / 2


class TestCountRange:
    def test_matches_range_search(self, tree, data, rng):
        for query in random_boxes(rng, 6, 10):
            assert tree.count_range(query) == len(brute_force_range(data, query))

    def test_same_io_as_range_search(self, tree, rng):
        query = random_boxes(rng, 6, 1)[0]
        tree.io.reset()
        tree.range_search(query)
        io_search = tree.io.random_reads
        tree.io.reset()
        tree.count_range(query)
        assert tree.io.random_reads == io_search

    def test_dim_mismatch(self, tree):
        with pytest.raises(ValueError):
            tree.count_range(Rect.unit(3))


class HybridTreeMachine(RuleBasedStateMachine):
    """Stateful fuzz: the tree must always agree with a dict reference."""

    def __init__(self):
        super().__init__()
        self.rng = np.random.default_rng(0)

    @initialize()
    def setup(self):
        self.tree = HybridTree(3, els_bits=4)
        self.reference: dict[int, np.ndarray] = {}
        self.next_oid = 0

    @rule(x=st.floats(0, 1, width=32), y=st.floats(0, 1, width=32),
          z=st.floats(0, 1, width=32))
    def insert_point(self, x, y, z):
        v = np.array([x, y, z], dtype=np.float32)
        self.tree.insert(v, self.next_oid)
        self.reference[self.next_oid] = v
        self.next_oid += 1

    @rule(count=st.integers(1, 30))
    def insert_batch(self, count):
        for _ in range(count):
            v = self.rng.random(3).astype(np.float32)
            self.tree.insert(v, self.next_oid)
            self.reference[self.next_oid] = v
            self.next_oid += 1

    @rule()
    def delete_random(self):
        if not self.reference:
            return
        oid = int(self.rng.choice(list(self.reference)))
        assert self.tree.delete(self.reference[oid], oid)
        del self.reference[oid]

    @rule()
    def delete_missing(self):
        assert not self.tree.delete(np.array([0.123, 0.456, 0.789]), 10**9)

    @rule(lo=st.floats(0, 0.75, width=32), side=st.floats(0.0625, 0.25, width=32))
    def check_range_query(self, lo, side):
        box = Rect(np.full(3, lo), np.full(3, min(1.0, lo + side)))
        expected = {
            oid
            for oid, v in self.reference.items()
            if box.contains_point(v.astype(np.float64))
        }
        assert set(self.tree.range_search(box)) == expected
        assert self.tree.count_range(box) == len(expected)

    @rule()
    def check_knn(self):
        if len(self.reference) < 3:
            return
        q = self.rng.random(3)
        got = self.tree.knn(q, 3, L1)
        rows = np.array([v for v in self.reference.values()], dtype=np.float64)
        expected = np.sort(np.abs(rows - q).sum(axis=1))[:3]
        assert np.allclose([d for _, d in got], expected, atol=1e-6)

    @invariant()
    def size_agrees(self):
        if hasattr(self, "tree"):
            assert len(self.tree) == len(self.reference)

    def teardown(self):
        if hasattr(self, "tree") and len(self.tree):
            self.tree.validate()


TestHybridTreeStateful = HybridTreeMachine.TestCase
TestHybridTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
