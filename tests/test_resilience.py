"""Resilient query execution: deadlines, supervision, admission, chaos.

The contracts under test (ISSUE 8):

- every batch API takes ``timeout=`` and raises a typed
  :class:`QueryTimeoutError` (or returns an honest
  :class:`PartialResult` under ``on_timeout="partial"``);
- the supervised parallel engine surfaces every injected failure — worker
  hang, worker death, transient I/O storm — as the right typed error in
  every worker mode, with no leaked threads, processes, or pinned
  snapshot views, and **bit-identical** results on the retried path;
- :class:`QueryAdmissionController` sheds over-budget batches with a
  typed :class:`AdmissionError` before any work runs;
- ``NodeManager`` retries cannot outlive their wall-clock budget or an
  active query deadline;
- degenerate batches (empty / single query / more workers than queries)
  behave across all worker modes and query kinds.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time

import numpy as np
import pytest

from repro.core import HybridTree
from repro.engine import ParallelQueryEngine
from repro.geometry.rect import Rect
from repro.resilience import (
    AdmissionError,
    CancelToken,
    Deadline,
    PartialResult,
    QueryAdmissionController,
    QueryCancelledError,
    QueryExecutionError,
    QueryTimeoutError,
    WorkerCrashError,
    active_deadline,
    deadline_scope,
)
from repro.storage.errors import TransientIOError, TransientStorageError
from repro.storage.faults import (
    FaultInjectingPageStore,
    SimulatedWorkerDeath,
    WorkerFault,
    apply_worker_fault,
)
from repro.storage.nodemanager import NodeManager
from repro.storage.pagestore import InMemoryPageStore
from repro.storage.serialization import HybridNodeCodec

DIMS = 6
COUNT = 1500
QUERIES = 12

PROCESS_MODES = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]
ALL_MODES = ["thread"] + PROCESS_MODES


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    return rng.random((COUNT, DIMS), dtype=np.float32)


@pytest.fixture(scope="module")
def saved_path(data, tmp_path_factory):
    tree = HybridTree.bulk_load(data)
    path = tmp_path_factory.mktemp("resilience") / "tree.pages"
    tree.save(path)
    return str(path)


@pytest.fixture(scope="module")
def workload(data):
    rng = np.random.default_rng(5)
    centers = data[rng.choice(COUNT, QUERIES, replace=False)].astype(np.float64)
    return {
        "boxes": [Rect(c - 0.15, c + 0.15) for c in centers],
        "centers": centers,
        "radii": rng.uniform(0.3, 0.5, QUERIES),
    }


@pytest.fixture(scope="module")
def serial(saved_path, workload):
    tree = HybridTree.open(saved_path)
    out = {
        "range": tree.range_search_many(workload["boxes"]),
        "distance": tree.distance_range_many(
            workload["centers"], workload["radii"]
        ),
        "knn": tree.knn_many(workload["centers"], 5),
    }
    tree.close()
    return out


def run_kind(engine_or_tree, kind, workload, **kw):
    if kind == "range":
        return engine_or_tree.range_search_many(workload["boxes"], **kw)
    if kind == "distance":
        return engine_or_tree.distance_range_many(
            workload["centers"], workload["radii"], **kw
        )
    return engine_or_tree.knn_many(workload["centers"], 5, **kw)


def assert_no_child_procs():
    deadline = time.perf_counter() + 5.0
    while time.perf_counter() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


# ======================================================================
# Deadline / CancelToken primitives
# ======================================================================
class TestDeadline:
    def test_coerce(self):
        assert Deadline.coerce(None) is None
        d = Deadline.coerce(1.5)
        assert isinstance(d, Deadline) and d.timeout == 1.5
        assert Deadline.coerce(d) is d
        token_only = Deadline.coerce(None, CancelToken())
        assert token_only is not None and token_only.timeout is None
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_expiry_raises_typed_timeout(self):
        d = Deadline(0.0)
        assert d.expired
        with pytest.raises(QueryTimeoutError) as exc:
            d.check()
        assert isinstance(exc.value, TimeoutError)
        assert isinstance(exc.value, QueryExecutionError)
        assert exc.value.timeout == 0.0
        assert exc.value.elapsed is not None and exc.value.elapsed >= 0

    def test_generous_deadline_passes(self):
        d = Deadline(60.0)
        d.check()
        assert not d.expired
        assert 0 < d.remaining() <= 60.0
        assert d.sleep_budget(1e9) <= 60.0

    def test_cancellation_wins_over_expiry(self):
        token = CancelToken()
        d = Deadline(0.0, token)
        token.cancel("supervisor said stop")
        with pytest.raises(QueryCancelledError, match="supervisor said stop"):
            d.check()

    def test_deadline_scope_is_ambient_and_nested(self):
        assert active_deadline() is None
        outer = Deadline(60.0)
        inner = Deadline(30.0)
        with deadline_scope(outer):
            assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_scope_is_per_thread(self):
        seen = []
        with deadline_scope(Deadline(60.0)):
            t = threading.Thread(target=lambda: seen.append(active_deadline()))
            t.start()
            t.join()
        assert seen == [None]


class TestPartialResult:
    def test_quacks_like_results(self):
        pr = PartialResult([[1], [2], []], [True, True, False])
        assert len(pr) == 3
        assert pr[0] == [1]
        assert list(pr) == [[1], [2], []]
        assert not pr.complete
        assert pr.completed_queries == 2

    def test_mask_must_align(self):
        with pytest.raises(ValueError):
            PartialResult([[1]], [True, False])


# ======================================================================
# Kernel-level deadlines (object walk + SOA), all three query kinds
# ======================================================================
@pytest.mark.parametrize("engine", ["object", "soa"])
@pytest.mark.parametrize("kind", ["range", "distance", "knn"])
class TestKernelDeadlines:
    @pytest.fixture()
    def tree(self, saved_path, engine):
        t = HybridTree.open(saved_path)
        if engine == "soa":
            t.compile_snapshot()
        else:
            t.invalidate_snapshot()
        yield t
        t.close()

    def test_expired_deadline_raises(self, tree, workload, kind, engine):
        with pytest.raises(QueryTimeoutError):
            run_kind(tree, kind, workload, timeout=0)

    def test_partial_envelope_is_honest(self, tree, workload, kind, engine):
        out = run_kind(tree, kind, workload, timeout=0, on_timeout="partial")
        assert isinstance(out, PartialResult)
        assert len(out) == QUERIES
        assert not out.completed.any()  # kernel granularity: conservative
        assert isinstance(out.error, QueryTimeoutError)

    def test_partial_with_metrics_bills_honestly(self, tree, workload, kind, engine):
        reads0 = tree.io.random_reads + tree.io.sequential_reads
        out, metrics = run_kind(
            tree, kind, workload, timeout=0, on_timeout="partial",
            return_metrics=True,
        )
        assert isinstance(out, PartialResult)
        charged = (tree.io.random_reads + tree.io.sequential_reads) - reads0
        # Whatever ran before the deadline stays billed, and the metrics
        # agree with the accountant.
        assert metrics.charged_reads == charged

    def test_ample_timeout_is_bit_identical(
        self, tree, workload, kind, engine, serial
    ):
        out = run_kind(tree, kind, workload, timeout=60.0)
        assert not isinstance(out, PartialResult)
        assert out == serial[kind]

    def test_invalid_on_timeout_rejected(self, tree, workload, kind, engine):
        with pytest.raises(ValueError, match="on_timeout"):
            run_kind(tree, kind, workload, timeout=1.0, on_timeout="explode")

    def test_cancel_token_unwinds_as_cancelled(self, tree, workload, kind, engine):
        token = CancelToken()
        token.cancel("front end went away")
        deadline = Deadline(60.0, token)
        with pytest.raises(QueryCancelledError):
            run_kind(tree, kind, workload, timeout=deadline)


def test_loop_api_partial_prefix(saved_path, workload):
    """The measured per-query loop times out at query granularity: the
    completed prefix is marked complete, the rest incomplete."""
    tree = HybridTree.open(saved_path)
    try:
        from repro.baselines.common import LoopQueryMixin

        out, metrics = LoopQueryMixin.knn_loop(
            tree, workload["centers"], 5, return_metrics=True,
            timeout=0, on_timeout="partial",
        )
        assert isinstance(out, PartialResult)
        assert not out.completed.any()
        with pytest.raises(QueryTimeoutError):
            LoopQueryMixin.range_search_loop(tree, workload["boxes"], timeout=0)
        full = LoopQueryMixin.knn_loop(tree, workload["centers"], 5, timeout=60.0)
        assert full == tree.knn_many(workload["centers"], 5)
    finally:
        tree.close()


# ======================================================================
# NodeManager retry budgets
# ======================================================================
class TestRetryBudget:
    def _nm(self, **kw):
        store = FaultInjectingPageStore(InMemoryPageStore(), seed=3)
        nm = NodeManager(store=store, codec=HybridNodeCodec(DIMS, 64), **kw)
        return nm, store

    def test_wall_clock_budget_caps_backoff(self):
        # 50 allowed retries at exponential backoff would sleep for ages;
        # the budget must cut it off fast.
        nm, store = self._nm(
            max_retries=50, retry_backoff=0.01, retry_budget=0.1
        )
        store.fail_reads(10_000)
        t0 = time.perf_counter()
        with pytest.raises(TransientStorageError):
            nm._store_read(0, charge=False)
        assert time.perf_counter() - t0 < 1.0

    def test_active_deadline_turns_retry_into_timeout(self):
        nm, store = self._nm(max_retries=50, retry_backoff=0.01)
        store.fail_reads(10_000)
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(QueryTimeoutError):
                nm._store_read(0, charge=False)

    def test_recovery_within_budget_still_works(self):
        nm, store = self._nm(max_retries=4, retry_backoff=0.0)
        store.ensure_allocated(0)
        store.write(0, b"\x01" * 16, charge=False)
        store.fail_reads(2)
        assert nm._store_read(0, charge=False)[:16] == b"\x01" * 16
        assert nm.retries_performed == 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            NodeManager(retry_budget=0)


# ======================================================================
# Admission control
# ======================================================================
class TestAdmission:
    def test_batch_budget(self):
        ctrl = QueryAdmissionController(max_batches=1)
        with ctrl.admit(10, DIMS):
            with pytest.raises(AdmissionError) as exc:
                ctrl.admit(1, DIMS)
            assert exc.value.reason == "batches"
        ctrl.admit(10, DIMS).release()
        snap = ctrl.snapshot()
        assert snap["in_flight_batches"] == 0
        assert snap["admitted_total"] == 2
        assert snap["rejected_total"] == 1

    def test_query_and_byte_budgets(self):
        ctrl = QueryAdmissionController(max_queries=100)
        with pytest.raises(AdmissionError) as exc:
            ctrl.admit(101, DIMS)
        assert exc.value.reason == "queries"
        ctrl = QueryAdmissionController(max_bytes=1000, bytes_per_query_factor=1.0)
        assert ctrl.estimate_bytes(10, DIMS) == 10 * DIMS * 8
        with pytest.raises(AdmissionError) as exc:
            ctrl.admit(1000, DIMS)
        assert exc.value.reason == "bytes"

    def test_release_is_idempotent(self):
        ctrl = QueryAdmissionController(max_batches=2)
        ticket = ctrl.admit(5, DIMS)
        ticket.release()
        ticket.release()
        assert ctrl.snapshot()["in_flight_batches"] == 0

    def test_session_admission_serial_path(self, saved_path, workload, serial):
        ctrl = QueryAdmissionController(max_queries=QUERIES - 1)
        tree = HybridTree.open(saved_path)
        try:
            with tree.session(admission=ctrl) as session:
                with pytest.raises(AdmissionError):
                    session.knn_many(workload["centers"], 5)
                # A smaller batch passes, and the reservation drains.
                ok = session.knn_many(workload["centers"][:2], 5)
                assert ok == serial["knn"][:2]
            assert ctrl.snapshot()["in_flight_queries"] == 0
        finally:
            tree.close()

    def test_parallel_engine_admission(self, saved_path, workload):
        ctrl = QueryAdmissionController(max_queries=2)
        with ParallelQueryEngine(saved_path, workers=2, admission=ctrl) as eng:
            with pytest.raises(AdmissionError):
                eng.knn_many(workload["centers"], 5)
            assert ctrl.snapshot()["in_flight_queries"] == 0
            assert eng.knn_many(workload["centers"][:2], 5)


# ======================================================================
# Chaos matrix: injected worker failures × modes × query kinds
# ======================================================================
@pytest.mark.parametrize("mode", ALL_MODES)
class TestChaosMatrix:
    @pytest.fixture()
    def engine(self, saved_path, mode):
        eng = ParallelQueryEngine(saved_path, workers=2, mode=mode)
        # Warm up: spawn workers import-and-open lazily, and a cold worker
        # must not eat into the short chaos deadlines below.
        eng.knn_many(np.zeros((2, DIMS)), 1)
        yield eng
        eng.close()
        if mode != "thread":
            assert_no_child_procs()

    @pytest.mark.parametrize("kind", ["range", "distance", "knn"])
    def test_raise_fault_propagates_typed_first_error(
        self, engine, workload, serial, kind, mode
    ):
        engine.inject_faults({0: WorkerFault("raise")})
        with pytest.raises(TransientIOError) as exc:
            run_kind(engine, kind, workload)
        assert "partition 1/2" in exc.value.partition
        # The engine survives: the next (fault-free) call is bit-identical.
        assert run_kind(engine, kind, workload) == serial[kind]

    @pytest.mark.parametrize("kind", ["range", "distance", "knn"])
    def test_worker_death_recovers_bit_identically(
        self, engine, workload, serial, kind, mode
    ):
        engine.inject_faults({1: WorkerFault("die")})
        out = run_kind(engine, kind, workload)
        assert not isinstance(out, PartialResult)
        assert out == serial[kind]
        assert engine.restarts_performed >= 1

    def test_sticky_death_exhausts_retry_budget(
        self, saved_path, workload, mode
    ):
        eng = ParallelQueryEngine(saved_path, workers=2, mode=mode, worker_restarts=1)
        try:
            eng.knn_many(np.zeros((2, DIMS)), 1)  # warm up cold workers
            eng.inject_faults({0: WorkerFault("die", sticky=True)})
            with pytest.raises(WorkerCrashError) as exc:
                run_kind(eng, "knn", workload)
            assert exc.value.attempts == 2  # 1 try + 1 restart
            assert "partition 1/2" in exc.value.partition
            # Survivable: workers were respawned and keep serving.
            assert run_kind(eng, "knn", workload)
        finally:
            eng.close()
            if mode != "thread":
                assert_no_child_procs()

    def test_cooperative_hang_times_out_partially(
        self, engine, workload, serial, mode
    ):
        engine.inject_faults({0: WorkerFault("hang", seconds=30.0)})
        t0 = time.perf_counter()
        out = run_kind(
            engine, "knn", workload, timeout=0.3, on_timeout="partial"
        )
        assert time.perf_counter() - t0 < 10.0  # nowhere near the 30s hang
        assert isinstance(out, PartialResult)
        # Partition granularity: the healthy partition is complete, and its
        # answers are bit-identical to the serial slice.
        half = QUERIES // 2
        assert not out.completed[:half].any()
        assert out.completed[half:].all()
        assert out.results[half:] == serial["knn"][half:]
        assert isinstance(out.error, QueryTimeoutError)

    def test_cooperative_hang_times_out_with_raise(self, engine, workload, mode):
        engine.inject_faults({0: WorkerFault("hang", seconds=30.0)})
        with pytest.raises(QueryTimeoutError):
            run_kind(engine, "knn", workload, timeout=0.3)

    def test_noncooperative_hang_reclaimed_by_wall_guard(
        self, engine, workload, serial, mode
    ):
        engine.inject_faults(
            {0: WorkerFault("hang", seconds=1.5, cooperative=False)}
        )
        t0 = time.perf_counter()
        out = run_kind(
            engine, "knn", workload, timeout=0.2, on_timeout="partial"
        )
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.4  # reclaimed at deadline+grace, not the full stall
        assert isinstance(out, PartialResult)
        assert out.completed[QUERIES // 2:].all()
        # Process workers were terminated+respawned; thread workers
        # abandoned.  Either way the engine keeps serving.
        if mode == "thread":
            time.sleep(1.5)  # let the abandoned worker drain before close
        assert run_kind(engine, "knn", workload) == serial["knn"]


@pytest.mark.parametrize("mode", ALL_MODES)
def test_no_leaked_workers_after_close(saved_path, workload, mode):
    threads0 = threading.active_count()
    eng = ParallelQueryEngine(saved_path, workers=2, mode=mode)
    eng.inject_faults({0: WorkerFault("die")})
    assert run_kind(eng, "knn", workload)
    eng.close()
    eng.close()  # idempotent
    if mode == "thread":
        deadline = time.perf_counter() + 5.0
        while threading.active_count() > threads0 and time.perf_counter() < deadline:
            time.sleep(0.02)
        assert threading.active_count() <= threads0
    else:
        assert_no_child_procs()


def test_close_after_crash_terminates_wedged_pool(saved_path, workload):
    mode = PROCESS_MODES[0] if PROCESS_MODES else None
    if mode is None:
        pytest.skip("no process start methods available")
    eng = ParallelQueryEngine(saved_path, workers=2, mode=mode)
    eng.knn_many(np.zeros((2, DIMS)), 1)  # warm up cold workers
    # Leave a worker wedged in a non-cooperative stall with no deadline
    # guard racing it: close() must still return promptly.
    eng.inject_faults({0: WorkerFault("hang", seconds=30.0, cooperative=False)})
    out = eng.knn_many(workload["centers"], 5, timeout=0.2, on_timeout="partial")
    assert isinstance(out, PartialResult)
    t0 = time.perf_counter()
    eng.close()
    assert time.perf_counter() - t0 < 5.0
    assert_no_child_procs()


def test_thread_mode_snapshot_pins_released_on_failure(tmp_path, data):
    """WAL thread workers run on pinned snapshot views; a failing call and
    a close() after it must release every pin."""
    path = str(tmp_path / "wal_tree.pages")
    tree = HybridTree.bulk_load(data[:600])
    tree.save(path)
    tree.close()
    tree = HybridTree.open(path, wal=True)
    try:
        store = tree.nm.store
        centers = data[:8].astype(np.float64)
        serial = tree.knn_many(centers, 3)
        with tree.session(workers=2, mode="thread") as session:
            assert store.pinned_snapshots > 0
            session._parallel.inject_faults({0: WorkerFault("raise")})
            with pytest.raises(TransientIOError):
                session.knn_many(centers, 3)
            # Engine still serves after the failure, bit-identically.
            assert session.knn_many(centers, 3) == serial
        assert store.pinned_snapshots == 0
    finally:
        tree.close()


def test_live_tree_thread_death_respawns_view(data):
    """Simulated thread-worker death on a live (unsaved) index source:
    the view is respawned and the retried partition is bit-identical."""
    tree = HybridTree.bulk_load(data[:600])
    centers = data[:8].astype(np.float64)
    serial = tree.knn_many(centers, 3)
    with ParallelQueryEngine(tree, workers=2, mode="thread") as eng:
        eng.inject_faults({1: WorkerFault("die")})
        assert eng.knn_many(centers, 3) == serial
        assert eng.restarts_performed == 1


# ======================================================================
# Degenerate batches: empty / single / workers > n, all modes × kinds
# ======================================================================
class TestDegenerateBatches:
    @pytest.fixture(scope="class", params=ALL_MODES)
    def engine(self, request, saved_path):
        eng = ParallelQueryEngine(saved_path, workers=4, mode=request.param)
        yield eng
        eng.close()

    @pytest.mark.parametrize("kind", ["range", "distance", "knn"])
    def test_empty_batch(self, engine, workload, kind):
        empty = {"boxes": [], "centers": np.empty((0, DIMS)), "radii": []}
        out, metrics = run_kind(engine, kind, empty, return_metrics=True)
        assert out == []
        assert metrics.charged_reads == 0

    @pytest.mark.parametrize("kind", ["range", "distance", "knn"])
    def test_single_query_batch(self, engine, workload, serial, kind):
        single = {
            "boxes": workload["boxes"][:1],
            "centers": workload["centers"][:1],
            "radii": workload["radii"][:1],
        }
        assert run_kind(engine, kind, single) == serial[kind][:1]

    @pytest.mark.parametrize("kind", ["range", "distance", "knn"])
    def test_more_workers_than_queries(self, engine, workload, serial, kind):
        small = {
            "boxes": workload["boxes"][:2],
            "centers": workload["centers"][:2],
            "radii": workload["radii"][:2],
        }
        assert run_kind(engine, kind, small) == serial[kind][:2]

    def test_empty_batch_with_timeout(self, engine, workload):
        assert engine.knn_many(np.empty((0, DIMS)), 5, timeout=60.0) == []


# ======================================================================
# Typed-error regressions
# ======================================================================
class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(QueryTimeoutError, TimeoutError)
        assert issubclass(QueryTimeoutError, QueryExecutionError)
        assert issubclass(QueryCancelledError, QueryExecutionError)
        assert issubclass(WorkerCrashError, QueryExecutionError)
        assert issubclass(AdmissionError, QueryExecutionError)
        assert not issubclass(QueryExecutionError, OSError)
        assert TransientIOError is TransientStorageError

    def test_errors_survive_pickling(self):
        # Supervised process workers ship exceptions through a queue.
        e1 = QueryTimeoutError("too slow", timeout=1.0, elapsed=2.0)
        r1 = pickle.loads(pickle.dumps(e1))
        assert (r1.timeout, r1.elapsed) == (1.0, 2.0)
        e2 = WorkerCrashError("dead", partition="knn partition 1/2", attempts=3)
        r2 = pickle.loads(pickle.dumps(e2))
        assert (r2.partition, r2.attempts) == ("knn partition 1/2", 3)
        e3 = AdmissionError("no", reason="bytes")
        assert pickle.loads(pickle.dumps(e3)).reason == "bytes"

    def test_worker_fault_validation(self):
        with pytest.raises(ValueError):
            WorkerFault("explode")

    def test_simulated_death_is_base_exception(self):
        # It must sail past ``except Exception`` like a real SIGKILL.
        assert issubclass(SimulatedWorkerDeath, BaseException)
        assert not issubclass(SimulatedWorkerDeath, Exception)
        with pytest.raises(SimulatedWorkerDeath):
            apply_worker_fault(WorkerFault("die"), None, in_process=False)

    def test_cooperative_hang_obeys_deadline(self):
        t0 = time.perf_counter()
        with pytest.raises(QueryTimeoutError):
            apply_worker_fault(
                WorkerFault("hang", seconds=30.0), Deadline(0.05), in_process=False
            )
        assert time.perf_counter() - t0 < 5.0

    def test_closed_engine_refuses_queries(self, saved_path, workload):
        eng = ParallelQueryEngine(saved_path, workers=2)
        eng.close()
        with pytest.raises(RuntimeError, match="closed"):
            run_kind(eng, "knn", workload)
