"""Structural behaviour of the baseline index structures.

These tests pin the *design properties* each baseline exists to exhibit
(Table 1 of the paper): R-tree fanout collapse, KDB cascading splits and
missing utilisation guarantee, hB balance guarantee and posting redundancy,
SS/SR sphere maintenance.
"""

import numpy as np
import pytest

from repro.baselines import HBTree, KDBTree, RTree, SRTree, SSTree, SequentialScan
from repro.baselines.common import EntryLeaf
from repro.datasets import clustered_dataset, uniform_dataset
from repro.geometry.rect import Rect


class TestSequentialScan:
    def test_page_count_and_charging(self):
        scan = SequentialScan.from_points(uniform_dataset(1000, 16, seed=0))
        per_page = scan.tuples_per_page
        assert scan.pages() == -(-1000 // per_page)
        scan.io.reset()
        scan.range_search(Rect.unit(16))
        assert scan.io.sequential_reads == scan.pages()
        assert scan.io.random_reads == 0

    def test_normalized_cost_is_point_one(self):
        scan = SequentialScan.from_points(uniform_dataset(500, 8, seed=1))
        scan.io.reset()
        scan.range_search(Rect.unit(8))
        assert scan.io.weighted_cost() == pytest.approx(scan.pages() / 10.0)

    def test_insert_growth(self):
        scan = SequentialScan(4, initial_capacity=2)
        for i in range(100):
            scan.insert(np.full(4, i / 100), i)
        assert len(scan) == 100

    def test_delete(self):
        data = uniform_dataset(50, 4, seed=2)
        scan = SequentialScan.from_points(data)
        assert scan.delete(data[10], 10)
        assert not scan.delete(data[10], 10)
        assert len(scan) == 49

    def test_empty_scan_queries(self):
        scan = SequentialScan(4)
        assert scan.range_search(Rect.unit(4)) == []
        assert scan.knn(np.zeros(4), 5) == []
        assert scan.distance_range(np.zeros(4), 1.0) == []


class TestRTree:
    def test_parent_rects_contain_children(self):
        from repro.baselines.rtree import RIndexNode

        data = uniform_dataset(2000, 4, seed=3)
        tree = RTree.from_points(data)

        def check(node_id: int, bound: Rect | None):
            node = tree.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                if bound is not None and node.count:
                    assert bound.contains_rect(node.rect())
                return
            assert isinstance(node, RIndexNode)
            for child_id, rect in node.entries:
                if bound is not None:
                    assert bound.contains_rect(rect)
                check(child_id, rect)

        check(tree.root_id, None)

    def test_fanout_bounded_by_capacity(self):
        from repro.baselines.rtree import RIndexNode

        data = uniform_dataset(3000, 16, seed=4)
        tree = RTree.from_points(data)

        def walk(node_id):
            node = tree.nm.get(node_id, charge=False)
            if isinstance(node, RIndexNode):
                assert 2 <= node.fanout <= tree.index_capacity
                for child_id, _ in node.entries:
                    walk(child_id)

        walk(tree.root_id)
        assert tree.index_capacity == (4096 - 32) // (16 * 8 + 4)

    def test_delete_underflow_reinserts(self):
        data = uniform_dataset(1500, 4, seed=5)
        tree = RTree.from_points(data)
        for oid in range(1000):
            assert tree.delete(data[oid], oid)
        assert len(tree) == 500
        expected = set(range(1000, 1500))
        assert set(tree.range_search(Rect.unit(4))) == expected


class TestKDBTree:
    def test_regions_disjoint_and_tiling(self):
        from repro.baselines.kdbtree import KDBIndexNode

        data = uniform_dataset(3000, 3, seed=6)
        tree = KDBTree.from_points(data)

        def check(node_id, region: Rect):
            node = tree.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                return
            assert isinstance(node, KDBIndexNode)
            rects = [r for _, r in node.entries]
            # Pairwise-disjoint interiors.
            for i in range(len(rects)):
                for j in range(i + 1, len(rects)):
                    assert rects[i].overlap_volume(rects[j]) == pytest.approx(0.0)
            # Tiling: volumes add up to the region volume.
            assert sum(r.volume() for r in rects) == pytest.approx(
                region.volume(), rel=1e-6
            )
            for child_id, rect in node.entries:
                check(child_id, rect)

        check(tree.root_id, tree.bounds)

    def test_cascading_splits_hurt_utilization(self):
        # Sparse skewed data (histograms) provokes index splits whose cuts
        # cross children; the forced downward cascades leave (nearly) empty
        # pages — the missing utilisation guarantee of Table 1.
        from repro.datasets import colhist_dataset

        data = colhist_dataset(10000, 64, seed=7)
        tree = KDBTree.from_points(data)
        fills = tree.utilization_profile()
        assert min(fills) < 0.25
        assert len(tree) == 10000

    def test_no_overlap_means_single_path_point_search(self):
        data = uniform_dataset(2000, 4, seed=8)
        tree = KDBTree.from_points(data)
        tree.io.reset()
        tree.point_search(data[77])
        assert tree.io.random_reads <= tree.height + 2


class TestHBTree:
    def test_balance_guarantee_on_leaves(self):
        data = uniform_dataset(6000, 8, seed=9)
        tree = HBTree.from_points(data)
        fills = tree.utilization_profile()
        assert min(fills) >= 1.0 / 3.0 - 1e-9

    def test_redundancy_appears_at_scale(self):
        data = uniform_dataset(18000, 16, seed=10)
        tree = HBTree.from_points(data)
        assert tree.redundancy_ratio() >= 1.0
        assert len(tree) == 18000

    def test_kd_size_within_capacity(self):
        from repro.baselines.hbtree import HBIndexNode

        data = uniform_dataset(8000, 8, seed=11)
        tree = HBTree.from_points(data)
        seen = set()

        def walk(node_id):
            if node_id in seen:
                return
            seen.add(node_id)
            node = tree.nm.get(node_id, charge=False)
            if isinstance(node, HBIndexNode):
                assert node.kd_size <= tree.index_capacity
                from repro.core import kdnodes

                for child_id in kdnodes.child_ids(node.kd_root):
                    walk(child_id)

        walk(tree._root_id)

    def test_clean_splits_everywhere(self):
        from repro.baselines.hbtree import HBIndexNode
        from repro.core import kdnodes

        data = uniform_dataset(5000, 4, seed=12)
        tree = HBTree.from_points(data)
        seen = set()

        def walk(node_id):
            if node_id in seen:
                return
            seen.add(node_id)
            node = tree.nm.get(node_id, charge=False)
            if isinstance(node, HBIndexNode):
                for internal in kdnodes.iter_internals(node.kd_root):
                    assert internal.lsp == internal.rsp  # holey bricks never overlap
                for child_id in kdnodes.child_ids(node.kd_root):
                    walk(child_id)

        walk(tree._root_id)

    def test_delete_simple_removal(self):
        data = uniform_dataset(800, 4, seed=13)
        tree = HBTree.from_points(data)
        assert tree.delete(data[5], 5)
        assert not tree.delete(data[5], 5)
        assert len(tree) == 799


class TestSpheres:
    def test_ss_spheres_cover_subtrees(self):
        from repro.baselines.sstree import SSIndexNode

        data = clustered_dataset(3000, 6, clusters=5, seed=14)
        tree = SSTree.from_points(data)

        def check(node_id, sphere):
            node = tree.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                if sphere is not None and node.count:
                    dists = np.linalg.norm(
                        node.points().astype(np.float64) - sphere.center, axis=1
                    )
                    assert np.all(dists <= sphere.radius + 1e-6)
                return
            assert isinstance(node, SSIndexNode)
            for entry in node.entries:
                check(entry.child_id, entry.sphere)

        check(tree._root_id, None)

    def test_sr_entries_cover_subtrees(self):
        from repro.baselines.srtree import SRIndexNode

        data = clustered_dataset(3000, 6, clusters=5, seed=15)
        tree = SRTree.from_points(data)

        def check(node_id, sphere, rect):
            node = tree.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                if node.count:
                    pts = node.points().astype(np.float64)
                    if rect is not None:
                        assert np.all(pts >= rect.low - 1e-6)
                        assert np.all(pts <= rect.high + 1e-6)
                    if sphere is not None:
                        dists = np.linalg.norm(pts - sphere.center, axis=1)
                        assert np.all(dists <= sphere.radius + 1e-6)
                return
            assert isinstance(node, SRIndexNode)
            for entry in node.entries:
                check(entry.child_id, entry.sphere, entry.rect)

        check(tree._root_id, None, None)

    def test_sr_fanout_is_smallest(self):
        sr = SRTree(64)
        ss = SSTree(64)
        rt = RTree(64)
        assert sr.index_capacity < ss.index_capacity
        assert sr.index_capacity < rt.index_capacity
        assert sr.index_capacity <= 6

    def test_sr_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            SRTree(4, insert_policy="bogus")
