"""Zero-copy mmap read path + multi-worker parallel query engine.

Covers the contracts the perf work must not bend:

- :class:`MmapPageStore` serves the same bytes as :class:`FilePageStore`,
  refuses corrupt files at open, and rejects writes;
- zero-copy decode hands out frozen view-backed data nodes whose queries
  match the copying path bit for bit, and mutations fail loudly;
- the codec rejects inconsistent-but-CRC-valid payloads with typed errors
  and survives degenerate kd-trees deeper than the recursion limit;
- the parallel engine returns bit-identical results to the serial batch
  engine for every query kind, worker count and worker mode.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.core import HybridTree
from repro.core.kdnodes import KDInternal, KDLeaf
from repro.core.nodes import DataNode, FrozenNodeError, IndexNode
from repro.engine import ParallelQueryEngine, QuerySession
from repro.engine.parallel import WORKER_MODES
from repro.geometry.rect import Rect
from repro.storage.errors import PageCorruptionError, ReadOnlyStoreError
from repro.storage.mmapstore import MmapPageStore
from repro.storage.page import frame_page
from repro.storage.pagestore import FilePageStore
from repro.storage.serialization import _DATA_HEADER, HybridNodeCodec

DIMS = 8
COUNT = 2500
QUERIES = 24


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(42)
    return rng.random((COUNT, DIMS), dtype=np.float32)


@pytest.fixture(scope="module")
def saved_tree_path(data, tmp_path_factory):
    tree = HybridTree.bulk_load(data)
    path = tmp_path_factory.mktemp("mmap") / "tree.pages"
    tree.save(path)
    return str(path)


@pytest.fixture(scope="module")
def workload(data):
    rng = np.random.default_rng(7)
    centers = data[rng.choice(COUNT, QUERIES, replace=False)]
    boxes = [
        Rect(c - 0.12, c + 0.12) for c in centers.astype(np.float64)
    ]
    radii = rng.uniform(0.25, 0.45, QUERIES)
    return {"boxes": boxes, "centers": centers, "radii": radii}


@pytest.fixture(scope="module")
def serial(saved_tree_path, workload):
    """Reference answers + metrics from the serial batch engine."""
    tree = HybridTree.open(saved_tree_path)
    ranges, range_m = tree.range_search_many(workload["boxes"], return_metrics=True)
    dists, dist_m = tree.distance_range_many(
        workload["centers"], workload["radii"], return_metrics=True
    )
    knns, knn_m = tree.knn_many(workload["centers"], 5, return_metrics=True)
    tree.close()
    return {
        "range": ranges,
        "range_visits": range_m.pages,
        "distance": dists,
        "distance_visits": dist_m.pages,
        "knn": knns,
    }


def _corrupt_copy(path: str, tmp_path, offset: int = 4096 + 100) -> str:
    corrupted = tmp_path / "corrupt.pages"
    raw = bytearray(open(path, "rb").read())
    raw[offset] ^= 0xFF
    corrupted.write_bytes(bytes(raw))
    return str(corrupted)


# ----------------------------------------------------------------------
# MmapPageStore
# ----------------------------------------------------------------------
class TestMmapPageStore:
    def test_reads_byte_identical_to_file_store(self, saved_tree_path):
        with (
            MmapPageStore(saved_tree_path) as mstore,
            FilePageStore(saved_tree_path) as fstore,
        ):
            assert mstore._next_id == fstore._next_id > 0
            for pid in range(mstore._next_id):
                assert bytes(mstore.read(pid)) == fstore.read(pid, charge=False)

    def test_read_returns_buffer_view_not_copy(self, saved_tree_path):
        with MmapPageStore(saved_tree_path) as store:
            page = store.read(0)
            assert isinstance(page, memoryview)
            assert page.readonly
            # Two reads of the same page view the same underlying buffer.
            assert store.read(0).obj is page.obj

    def test_reads_are_charged_like_file_reads(self, saved_tree_path):
        with MmapPageStore(saved_tree_path) as store:
            store.read(0)
            store.read(1)
            store.read(1, charge=False)
            assert store.stats.random_reads == 2

    def test_write_and_free_raise_read_only(self, saved_tree_path):
        with MmapPageStore(saved_tree_path) as store:
            with pytest.raises(ReadOnlyStoreError):
                store.write(0, b"x")
            with pytest.raises(ReadOnlyStoreError):
                store.free(0)

    def test_sweep_detects_corruption(self, saved_tree_path, tmp_path):
        bad = _corrupt_copy(saved_tree_path, tmp_path)
        with pytest.raises(PageCorruptionError):
            MmapPageStore(bad, verify="sweep")
        # The intact file passes the same sweep.
        store = MmapPageStore(saved_tree_path, verify="sweep")
        assert store.verified
        store.close()

    def test_fsck_mode_verifies_whole_file(self, saved_tree_path):
        store = MmapPageStore(saved_tree_path, verify="fsck")
        assert store.verified
        store.close()

    def test_invalid_verify_mode_rejected(self, saved_tree_path):
        with pytest.raises(ValueError):
            MmapPageStore(saved_tree_path, verify="maybe")

    def test_unallocated_page_rejected(self, saved_tree_path):
        with MmapPageStore(saved_tree_path) as store:
            with pytest.raises(KeyError):
                store.read(store._next_id + 5)

    def test_close_with_live_views_is_safe(self, saved_tree_path):
        store = MmapPageStore(saved_tree_path)
        view = store.read(0)
        store.close()  # must not raise BufferError despite the live view
        assert bytes(view[:4]) == b"TBYH"  # page magic, still readable


# ----------------------------------------------------------------------
# Zero-copy decode + frozen nodes
# ----------------------------------------------------------------------
class TestZeroCopyTree:
    def test_open_refuses_corrupt_file(self, saved_tree_path, tmp_path):
        bad = _corrupt_copy(saved_tree_path, tmp_path)
        with pytest.raises(PageCorruptionError):
            HybridTree.open(bad, mmap=True)

    def test_queries_match_plain_open(self, saved_tree_path, workload, serial):
        tree = HybridTree.open(saved_tree_path, mmap=True)
        assert tree.read_only
        assert tree.range_search_many(workload["boxes"]) == serial["range"]
        assert (
            tree.distance_range_many(workload["centers"], workload["radii"])
            == serial["distance"]
        )
        assert tree.knn_many(workload["centers"], 5) == serial["knn"]
        tree.close()

    def test_data_nodes_are_frozen_readonly_views(self, saved_tree_path):
        tree = HybridTree.open(saved_tree_path, mmap=True)
        ids = [tree.root_id]
        node = None
        while ids:
            node = tree.nm.get(ids.pop(), charge=False)
            if isinstance(node, DataNode):
                break
            ids.extend(node.child_ids())
        assert isinstance(node, DataNode)
        assert node.frozen
        assert not node.vectors.flags.writeable
        assert not node.oids.flags.writeable
        assert node.vectors.base is not None  # a view, not an owned copy
        with pytest.raises(ValueError):
            node.vectors[0, 0] = 1.0
        with pytest.raises(FrozenNodeError):
            node.add(np.zeros(DIMS, dtype=np.float32), 1)
        with pytest.raises(FrozenNodeError):
            node.remove_at(0)
        tree.close()

    def test_mutations_fail_loudly(self, saved_tree_path, data):
        tree = HybridTree.open(saved_tree_path, mmap=True)
        with pytest.raises(FrozenNodeError):
            tree.insert(np.full(DIMS, 0.5, dtype=np.float32), 999_999)
        with pytest.raises(FrozenNodeError):
            tree.delete(data[0], 0)
        tree.close()

    def test_save_from_mmap_tree_roundtrips(self, saved_tree_path, workload, serial, tmp_path):
        tree = HybridTree.open(saved_tree_path, mmap=True)
        copy_path = tmp_path / "copy.pages"
        tree.save(copy_path)
        tree.close()
        reopened = HybridTree.open(copy_path)
        assert reopened.range_search_many(workload["boxes"]) == serial["range"]
        reopened.close()

    def test_from_views_rejects_mismatched_shapes(self):
        vectors = np.zeros((4, DIMS), dtype=np.float32)
        with pytest.raises(ValueError):
            DataNode.from_views(vectors, np.zeros(3, dtype=np.uint32))


# ----------------------------------------------------------------------
# Codec validation + iterative kd walks
# ----------------------------------------------------------------------
class TestCodecValidation:
    def test_count_exceeding_capacity_is_typed_error(self):
        big = HybridNodeCodec(4, 50)
        node = DataNode(4, 50)
        for i in range(40):
            node.add(np.full(4, i / 40, dtype=np.float32), i)
        page = big.encode(node)
        small = HybridNodeCodec(4, 10)
        with pytest.raises(ValueError, match="capacity of 10"):
            small.decode(page)

    def test_dims_mismatch_is_typed_error(self):
        codec4 = HybridNodeCodec(4, 20)
        node = DataNode(4, 20)
        node.add(np.zeros(4, dtype=np.float32), 0)
        node.add(np.ones(4, dtype=np.float32), 1)
        page = codec4.encode(node)
        with pytest.raises(ValueError, match="dims"):
            HybridNodeCodec(8, 20).decode(page)

    def test_truncated_data_payload_is_typed_error(self):
        # A frame whose header advertises 5 entries but whose payload is
        # one oid short: CRC-valid, structurally inconsistent.
        payload = _DATA_HEADER.pack(1, 5, 4) + b"\x00" * (5 * 4 * 4 + 4 * 4)
        page = frame_page(payload, 4096, 1, 0, 5)
        with pytest.raises(ValueError, match="expected"):
            HybridNodeCodec(4, 20).decode(page)

    def test_truncated_index_payload_is_typed_error(self):
        import struct

        payload = struct.pack("<BH", 2, 1) + struct.pack("<BHff", 1, 0, 0.5, 0.5)
        page = frame_page(payload, 4096, 2, 1, 2)
        with pytest.raises(ValueError, match="truncated"):
            HybridNodeCodec(4, 20).decode(page)

    def test_deep_kd_tree_roundtrips_iteratively(self):
        # A degenerate right-spine deeper than the interpreter's recursion
        # limit: the old recursive codec would raise RecursionError here.
        depth = sys.getrecursionlimit() + 500
        kd = KDLeaf(0)
        for i in range(1, depth + 1):
            kd = KDInternal(0, 0.5, 0.5, KDLeaf(i), kd)
        node = IndexNode(kd, level=1)
        codec = HybridNodeCodec(4, 20, page_size=65536)
        decoded = codec.decode(codec.encode(node))
        assert decoded.level == 1
        assert decoded.child_ids() == node.child_ids()

    def test_zero_copy_decode_equals_copy_decode(self, saved_tree_path):
        codec_copy = HybridNodeCodec(DIMS, 112)
        codec_view = HybridNodeCodec(DIMS, 112, copy=False, verify_checksums=False)
        with MmapPageStore(saved_tree_path) as store:
            for pid in range(store._next_id):
                page = store.read(pid, charge=False)
                try:
                    a = codec_copy.decode(bytes(page))
                except (ValueError, PageCorruptionError):
                    continue  # blob / superblock pages
                b = codec_view.decode(page)
                if isinstance(a, DataNode):
                    assert b.frozen and not a.frozen
                    assert np.array_equal(a.points(), b.points())
                    assert np.array_equal(a.live_oids(), b.live_oids())
                else:
                    assert a.child_ids() == b.child_ids()


# ----------------------------------------------------------------------
# Parallel engine determinism
# ----------------------------------------------------------------------
MODES = ("thread", "fork")


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("workers", (1, 2, 4))
class TestParallelDeterminism:
    def test_range_bit_identical(self, saved_tree_path, workload, serial, workers, mode):
        with ParallelQueryEngine(saved_tree_path, workers, mode) as engine:
            results, metrics = engine.range_search_many(
                workload["boxes"], return_metrics=True
            )
        assert results == serial["range"]
        # Range predicates are row-wise: per-query visit counts must be
        # independent of how the batch was partitioned.
        assert np.array_equal(metrics.pages, serial["range_visits"])

    def test_distance_bit_identical(
        self, saved_tree_path, workload, serial, workers, mode
    ):
        with ParallelQueryEngine(saved_tree_path, workers, mode) as engine:
            results, metrics = engine.distance_range_many(
                workload["centers"], workload["radii"], return_metrics=True
            )
        assert results == serial["distance"]
        assert np.array_equal(metrics.pages, serial["distance_visits"])

    def test_knn_bit_identical(self, saved_tree_path, workload, serial, workers, mode):
        # k-NN *visit attribution* is partition-dependent (children are
        # ordered by the alive set's best bound), but exact results are not.
        with ParallelQueryEngine(saved_tree_path, workers, mode) as engine:
            assert engine.knn_many(workload["centers"], 5) == serial["knn"]


class TestParallelEngine:
    def test_spawn_mode_smoke(self, saved_tree_path, workload, serial):
        with ParallelQueryEngine(saved_tree_path, workers=2, mode="spawn") as engine:
            assert engine.knn_many(workload["centers"], 5) == serial["knn"]

    def test_unmapped_workers_match_too(self, saved_tree_path, workload, serial):
        with ParallelQueryEngine(
            saved_tree_path, workers=2, mode="thread", mmap=False
        ) as engine:
            assert engine.range_search_many(workload["boxes"]) == serial["range"]

    def test_empty_batches(self, saved_tree_path):
        with ParallelQueryEngine(saved_tree_path, workers=2) as engine:
            assert engine.range_search_many([]) == []
            results, metrics = engine.knn_many(
                np.empty((0, DIMS), dtype=np.float32), 3, return_metrics=True
            )
            assert results == [] and metrics.num_queries == 0

    def test_more_workers_than_queries(self, saved_tree_path, workload, serial):
        with ParallelQueryEngine(saved_tree_path, workers=4) as engine:
            few = engine.knn_many(workload["centers"][:2], 5)
        assert few == serial["knn"][:2]

    def test_merged_io_accounting(self, saved_tree_path, workload):
        with ParallelQueryEngine(saved_tree_path, workers=2) as engine:
            _, metrics = engine.range_search_many(
                workload["boxes"], return_metrics=True
            )
            # Every worker's reads land in the merged accountant.
            assert engine.io.random_reads == metrics.charged_reads > 0

    def test_invalid_parameters(self, saved_tree_path):
        with pytest.raises(ValueError):
            ParallelQueryEngine(saved_tree_path, workers=0)
        with pytest.raises(ValueError):
            ParallelQueryEngine(saved_tree_path, mode="greenlet")
        assert WORKER_MODES == ("thread", "fork", "spawn")

    def test_dimension_mismatch_rejected(self, saved_tree_path):
        with ParallelQueryEngine(saved_tree_path, workers=2) as engine:
            with pytest.raises(ValueError):
                engine.range_search_many([Rect.unit(DIMS + 1)])
            with pytest.raises(ValueError):
                engine.knn_many(np.zeros((2, DIMS)), 0)
            with pytest.raises(ValueError):
                engine.distance_range_many(np.zeros((2, DIMS)), -1.0)


# ----------------------------------------------------------------------
# QuerySession(workers=N)
# ----------------------------------------------------------------------
class TestSessionWorkers:
    def test_session_parallel_matches_serial(self, saved_tree_path, workload, serial):
        tree = HybridTree.open(saved_tree_path, mmap=True)
        with tree.session(workers=2) as session:
            assert session.workers == 2
            assert session.range_search_many(workload["boxes"]) == serial["range"]
            assert session.knn_many(workload["centers"], 5) == serial["knn"]
        tree.close()

    def test_refuses_unsaved_tree(self, data):
        tree = HybridTree.bulk_load(data[:200])
        with pytest.raises(ValueError, match="saved tree"):
            QuerySession(tree, workers=2)

    def test_refuses_unsaved_changes(self, saved_tree_path, data):
        tree = HybridTree.open(saved_tree_path)
        tree.insert(np.full(DIMS, 0.5, dtype=np.float32), 777_777)
        with pytest.raises(ValueError, match="unsaved"):
            tree.session(workers=2)
        tree.close()

    def test_serial_session_unchanged(self, saved_tree_path, workload, serial):
        tree = HybridTree.open(saved_tree_path)
        with tree.session() as session:
            assert session.workers == 1
            assert session.range_search_many(workload["boxes"]) == serial["range"]
        tree.close()
