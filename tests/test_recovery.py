"""Checksums, fsck, salvage, retry, and graceful degradation."""

import os
import random

import numpy as np
import pytest

from repro.core import HybridTree
from repro.datasets import uniform_dataset
from repro.geometry.rect import Rect
from repro.storage.errors import PageCorruptionError, TransientStorageError
from repro.storage.faults import FaultInjectingPageStore
from repro.storage.page import PAGE_KIND_DATA, PAGE_KIND_INDEX, unframe_page
from repro.storage.recovery import iter_intact_data_pages, salvage, verify
from repro.storage.superblock import read_superblock

DIMS = 6
PAGE = 4096


@pytest.fixture()
def saved(tmp_path):
    data = uniform_dataset(1500, DIMS, seed=11)
    tree = HybridTree.bulk_load(data)
    path = str(tmp_path / "t.pages")
    tree.save(path)
    return path, tree, data


def _node_pages(path):
    """(page_id, kind) for every live node page of a saved tree."""
    manifest, page_size = read_superblock(path)
    out = []
    with open(path, "rb") as f:
        for pid in range(manifest["page_count"]):
            f.seek(pid * page_size)
            try:
                header, _ = unframe_page(f.read(page_size), pid)
            except PageCorruptionError:
                continue  # free-list hole
            out.append((pid, header.kind))
    return out


def _flip(path, pid, bit):
    with open(path, "r+b") as f:
        f.seek(pid * PAGE + bit // 8)
        byte = f.read(1)[0]
        f.seek(pid * PAGE + bit // 8)
        f.write(bytes([byte ^ (1 << (bit % 8))]))


class TestBitFlipDetection:
    def test_every_bit_of_a_data_and_an_index_page(self, saved):
        """Exhaustive single-bit-flip matrix: header, payload, padding —
        a whole-page CRC must catch every last one."""
        from repro.storage.pagestore import FilePageStore

        path, _, _ = saved
        pages = _node_pages(path)
        targets = [
            next(pid for pid, kind in pages if kind == PAGE_KIND_DATA),
            next(pid for pid, kind in pages if kind == PAGE_KIND_INDEX),
        ]
        store = FilePageStore(path, PAGE, checksums=True)
        try:
            for pid in targets:
                for bit in range(PAGE * 8):
                    _flip(path, pid, bit)
                    with pytest.raises(PageCorruptionError):
                        store.read(pid, charge=False)
                    _flip(path, pid, bit)  # restore
                store.read(pid, charge=False)  # intact again
        finally:
            store.close()

    def test_sampled_flips_across_every_node_page(self, saved):
        from repro.storage.pagestore import FilePageStore

        path, _, _ = saved
        rng = random.Random(42)
        store = FilePageStore(path, PAGE, checksums=True)
        try:
            for pid, _kind in _node_pages(path):
                for bit in rng.sample(range(PAGE * 8), 25):
                    _flip(path, pid, bit)
                    with pytest.raises(PageCorruptionError):
                        store.read(pid, charge=False)
                    _flip(path, pid, bit)
        finally:
            store.close()

    def test_flip_via_fault_injector_surfaces_on_query(self, saved):
        path, tree, _ = saved
        reopened = HybridTree.open(path)
        injector = FaultInjectingPageStore(reopened.nm.store.base, seed=7)
        injector.flip_bit(tree.root_id)
        # The overlay reads through to the (now corrupt) base file.
        with pytest.raises(PageCorruptionError):
            HybridTree.open(path).range_search(Rect.unit(DIMS))


class TestFsck:
    def test_clean_after_save(self, saved):
        path, tree, _ = saved
        report = verify(path)
        assert report.ok, report.errors
        assert report.reachable_pages == tree.pages()
        assert report.count == len(tree)

    def test_detects_bit_flip(self, saved):
        path, _, _ = saved
        pid, _ = _node_pages(path)[0]
        _flip(path, pid, pid * 8 * 40 + 3)
        report = verify(path)
        assert not report.ok
        assert pid in report.corrupt_pages

    def test_detects_truncation(self, saved):
        path, _, _ = saved
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - PAGE)
        report = verify(path)
        assert not report.ok

    def test_detects_cross_generation_splice(self, saved):
        """A node page swapped in from a different save has a valid frame
        but breaks the checksum-of-checksums."""
        path, tree, data = saved
        other = HybridTree.bulk_load(np.vstack([data, data[:5] * 0.5]))
        other_path = path + ".other"
        other.save(other_path)
        pid = next(pid for pid, kind in _node_pages(path) if kind == PAGE_KIND_DATA)
        with open(other_path, "rb") as f:
            f.seek(pid * PAGE)
            foreign = f.read(PAGE)
        with open(path, "r+b") as f:
            f.seek(pid * PAGE)
            f.write(foreign)
        report = verify(path)
        assert not report.ok


class TestSalvage:
    def test_recovers_everything_from_intact_file(self, saved, tmp_path):
        path, tree, _ = saved
        report = salvage(path, out_path=str(tmp_path / "rebuilt.pages"))
        assert report.objects_recovered == len(tree)
        rebuilt = HybridTree.open(str(tmp_path / "rebuilt.pages"))
        q = Rect([0.2] * DIMS, [0.7] * DIMS)
        assert sorted(rebuilt.range_search(q)) == sorted(tree.range_search(q))

    def test_survives_destroyed_index_and_superblock(self, saved):
        """Only data pages matter: wreck every index page AND the
        superblock; salvage still recovers every object."""
        path, tree, _ = saved
        index_pids = [p for p, k in _node_pages(path) if k == PAGE_KIND_INDEX]
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            for pid in index_pids:
                f.seek(pid * PAGE)
                f.write(os.urandom(PAGE))
            f.seek(size - PAGE)
            f.write(os.urandom(PAGE))
        with pytest.raises(PageCorruptionError):
            HybridTree.open(path)
        report = salvage(path)
        assert report.objects_recovered == len(tree)
        assert len(report.tree) == len(tree)

    def test_loses_only_the_corrupt_data_page(self, saved):
        path, tree, _ = saved
        victim = next(p for p, k in _node_pages(path) if k == PAGE_KIND_DATA)
        lost = sum(
            len(oids)
            for pid, _, oids in iter_intact_data_pages(path, PAGE)
            if pid == victim
        )
        assert lost > 0
        _flip(path, victim, 12345)
        report = salvage(path)
        assert report.objects_recovered == len(tree) - lost
        assert report.expected_objects == len(tree)


class TestRetry:
    def test_transient_faults_retried_without_double_charge(self, saved):
        path, _, _ = saved
        q = Rect([0.1] * DIMS, [0.6] * DIMS)
        clean = HybridTree.open(path)
        want = clean.range_search(q)
        clean_reads = clean.io.random_reads

        faulty = HybridTree.open(path)
        injector = FaultInjectingPageStore(faulty.nm.store, seed=3)
        faulty.nm.store = injector
        injector.fail_reads(3)
        assert faulty.range_search(q) == want
        assert faulty.nm.retries_performed == 3
        assert injector.faults_injected == 3
        # A failed attempt is never charged: same cost as the clean run.
        assert faulty.io.random_reads == clean_reads

    def test_fault_past_retry_budget_surfaces(self, saved):
        path, _, _ = saved
        tree = HybridTree.open(path)
        injector = FaultInjectingPageStore(tree.nm.store, seed=3)
        tree.nm.store = injector
        injector.fail_reads(tree.nm.max_retries + 1)
        with pytest.raises(TransientStorageError):
            tree.range_search(Rect.unit(DIMS))

    def test_corruption_is_never_retried(self, saved):
        path, tree, _ = saved
        _flip(path, tree.root_id, 99)
        reopened = HybridTree.open(path)
        with pytest.raises(PageCorruptionError):
            reopened.range_search(Rect.unit(DIMS))
        assert reopened.nm.retries_performed == 0


class TestDegradedQueries:
    def _corrupt_root(self, path, tree):
        _flip(path, tree.root_id, 7777)

    def test_scan_policy_matches_index_answers(self, saved):
        path, tree, data = saved
        q = Rect([0.25] * DIMS, [0.8] * DIMS)
        want_range = sorted(tree.range_search(q))
        want_count = tree.count_range(q)
        want_knn = tree.knn(data[17], 9)
        want_dr = sorted(tree.distance_range(data[17], 0.4))
        self._corrupt_root(path, tree)
        degraded = HybridTree.open(path, on_corruption="scan")
        assert sorted(degraded.range_search(q)) == want_range
        assert degraded.count_range(q) == want_count
        assert degraded.knn(data[17], 9) == want_knn
        assert sorted(degraded.distance_range(data[17], 0.4)) == want_dr
        assert degraded.degraded_queries == 4

    def test_scan_policy_charges_sequential_reads(self, saved):
        path, tree, _ = saved
        self._corrupt_root(path, tree)
        degraded = HybridTree.open(path, on_corruption="scan")
        degraded.range_search(Rect.unit(DIMS))
        assert degraded.io.sequential_reads >= tree.pages()

    def test_raise_policy_raises(self, saved):
        path, tree, _ = saved
        self._corrupt_root(path, tree)
        reopened = HybridTree.open(path)  # default policy
        with pytest.raises(PageCorruptionError):
            reopened.knn(np.full(DIMS, 0.5), 3)
        assert reopened.degraded_queries == 0

    def test_batch_engine_degrades_too(self, saved):
        path, tree, data = saved
        boxes = [
            Rect([0.1] * DIMS, [0.5] * DIMS),
            Rect([0.4] * DIMS, [0.9] * DIMS),
        ]
        want_range = tree.range_search_many(boxes)
        want_knn = tree.knn_many(data[:4], 5)
        want_dr = tree.distance_range_many(data[:4], 0.3)
        self._corrupt_root(path, tree)
        degraded = HybridTree.open(path, on_corruption="scan")
        assert [sorted(r) for r in degraded.range_search_many(boxes)] == [
            sorted(r) for r in want_range
        ]
        assert degraded.knn_many(data[:4], 5) == want_knn
        assert [sorted(r) for r in degraded.distance_range_many(data[:4], 0.3)] == [
            sorted(r) for r in want_dr
        ]
        with pytest.raises(PageCorruptionError):
            HybridTree.open(path).knn_many(data[:4], 5)

    def test_invalid_policy_rejected(self, saved):
        path, _, _ = saved
        with pytest.raises(ValueError):
            HybridTree.open(path, on_corruption="ignore")
        with pytest.raises(ValueError):
            HybridTree(DIMS, on_corruption="retry")


class TestFreeListPersistence:
    def test_delete_heavy_roundtrip_reuses_holes(self, saved):
        path, tree, data = saved
        reopened = HybridTree.open(path)
        for oid in range(900):
            assert reopened.delete(data[oid], oid)
        reopened.save(path)

        again = HybridTree.open(path)
        assert len(again) == len(tree) - 900
        free_before = set(again.nm.store.free_page_ids)
        assert free_before  # the shrunken tree left real holes
        report = verify(path)
        assert report.ok, report.errors
        assert report.free_pages == len(free_before)

        # New growth must recycle the persisted holes, not extend the file.
        pages_before = again.nm.store._next_id
        for oid in range(900):
            again.insert(data[oid], 10_000 + oid)
        assert again.nm.store._next_id <= pages_before + 1
        again.save(path)
        final = verify(path)
        assert final.ok, final.errors

    def test_roundtrip_queries_after_delete_save_open(self, saved):
        path, _, data = saved
        reopened = HybridTree.open(path)
        for oid in range(0, 1200, 2):
            assert reopened.delete(data[oid], oid)
        reopened.save(path)
        again = HybridTree.open(path)
        again.validate()
        got = sorted(again.range_search(Rect.unit(DIMS)))
        want = sorted(
            oid for oid in range(1500) if not (oid < 1200 and oid % 2 == 0)
        )
        assert got == want
