"""Tests for Encoded Live Space (dead-space elimination, Section 3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.els import ELSTable, encode_cells, quantize_live_rect
from repro.geometry.rect import Rect


def _random_live_in(region: Rect, rng) -> Rect:
    a = rng.uniform(region.low, region.high)
    b = rng.uniform(region.low, region.high)
    return Rect(np.minimum(a, b), np.maximum(a, b))


class TestQuantize:
    def test_zero_bits_returns_region(self):
        region = Rect.unit(3)
        live = Rect([0.2] * 3, [0.3] * 3)
        assert quantize_live_rect(live, region, 0) == region

    def test_superset_of_live_subset_of_region(self, rng):
        region = Rect([0.0, -2.0], [4.0, 6.0])
        for bits in (1, 2, 4, 8, 16):
            for _ in range(25):
                live = _random_live_in(region, rng)
                q = quantize_live_rect(live, region, bits)
                assert q.contains_rect(live)
                assert region.contains_rect(q)

    def test_monotone_in_bits(self, rng):
        """Higher precision never loosens the box."""
        region = Rect.unit(4)
        for _ in range(25):
            live = _random_live_in(region, rng)
            vol_prev = np.inf
            for bits in (1, 2, 4, 8):
                q = quantize_live_rect(live, region, bits)
                assert q.volume() <= vol_prev + 1e-12
                vol_prev = q.volume()

    def test_grid_alignment(self):
        region = Rect([0.0], [1.0])
        live = Rect([0.26], [0.30])
        q = quantize_live_rect(live, region, 2)  # grid cells of 0.25
        assert q.low[0] == pytest.approx(0.25)
        assert q.high[0] == pytest.approx(0.5)

    def test_degenerate_region_side(self):
        region = Rect([0.0, 1.0], [1.0, 1.0])
        live = Rect([0.4, 1.0], [0.6, 1.0])
        q = quantize_live_rect(live, region, 4)
        assert q.contains_rect(live)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_live_rect(Rect.unit(1), Rect.unit(1), 17)


class TestEncodeCells:
    def test_bit_width(self):
        region = Rect.unit(2)
        live = Rect([0.1, 0.2], [0.4, 0.9])
        lo, hi = encode_cells(live, region, 4)
        assert lo.dtype == np.uint32 and hi.dtype == np.uint32
        assert np.all(lo <= 16) and np.all(hi <= 16)
        assert np.all(lo <= hi)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            encode_cells(Rect.unit(1), Rect.unit(1), 0)


class TestELSTable:
    def test_disabled_table(self):
        table = ELSTable(4, 0)
        assert not table.enabled
        assert table.memory_bytes == 0
        region = Rect.unit(4)
        table.set(1, Rect([0.1] * 4, [0.2] * 4))
        assert table.effective_rect(1, region) == region

    def test_effective_rect_quantized(self):
        table = ELSTable(2, 4)
        region = Rect.unit(2)
        live = Rect([0.3, 0.3], [0.4, 0.4])
        table.set(7, live)
        eff = table.effective_rect(7, region)
        assert eff.contains_rect(live)
        assert region.contains_rect(eff)
        assert eff.volume() < region.volume()

    def test_unknown_node_falls_back_to_region(self):
        table = ELSTable(2, 4)
        region = Rect.unit(2)
        assert table.effective_rect(99, region) == region

    def test_merge_point_grows(self):
        table = ELSTable(2, 4)
        table.merge_point(1, np.array([0.5, 0.5]))
        table.merge_point(1, np.array([0.7, 0.2]))
        live = table.get(1)
        assert live.contains_point(np.array([0.5, 0.5]))
        assert live.contains_point(np.array([0.7, 0.2]))

    def test_stale_live_outside_region_falls_back(self):
        table = ELSTable(1, 4)
        table.set(1, Rect([2.0], [3.0]))
        region = Rect([0.0], [1.0])
        assert table.effective_rect(1, region) == region

    def test_memory_accounting(self):
        table = ELSTable(64, 4)
        for i in range(10):
            table.set(i, Rect.unit(64))
        # 2 boundaries * 64 dims * 4 bits = 64 bytes per node.
        assert table.memory_bytes == 64 * 10

    def test_drop_and_contains(self):
        table = ELSTable(2, 4)
        table.set(3, Rect.unit(2))
        assert 3 in table and len(table) == 1
        table.drop(3)
        assert 3 not in table and len(table) == 0

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            ELSTable(2, -1)

    def test_items_sorted_and_complete(self):
        table = ELSTable(2, 4)
        boxes = {9: Rect.unit(2), 3: Rect([0.1, 0.1], [0.2, 0.2]), 6: Rect.unit(2)}
        for node_id, live in boxes.items():
            table.set(node_id, live)
        items = table.items()
        assert [node_id for node_id, _ in items] == [3, 6, 9]
        for node_id, live in items:
            assert live == boxes[node_id]

    def test_items_empty(self):
        assert ELSTable(2, 4).items() == []


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(0.0078125, 0.984375, width=32), min_size=2, max_size=2),
    st.lists(st.floats(0.0078125, 0.984375, width=32), min_size=2, max_size=2),
    st.integers(1, 16),
)
def test_property_quantized_contains_live(a, b, bits):
    region = Rect.unit(2)
    live = Rect(np.minimum(a, b), np.maximum(a, b))
    q = quantize_live_rect(live, region, bits)
    assert q.contains_rect(live)
    assert region.contains_rect(q)
