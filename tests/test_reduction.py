"""Tests for the PCA / reduced-index subsystem."""

import numpy as np
import pytest

from repro.datasets import colhist_dataset, uniform_dataset
from repro.distances import L1, L2
from repro.reduction import PCA, ReducedIndex
from tests.conftest import brute_force_distance_range, brute_force_knn_dists


def correlated_data(n=3000, latent=4, dims=24, noise=0.02, seed=1):
    rng = np.random.default_rng(seed)
    basis = rng.random((latent, dims))
    return (rng.random((n, latent)) @ basis + rng.normal(0, noise, (n, dims))).astype(
        np.float32
    )


class TestPCA:
    def test_orthonormal_components(self):
        pca = PCA(correlated_data())
        gram = pca.components @ pca.components.T
        assert np.allclose(gram, np.eye(pca.dims), atol=1e-8)

    def test_transform_preserves_distances(self):
        data = correlated_data(n=200)
        pca = PCA(data)
        full = pca.transform(data)
        d_orig = np.linalg.norm(data[0].astype(np.float64) - data[1])
        d_rot = np.linalg.norm(full[0] - full[1])
        assert d_rot == pytest.approx(d_orig, rel=1e-6)

    def test_prefix_is_contractive(self):
        data = correlated_data(n=200)
        pca = PCA(data)
        full = pca.transform(data)
        for m in (1, 3, 8):
            reduced = full[:, :m]
            d_red = np.linalg.norm(reduced[0] - reduced[1])
            d_full = np.linalg.norm(full[0] - full[1])
            assert d_red <= d_full + 1e-9

    def test_energy_monotone_and_bounded(self):
        pca = PCA(correlated_data())
        energies = [pca.energy(m) for m in range(1, pca.dims + 1)]
        assert all(0 <= e <= 1 + 1e-12 for e in energies)
        assert energies == sorted(energies)
        assert energies[-1] == pytest.approx(1.0)

    def test_correlated_data_compresses(self):
        pca = PCA(correlated_data(latent=4))
        assert pca.dims_for_energy(0.95) <= 5

    def test_uncorrelated_data_does_not(self):
        pca = PCA(uniform_dataset(2000, 16, seed=2))
        assert pca.dims_for_energy(0.95) >= 12

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            PCA(np.zeros((1, 4)))
        pca = PCA(correlated_data(n=50))
        with pytest.raises(ValueError):
            pca.energy(0)
        with pytest.raises(ValueError):
            pca.dims_for_energy(0.0)


class TestReducedIndex:
    @pytest.fixture(scope="class")
    def data(self):
        return correlated_data(n=2500, dims=20)

    @pytest.fixture(scope="class")
    def index(self, data):
        return ReducedIndex(data, energy_target=0.99)

    def test_reduced_dims_small_on_correlated(self, index):
        assert index.reduced_dims <= 6
        assert index.energy() >= 0.99

    def test_distance_range_exact(self, index, data, rng):
        for _ in range(5):
            q = data[int(rng.integers(len(data)))].astype(np.float64)
            r = float(rng.uniform(0.1, 0.6))
            got = {o for o, _ in index.distance_range(q, r)}
            assert got == brute_force_distance_range(data, q, r, L2)

    def test_knn_exact(self, index, data, rng):
        for _ in range(5):
            q = data[int(rng.integers(len(data)))].astype(np.float64)
            got = index.knn(q, 7)
            expected = brute_force_knn_dists(data, q, 7, L2)
            assert np.allclose([d for _, d in got], expected, atol=1e-5)

    def test_rejects_arbitrary_metric(self, index):
        with pytest.raises(ValueError):
            index.knn(np.zeros(20), 3, metric=L1)

    def test_rejects_box_queries(self, index):
        with pytest.raises(TypeError):
            index.range_search(None)

    def test_insert_projects_onto_frozen_basis(self, data):
        index = ReducedIndex(data[:500], energy_target=0.99)
        new_oid = index.insert(data[600])
        assert new_oid == 500
        q = data[600].astype(np.float64)
        assert index.knn(q, 1)[0][0] == 500

    def test_insert_rejects_custom_oid(self, data):
        index = ReducedIndex(data[:100], energy_target=0.9)
        with pytest.raises(ValueError):
            index.insert(data[0], oid=5)

    def test_refit(self, data):
        index = ReducedIndex(data[:300], energy_target=0.99)
        for row in data[300:340]:
            index.insert(row)
        rebuilt = index.refit(energy_target=0.99)
        assert len(rebuilt) == 340

    def test_explicit_reduced_dims(self, data):
        index = ReducedIndex(data, reduced_dims=2)
        assert index.reduced_dims == 2
        q = data[1].astype(np.float64)
        got = {o for o, _ in index.distance_range(q, 0.3)}
        assert got == brute_force_distance_range(data, q, 0.3, L2)

    def test_weak_correlation_keeps_many_dims(self):
        histograms = colhist_dataset(1500, 64, seed=5)
        index = ReducedIndex(histograms, energy_target=0.95)
        assert index.reduced_dims > 16  # the paper's limitation 1

    def test_io_accounts_verification(self, index, data):
        index.io.reset()
        index.knn(data[9].astype(np.float64), 5)
        assert index.io.random_reads > 0
