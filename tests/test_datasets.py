"""Tests for dataset generators and workload calibration."""

import numpy as np
import pytest

from repro.datasets import (
    calibrate_box_side,
    clustered_dataset,
    colhist_dataset,
    distance_workload,
    fourier_dataset,
    pad_with_nondiscriminating_dims,
    range_workload,
    uniform_dataset,
)
from repro.distances import L1, L2


class TestFourier:
    def test_shape_and_dtype(self):
        data = fourier_dataset(500, 12)
        assert data.shape == (500, 12)
        assert data.dtype == np.float32

    def test_normalized_to_unit_cube(self):
        data = fourier_dataset(1000, 16)
        assert data.min() >= 0.0 and data.max() <= 1.0
        # Every dimension spans its range after min-max normalization.
        assert np.all(data.max(axis=0) - data.min(axis=0) > 0.99)

    def test_deterministic(self):
        assert np.array_equal(fourier_dataset(100, 8, seed=5), fourier_dataset(100, 8, seed=5))
        assert not np.array_equal(
            fourier_dataset(100, 8, seed=5), fourier_dataset(100, 8, seed=6)
        )

    def test_prefix_consistency_across_dims(self):
        """8-d vectors are the first 8 coefficients of the 16-d vectors
        (before per-dimension normalization), as the paper constructs them."""
        lo = fourier_dataset(300, 8, seed=2)
        hi = fourier_dataset(300, 16, seed=2)
        # Same polygons, same harmonics: rank order along shared dims agrees.
        for d in range(8):
            assert np.array_equal(np.argsort(lo[:, d]), np.argsort(hi[:, d]))

    def test_family_structure_exists(self):
        """Within-family spread is far below the global spread."""
        data = fourier_dataset(2000, 8, families=10, seed=3)
        from scipy.spatial.distance import pdist

        sample = data[:300].astype(np.float64)
        global_spread = np.median(pdist(sample))
        nn = np.sort(np.linalg.norm(sample[:, None] - sample[None, :], axis=2), axis=1)[:, 1]
        assert np.median(nn) < global_spread / 3

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            fourier_dataset(10, 0)
        with pytest.raises(ValueError):
            fourier_dataset(10, 20, vertices=32)
        with pytest.raises(ValueError):
            fourier_dataset(10, 8, families=0)


class TestColhist:
    def test_shapes(self):
        for dims in (16, 32, 64):
            data = colhist_dataset(200, dims)
            assert data.shape == (200, dims)

    def test_rows_are_histograms(self):
        for dims in (16, 32, 64):
            data = colhist_dataset(300, dims, seed=1)
            assert np.allclose(data.sum(axis=1), 1.0, atol=1e-4)
            assert data.min() >= 0.0

    def test_aggregation_consistency(self):
        """Coarser histograms are bin-sums of the 8x8 ones (same images)."""
        h64 = colhist_dataset(100, 64, seed=4).astype(np.float64)
        h32 = colhist_dataset(100, 32, seed=4).astype(np.float64)
        h16 = colhist_dataset(100, 16, seed=4).astype(np.float64)
        grid = h64.reshape(100, 8, 8)
        assert np.allclose((grid[:, :, 0::2] + grid[:, :, 1::2]).reshape(100, 32), h32, atol=1e-6)
        coarse = grid[:, :, 0::2] + grid[:, :, 1::2]
        assert np.allclose(
            (coarse[:, 0::2, :] + coarse[:, 1::2, :]).reshape(100, 16), h16, atol=1e-6
        )

    def test_sparsity(self):
        data = colhist_dataset(500, 64, seed=5)
        assert float((data < 0.01).mean()) > 0.5  # most bins near-empty

    def test_cluster_structure(self):
        data = colhist_dataset(1000, 64, themes=5, seed=6)
        # 5 themes: nearest-neighbour distance far below random-pair distance.
        sample = data[:200].astype(np.float64)
        d = np.linalg.norm(sample[:, None] - sample[None, :], axis=2)
        nn = np.sort(d, axis=1)[:, 1]
        assert np.median(nn) < np.median(d) / 2

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            colhist_dataset(10, 48)
        with pytest.raises(ValueError):
            colhist_dataset(10, 64, themes=0)

    def test_deterministic(self):
        assert np.array_equal(colhist_dataset(50, 32, seed=9), colhist_dataset(50, 32, seed=9))


class TestSynthetic:
    def test_uniform(self):
        data = uniform_dataset(100, 5, seed=0)
        assert data.shape == (100, 5)
        assert data.min() >= 0 and data.max() <= 1

    def test_clustered_within_bounds(self):
        data = clustered_dataset(500, 4, clusters=3, seed=1)
        assert data.min() >= 0 and data.max() <= 1

    def test_clustered_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            clustered_dataset(10, 2, clusters=0)

    def test_padding_adds_constant_dims(self):
        base = uniform_dataset(200, 4, seed=2)
        padded = pad_with_nondiscriminating_dims(base, 6, jitter=1e-4, seed=3)
        assert padded.shape == (200, 10)
        assert np.array_equal(padded[:, :4], base)
        spreads = padded[:, 4:].max(axis=0) - padded[:, 4:].min(axis=0)
        assert np.all(spreads < 0.01)

    def test_padding_zero_dims_identity(self):
        base = uniform_dataset(20, 3, seed=4)
        assert pad_with_nondiscriminating_dims(base, 0) is base or np.array_equal(
            pad_with_nondiscriminating_dims(base, 0), base
        )

    def test_padding_rejects_negative(self):
        with pytest.raises(ValueError):
            pad_with_nondiscriminating_dims(uniform_dataset(5, 2), -1)


class TestWorkloads:
    def test_per_query_box_selectivity_exact(self):
        data = colhist_dataset(4000, 16, seed=7)
        workload = range_workload(data, 10, 0.005, seed=8)
        k = int(np.ceil(0.005 * len(data)))
        data64 = data.astype(np.float64)
        for box in workload.boxes():
            hits = int(np.all((data64 >= box.low) & (data64 <= box.high), axis=1).sum())
            assert hits >= k  # at least k (ties may add a few)
            assert hits <= k + 25

    def test_global_side_calibration(self):
        data = uniform_dataset(4000, 4, seed=9)
        workload = range_workload(data, 10, 0.01, seed=10, per_query=False)
        hits = [
            int(np.all((data >= b.low) & (data <= b.high), axis=1).sum())
            for b in workload.boxes()
        ]
        target = 0.01 * len(data)
        assert 0.3 * target <= np.mean(hits) <= 3.0 * target

    def test_calibrate_box_side_converges(self):
        data = uniform_dataset(3000, 3, seed=11)
        rng = np.random.default_rng(12)
        centers = data[rng.choice(3000, 10)].astype(np.float64)
        side = calibrate_box_side(data, centers, 0.01)
        assert 0.0 < side < 1.0

    def test_calibrate_rejects_bad_selectivity(self):
        data = uniform_dataset(100, 2)
        with pytest.raises(ValueError):
            calibrate_box_side(data, data[:2].astype(np.float64), 1.5)
        with pytest.raises(ValueError):
            range_workload(data, 4, 0.0)

    def test_distance_workload_selectivity_exact(self):
        data = colhist_dataset(3000, 32, seed=13)
        for metric in (L1, L2):
            workload = distance_workload(data, 8, 0.005, metric=metric, seed=14)
            k = int(np.ceil(0.005 * len(data)))
            data64 = data.astype(np.float64)
            for center, radius in zip(workload.centers, workload.radii):
                hits = int((metric.distance_batch(data64, center) <= radius).sum())
                assert k <= hits <= k + 25

    def test_boxes_requires_box_kind(self):
        data = uniform_dataset(100, 2, seed=15)
        workload = distance_workload(data, 3, 0.05)
        with pytest.raises(ValueError):
            workload.boxes()

    def test_workload_deterministic(self):
        data = uniform_dataset(500, 3, seed=16)
        a = range_workload(data, 5, 0.01, seed=17)
        b = range_workload(data, 5, 0.01, seed=17)
        assert np.array_equal(a.centers, b.centers)
        assert np.array_equal(a.sides, b.sides)


class TestNormalizeUnitCube:
    def test_maps_to_unit_cube(self):
        from repro.datasets import normalize_unit_cube

        rng = np.random.default_rng(70)
        raw = rng.normal(50.0, 20.0, (300, 5))
        normed = normalize_unit_cube(raw)
        assert normed.dtype == np.float32
        assert normed.min() >= 0.0 and normed.max() <= 1.0
        assert np.all(normed.max(axis=0) == pytest.approx(1.0))
        assert np.all(normed.min(axis=0) == pytest.approx(0.0))

    def test_preserves_order(self):
        from repro.datasets import normalize_unit_cube

        raw = np.array([[1.0], [5.0], [3.0]])
        normed = normalize_unit_cube(raw)
        assert np.array_equal(np.argsort(normed[:, 0]), np.argsort(raw[:, 0]))

    def test_constant_dimension(self):
        from repro.datasets import normalize_unit_cube

        raw = np.array([[1.0, 7.0], [2.0, 7.0]])
        normed = normalize_unit_cube(raw)
        assert np.all(normed[:, 1] == 0.0)

    def test_rejects_empty(self):
        from repro.datasets import normalize_unit_cube

        with pytest.raises(ValueError):
            normalize_unit_cube(np.empty((0, 3)))
