"""Tests for tree statistics, normalized costs, the harness and reporting."""

import numpy as np
import pytest

from repro.core import HybridTree, compute_stats
from repro.datasets import colhist_dataset, range_workload, uniform_dataset
from repro.datasets.workload import QueryWorkload, distance_workload
from repro.distances import L1
from repro.eval import build_index, normalized_cpu_cost, normalized_io_cost, render_table
from repro.eval.harness import INDEX_KINDS, run_workload
from repro.storage.iostats import AccessKind, IOStats


class TestStats:
    @pytest.fixture(scope="class")
    def tree(self):
        data = colhist_dataset(4000, 32, seed=40)
        tree = HybridTree(32)
        for oid, v in enumerate(data):
            tree.insert(v, oid)
        return tree

    def test_counts_consistent(self, tree):
        stats = compute_stats(tree)
        assert stats.count == len(tree)
        assert stats.height == tree.height
        assert stats.num_data_nodes + stats.num_index_nodes <= stats.pages

    def test_fanout_and_utilization_ranges(self, tree):
        stats = compute_stats(tree)
        assert 2 <= stats.avg_index_fanout <= tree.index_capacity
        assert 0.3 <= stats.min_data_utilization <= 1.0
        assert stats.max_index_fanout <= tree.index_capacity

    def test_overlap_fraction_range(self, tree):
        stats = compute_stats(tree)
        assert 0.0 <= stats.overlap_fraction <= 1.0

    def test_split_dims_subset(self, tree):
        stats = compute_stats(tree)
        assert stats.split_dims_used <= set(range(32))
        assert len(stats.split_dims_used) >= 1

    def test_els_memory_reported(self, tree):
        stats = compute_stats(tree)
        assert stats.els_memory_bytes == tree.els.memory_bytes > 0

    def test_empty_tree_stats(self):
        stats = compute_stats(HybridTree(4))
        assert stats.count == 0 and stats.num_data_nodes == 1


class TestCosts:
    def test_normalized_io(self):
        io = IOStats()
        io.record(AccessKind.RANDOM_READ, 30)
        assert normalized_io_cost(io, 300) == pytest.approx(0.1)

    def test_normalized_io_sequential_discount(self):
        io = IOStats()
        io.record(AccessKind.SEQUENTIAL_READ, 300)
        assert normalized_io_cost(io, 300) == pytest.approx(0.1)

    def test_normalized_io_rejects_zero_pages(self):
        with pytest.raises(ValueError):
            normalized_io_cost(IOStats(), 0)

    def test_normalized_cpu(self):
        assert normalized_cpu_cost(0.5, 2.0) == 0.25
        with pytest.raises(ValueError):
            normalized_cpu_cost(1.0, 0.0)


class TestHarness:
    @pytest.fixture(scope="class")
    def data(self):
        return colhist_dataset(2500, 16, seed=41)

    def test_build_index_all_kinds(self, data):
        for kind in INDEX_KINDS:
            index = build_index(kind, data[:400])
            assert len(index) == 400, kind

    def test_build_index_rejects_unknown(self, data):
        with pytest.raises(ValueError):
            build_index("btree", data)

    def test_run_box_workload(self, data):
        workload = range_workload(data, 5, 0.01, seed=42)
        index = build_index("hybrid", data, build="bulk")
        result = run_workload(index, data, workload, kind="hybrid")
        assert result.num_queries == 5
        assert result.avg_disk_accesses > 0
        assert result.avg_result_count >= 1
        assert result.normalized_io > 0
        row = result.row(dims=16)
        assert row["method"] == "hybrid" and row["dims"] == 16

    def test_run_distance_workload(self, data):
        workload = distance_workload(data, 4, 0.01, metric=L1, seed=43)
        index = build_index("hybrid", data, build="bulk")
        result = run_workload(index, data, workload, kind="hybrid")
        assert result.avg_result_count >= 0.01 * len(data) - 1

    def test_scan_normalizes_to_point_one(self, data):
        workload = range_workload(data, 4, 0.01, seed=44)
        scan = build_index("scan", data)
        result = run_workload(scan, data, workload, kind="scan")
        assert result.normalized_io == pytest.approx(0.1)

    def test_unknown_workload_kind_rejected(self, data):
        index = build_index("scan", data)
        bogus = QueryWorkload(kind="weird", centers=data[:2].astype(np.float64))
        with pytest.raises(ValueError):
            run_workload(index, data, bogus)

    def test_vam_build_differs(self, data):
        eda = build_index("hybrid", data[:1500])
        vam = build_index("hybrid-vam", data[:1500])
        assert eda.split_policy == "eda" and vam.split_policy == "vam"


class TestReport:
    def test_render_basic(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 222, "b": "z", "c": 3.5}]
        text = render_table(rows, "Title")
        assert "Title" in text
        assert "222" in text and "3.5" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[1:] if line}) <= 2  # aligned

    def test_render_empty(self):
        assert "(no rows)" in render_table([], "T")

    def test_render_missing_keys_blank(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text


class TestFigureDrivers:
    """Smoke tests at miniature scale: drivers run end-to-end and return
    well-formed rows.  The real shapes are asserted by benchmarks/."""

    def test_fig5_smoke(self):
        from repro.eval.figures import fig5_eda_vs_vam

        rows = fig5_eda_vs_vam(dims_list=(16,), count=600, num_queries=4)
        assert {r["method"] for r in rows} == {"hybrid", "hybrid-vam"}

    def test_fig5c_smoke(self):
        from repro.eval.figures import fig5c_els

        rows = fig5c_els(bits_list=(0, 4), dims_list=(16,), count=600, num_queries=4)
        assert len(rows) == 2
        assert rows[0]["els_bits"] == 0 and rows[1]["els_bits"] == 4

    def test_fig6_smoke(self):
        from repro.eval.figures import fig6_dimensionality

        rows = fig6_dimensionality(
            "colhist", dims_list=(16,), count=800, num_queries=3,
            methods=("hybrid", "scan"),
        )
        scan_row = next(r for r in rows if r["method"] == "scan")
        assert scan_row["norm_io"] == pytest.approx(0.1)

    def test_fig6_rejects_unknown_dataset(self):
        from repro.eval.figures import fig6_dimensionality

        with pytest.raises(ValueError):
            fig6_dimensionality("tpch")

    def test_fig7_distance_smoke(self):
        from repro.eval.figures import fig7_distance

        rows = fig7_distance(
            dims_list=(16,), count=700, num_queries=3, methods=("hybrid",)
        )
        assert rows[0]["metric"] == "L1"

    def test_lemma1_smoke(self):
        from repro.eval.figures import lemma1_dimension_elimination

        rows = lemma1_dimension_elimination(
            base_dims=16, extra_dims_list=(0, 4), count=800, num_queries=3
        )
        assert all(r["padded_dims_used"] == 0 for r in rows)

    def test_approx_knn_smoke(self):
        from repro.eval.figures import ext_approximate_knn

        rows = ext_approximate_knn(
            dims=16, count=800, num_queries=4, k=5, factors=(0.0, 1.0)
        )
        assert rows[0]["recall"] == 1.0
        assert rows[1]["kth_dist_ratio"] <= 2.0 + 1e-9


def test_uniform_dataset_harness_end_to_end():
    """Tiny end-to-end sanity run across three structures."""
    data = uniform_dataset(900, 6, seed=45)
    workload = range_workload(data, 4, 0.01, seed=46)
    results = {}
    for kind in ("hybrid", "rtree", "scan"):
        index = build_index(kind, data)
        results[kind] = run_workload(index, data, workload, kind=kind)
    counts = {r.avg_result_count for r in results.values()}
    assert len(counts) == 1  # everyone returns the same answers
