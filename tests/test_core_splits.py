"""Tests for the node-splitting algorithms (Sections 3.2-3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.splits import (
    POLICY_EDA,
    POLICY_VAM,
    POSITION_MEDIAN,
    POSITION_MIDDLE,
    bipartition_intervals,
    choose_data_split,
    choose_index_split,
)
from repro.geometry.rect import Rect


class TestDataSplit:
    def test_clean_and_complete(self, rng):
        points = rng.random((61, 8))
        split = choose_data_split(points, min_fill=0.4)
        all_idx = np.sort(np.concatenate([split.left_indices, split.right_indices]))
        assert np.array_equal(all_idx, np.arange(61))
        # Clean: every left value <= position <= every right value.
        assert points[split.left_indices, split.dim].max() <= split.position
        assert points[split.right_indices, split.dim].min() >= split.position

    def test_utilization_respected(self, rng):
        points = rng.random((100, 4))
        split = choose_data_split(points, min_fill=0.4)
        assert len(split.left_indices) >= 40
        assert len(split.right_indices) >= 40

    def test_eda_picks_max_extent_dimension(self, rng):
        points = rng.random((50, 3))
        points[:, 1] *= 5.0  # dimension 1 has by far the largest extent
        split = choose_data_split(points, min_fill=0.3, policy=POLICY_EDA)
        assert split.dim == 1

    def test_vam_picks_max_variance_dimension(self, rng):
        points = rng.random((50, 3)) * 0.1
        points[:25, 2] = 0.0
        points[25:, 2] = 1.0  # dimension 2: max variance
        split = choose_data_split(points, min_fill=0.3, policy=POLICY_VAM)
        assert split.dim == 2

    def test_middle_vs_median_positions(self):
        # Skewed data: middle of the extent != median.
        points = np.zeros((20, 1))
        points[:16, 0] = np.linspace(0.0, 0.1, 16)
        points[16:, 0] = np.linspace(0.9, 1.0, 4)
        middle = choose_data_split(points, 0.1, position_rule=POSITION_MIDDLE)
        median = choose_data_split(points, 0.1, position_rule=POSITION_MEDIAN)
        assert middle.position > median.position

    def test_duplicate_heavy_data_falls_back(self):
        points = np.full((30, 2), 0.5)
        points[:3, 0] = 0.7  # only 3 distinct on dim 0; clean cut violates fill
        split = choose_data_split(points, min_fill=0.4)
        # Rank split fallback still balances.
        assert min(len(split.left_indices), len(split.right_indices)) >= 12

    def test_all_identical_points(self):
        points = np.full((10, 3), 0.25)
        split = choose_data_split(points, min_fill=0.4)
        assert len(split.left_indices) == 5 and len(split.right_indices) == 5

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            choose_data_split(np.zeros((1, 2)), 0.4)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            choose_data_split(np.zeros((4, 2)), 0.4, policy="bogus")
        with pytest.raises(ValueError):
            choose_data_split(np.zeros((4, 2)), 0.4, position_rule="bogus")


class TestBipartition:
    def test_disjoint_intervals_clean_cut(self):
        intervals = np.array([[0.0, 0.1], [0.2, 0.3], [0.6, 0.7], [0.8, 0.9]])
        left, right, lsp, rsp = bipartition_intervals(intervals, 2)
        assert sorted(left) == [0, 1] and sorted(right) == [2, 3]
        assert lsp == rsp  # gap snapped to the midpoint
        assert 0.3 <= lsp <= 0.6

    def test_overlapping_intervals_minimize_overlap(self):
        intervals = np.array([[0.0, 0.5], [0.1, 0.6], [0.4, 1.0], [0.5, 0.9]])
        left, right, lsp, rsp = bipartition_intervals(intervals, 2)
        assert len(left) == 2 and len(right) == 2
        assert lsp >= rsp
        # All left segments end by lsp; all right segments start at rsp.
        assert max(intervals[i, 1] for i in left) == lsp
        assert min(intervals[i, 0] for i in right) == rsp

    def test_partition_complete(self, rng):
        intervals = rng.random((30, 2))
        intervals.sort(axis=1)
        left, right, lsp, rsp = bipartition_intervals(intervals, 10)
        assert sorted(left + right) == list(range(30))
        assert len(left) >= 10 and len(right) >= 10
        assert lsp >= rsp

    def test_identical_intervals(self):
        intervals = np.tile([0.4, 0.6], (6, 1))
        left, right, lsp, rsp = bipartition_intervals(intervals, 3)
        assert len(left) == 3 and len(right) == 3
        assert lsp == pytest.approx(0.6) and rsp == pytest.approx(0.4)

    def test_rejects_bad_min_per_side(self):
        intervals = np.array([[0.0, 1.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            bipartition_intervals(intervals, 2)
        with pytest.raises(ValueError):
            bipartition_intervals(intervals, 0)

    def test_rejects_single_interval(self):
        with pytest.raises(ValueError):
            bipartition_intervals(np.array([[0.0, 1.0]]), 1)


class TestIndexSplit:
    def _children(self, rects):
        return [(i, r) for i, r in enumerate(rects)]

    def test_prefers_separable_dimension(self):
        # Dim 0: children cleanly separable; dim 1: total overlap.
        rects = [
            Rect([0.0, 0.0], [0.2, 1.0]),
            Rect([0.25, 0.0], [0.45, 1.0]),
            Rect([0.55, 0.0], [0.75, 1.0]),
            Rect([0.8, 0.0], [1.0, 1.0]),
        ]
        split = choose_index_split(self._children(rects), 0.4, 0.1)
        assert split.dim == 0
        assert split.overlap == 0.0
        assert sorted(split.left_ids + split.right_ids) == [0, 1, 2, 3]

    def test_lemma1_never_split_dim_eliminated(self):
        # Dim 1 spans the full extent for every child: w == s, cost 1.
        rects = [
            Rect([0.0, 0.0], [0.3, 1.0]),
            Rect([0.3, 0.0], [0.6, 1.0]),
            Rect([0.6, 0.0], [1.0, 1.0]),
            Rect([0.2, 0.0], [0.5, 1.0]),
        ]
        split = choose_index_split(self._children(rects), 0.25, 0.1)
        assert split.dim == 0

    def test_overlap_accepted_when_necessary(self):
        # Heavily interleaved along the only useful dimension.
        rects = [Rect([i * 0.1, 0.0], [i * 0.1 + 0.4, 1.0]) for i in range(6)]
        split = choose_index_split(self._children(rects), 0.4, 0.1)
        assert split.lsp >= split.rsp
        assert len(split.left_ids) >= 2 and len(split.right_ids) >= 2

    def test_vam_policy_uses_center_variance(self):
        rects = [
            Rect([0.0, 0.45], [0.1, 0.55]),
            Rect([0.3, 0.5], [0.4, 0.6]),
            Rect([0.6, 0.4], [0.7, 0.5]),
            Rect([0.9, 0.5], [1.0, 0.6]),
        ]
        split = choose_index_split(self._children(rects), 0.4, 0.1, policy=POLICY_VAM)
        assert split.dim == 0  # centres vary most along dim 0

    def test_rejects_single_child(self):
        with pytest.raises(ValueError):
            choose_index_split([(0, Rect.unit(2))], 0.4, 0.1)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(2, 40),
    st.integers(1, 6),
    st.floats(0.1, 0.5),
)
def test_property_data_split_balanced_and_complete(n, dims, min_fill):
    rng = np.random.default_rng(n * 100 + dims)
    points = rng.random((n, dims))
    split = choose_data_split(points, min_fill)
    total = len(split.left_indices) + len(split.right_indices)
    assert total == n
    floor = max(1, int(np.floor(n * min_fill)))
    floor = min(floor, n // 2)
    assert len(split.left_indices) >= floor
    assert len(split.right_indices) >= floor


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 50), st.integers(1, 20))
def test_property_bipartition_invariants(n, seed):
    rng = np.random.default_rng(seed)
    intervals = rng.random((n, 2))
    intervals.sort(axis=1)
    min_side = max(1, n // 3)
    left, right, lsp, rsp = bipartition_intervals(intervals, min_side)
    assert sorted(left + right) == list(range(n))
    assert len(left) >= min_side and len(right) >= min_side
    assert lsp >= rsp
    assert all(intervals[i, 1] <= lsp + 1e-12 for i in left)
    assert all(intervals[i, 0] >= rsp - 1e-12 for i in right)
