"""Tests for the HybridTree: exactness, invariants, dynamics, persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HybridTree, compute_stats
from repro.distances import L1, L2, LINF, UserMetric, WeightedEuclidean
from repro.geometry.rect import Rect
from tests.conftest import (
    brute_force_distance_range,
    brute_force_knn_dists,
    brute_force_range,
    random_boxes,
)


def build_dynamic(data, **kwargs):
    tree = HybridTree(data.shape[1], **kwargs)
    for oid, v in enumerate(data):
        tree.insert(v, oid)
    return tree


@pytest.fixture(scope="module")
def uniform8():
    rng = np.random.default_rng(7)
    return rng.random((3000, 8)).astype(np.float32)


@pytest.fixture(scope="module")
def tree8(uniform8):
    return build_dynamic(uniform8)


class TestConstruction:
    def test_empty_tree(self):
        tree = HybridTree(4)
        assert len(tree) == 0 and tree.height == 1
        assert tree.range_search(Rect.unit(4)) == []
        assert tree.knn(np.zeros(4), 3) == []
        assert tree.distance_range(np.zeros(4), 1.0) == []

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            HybridTree(0)
        with pytest.raises(ValueError):
            HybridTree(4, min_fill=0.9)
        with pytest.raises(ValueError):
            HybridTree(4, bounds=Rect.unit(3))

    def test_rejects_bad_vectors(self):
        tree = HybridTree(4)
        with pytest.raises(ValueError):
            tree.insert(np.zeros(3), 0)
        with pytest.raises(ValueError):
            tree.insert(np.array([np.nan, 0, 0, 0]), 0)

    def test_capacities_match_page_model(self):
        tree = HybridTree(64)
        assert tree.data_capacity == 15
        assert tree.index_capacity == HybridTree(2).index_capacity  # dim-free

    def test_growth_increases_height(self, uniform8, tree8):
        assert tree8.height >= 2
        assert len(tree8) == len(uniform8)

    def test_out_of_bounds_point_expands_space(self):
        tree = HybridTree(2)
        tree.insert(np.array([2.0, -1.0]), 0)
        assert tree.bounds.contains_point(np.array([2.0, -1.0]))
        assert tree.point_search(np.array([2.0, -1.0])) == [0]


class TestRangeSearch:
    def test_matches_bruteforce(self, uniform8, tree8, rng):
        for query in random_boxes(rng, 8, 25):
            assert set(tree8.range_search(query)) == brute_force_range(uniform8, query)

    def test_dim_mismatch_rejected(self, tree8):
        with pytest.raises(ValueError):
            tree8.range_search(Rect.unit(5))

    def test_point_search_duplicates(self):
        tree = HybridTree(3)
        v = np.array([0.25, 0.5, 0.75], dtype=np.float32)
        for oid in (5, 9, 13):
            tree.insert(v, oid)
        tree.insert(np.array([0.1, 0.1, 0.1]), 1)
        assert sorted(tree.point_search(v)) == [5, 9, 13]

    def test_whole_space_query_returns_everything(self, uniform8, tree8):
        assert len(tree8.range_search(Rect.unit(8))) == len(uniform8)

    def test_empty_region_query(self, tree8):
        lone = Rect([0.999] * 8, [1.0] * 8)
        assert isinstance(tree8.range_search(lone), list)


class TestDistanceQueries:
    @pytest.mark.parametrize("metric", [L1, L2, LINF], ids=["L1", "L2", "Linf"])
    def test_distance_range_matches_bruteforce(self, uniform8, tree8, metric, rng):
        for _ in range(8):
            q = uniform8[int(rng.integers(len(uniform8)))].astype(np.float64)
            radius = float(rng.uniform(0.2, 0.8))
            got = {oid for oid, _ in tree8.distance_range(q, radius, metric)}
            assert got == brute_force_distance_range(uniform8, q, radius, metric)

    def test_weighted_metric_at_query_time(self, uniform8, tree8, rng):
        metric = WeightedEuclidean(np.array([3.0, 1, 1, 1, 0.1, 1, 1, 2]))
        q = uniform8[42].astype(np.float64)
        got = {oid for oid, _ in tree8.distance_range(q, 0.5, metric)}
        assert got == brute_force_distance_range(uniform8, q, 0.5, metric)

    def test_user_metric(self, uniform8, tree8):
        canberra_like = UserMetric(
            lambda a, b: float(np.abs(a - b).sum() + 0.5 * np.abs(a - b).max())
        )
        q = uniform8[3].astype(np.float64)
        got = {oid for oid, _ in tree8.distance_range(q, 1.0, canberra_like)}
        assert got == brute_force_distance_range(uniform8, q, 1.0, canberra_like)

    def test_distances_reported_correctly(self, uniform8, tree8):
        q = uniform8[10].astype(np.float64)
        for oid, dist in tree8.distance_range(q, 0.5, L2):
            assert dist == pytest.approx(
                float(np.linalg.norm(uniform8[oid].astype(np.float64) - q)), abs=1e-6
            )

    def test_negative_radius_rejected(self, tree8):
        with pytest.raises(ValueError):
            tree8.distance_range(np.zeros(8), -1.0)


class TestKNN:
    @pytest.mark.parametrize("metric", [L1, L2, LINF], ids=["L1", "L2", "Linf"])
    def test_knn_matches_bruteforce(self, uniform8, tree8, metric, rng):
        for _ in range(6):
            q = rng.random(8)
            got = tree8.knn(q, 10, metric)
            expected = brute_force_knn_dists(uniform8, q, 10, metric)
            assert len(got) == 10
            assert np.allclose([d for _, d in got], expected, atol=1e-6)

    def test_knn_k_larger_than_tree(self):
        tree = HybridTree(2)
        for i in range(5):
            tree.insert(np.array([i / 10, i / 10]), i)
        assert len(tree.knn(np.zeros(2), 50)) == 5

    def test_knn_sorted_by_distance(self, tree8):
        result = tree8.knn(np.full(8, 0.5), 20)
        dists = [d for _, d in result]
        assert dists == sorted(dists)

    def test_knn_k1_is_nearest(self, uniform8, tree8):
        q = uniform8[100].astype(np.float64)
        (oid, dist), *_ = tree8.knn(q, 1)
        assert dist == pytest.approx(0.0, abs=1e-7)

    def test_invalid_k(self, tree8):
        with pytest.raises(ValueError):
            tree8.knn(np.zeros(8), 0)

    def test_approximate_knn_guarantee(self, uniform8, tree8, rng):
        for eps in (0.5, 1.0):
            q = rng.random(8)
            exact = tree8.knn(q, 10, L2)
            approx = tree8.knn(q, 10, L2, approximation_factor=eps)
            assert len(approx) == 10
            assert approx[-1][1] <= exact[-1][1] * (1.0 + eps) + 1e-9

    def test_approximate_rejects_negative(self, tree8):
        with pytest.raises(ValueError):
            tree8.knn(np.zeros(8), 1, approximation_factor=-0.5)

    def test_kth_boundary_ties_deterministic(self, rng):
        """Regression: with duplicate points straddling the kth boundary the
        result set depended on traversal order; ties now break by oid, so any
        two trees over the same multiset agree exactly."""
        base = rng.random((40, 4))
        data = np.repeat(base, 6, axis=0).astype(np.float32)  # 6 copies each
        dynamic = build_dynamic(data)
        bulk = HybridTree.bulk_load(data)
        for q in base[:10]:
            k = 4  # < 6 copies: the kth boundary cuts through a tie group
            got_dyn = dynamic.knn(q.astype(np.float64), k)
            got_bulk = bulk.knn(q.astype(np.float64), k)
            assert got_dyn == got_bulk
            assert got_dyn == sorted(got_dyn, key=lambda t: (t[1], t[0]))
            # The tie group at distance zero is the lowest-oid copies.
            zero = [oid for oid, d in got_dyn if d == 0.0]
            assert zero == sorted(zero)


class TestStructuralInvariants:
    def test_validate_after_dynamic_build(self, tree8):
        tree8.validate()

    def test_stats_sane(self, tree8):
        stats = compute_stats(tree8)
        assert stats.count == len(tree8)
        assert stats.num_data_nodes > 1
        assert stats.min_data_utilization >= 0.3
        assert stats.avg_index_fanout >= 2
        # Data-node splits are clean (Section 3.6): data-level regions may
        # overlap only under an overlapping index split above them, and the
        # total stays a vanishing fraction of the unit volume.
        assert stats.data_level_overlap_volume < 1e-2

    def test_fanout_independent_of_dims(self):
        assert HybridTree(8).index_capacity == HybridTree(64).index_capacity

    def test_io_counts_node_visits(self, tree8):
        tree8.io.reset()
        tree8.range_search(Rect([0.45] * 8, [0.55] * 8))
        assert 0 < tree8.io.random_reads <= tree8.pages()

    def test_high_dim_clustered_build(self):
        from repro.datasets import clustered_dataset

        data = clustered_dataset(2500, 32, clusters=8, seed=3)
        tree = build_dynamic(data)
        tree.validate()
        q = Rect.from_points(data[:40])
        assert set(tree.range_search(q)) == brute_force_range(data, q)


class TestDeletion:
    def test_delete_then_absent(self, uniform8):
        tree = build_dynamic(uniform8[:500])
        assert tree.delete(uniform8[5], 5)
        assert tree.point_search(uniform8[5]) == [] or 5 not in tree.point_search(
            uniform8[5]
        )
        assert len(tree) == 499
        tree.validate()

    def test_delete_missing_returns_false(self, uniform8):
        tree = build_dynamic(uniform8[:100])
        assert not tree.delete(uniform8[5], 999)
        assert not tree.delete(np.full(8, 0.123), 5)

    def test_delete_everything(self, uniform8):
        data = uniform8[:400]
        tree = build_dynamic(data)
        for oid, v in enumerate(data):
            assert tree.delete(v, oid), oid
        assert len(tree) == 0
        assert tree.range_search(Rect.unit(8)) == []

    def test_massive_deletion_preserves_correctness(self, uniform8, rng):
        data = uniform8[:1200]
        tree = build_dynamic(data)
        doomed = rng.choice(1200, size=800, replace=False)
        for oid in doomed:
            assert tree.delete(data[oid], int(oid))
        tree.validate()
        alive = sorted(set(range(1200)) - set(int(i) for i in doomed))
        assert sorted(tree.range_search(Rect.unit(8))) == alive
        # Queries still exact after heavy restructuring.
        q = Rect([0.2] * 8, [0.7] * 8)
        expected = {i for i in brute_force_range(data, q) if i in set(alive)}
        assert set(tree.range_search(q)) == expected

    def test_interleaved_insert_delete_query(self, rng):
        dims = 4
        tree = HybridTree(dims)
        reference: dict[int, np.ndarray] = {}
        next_oid = 0
        for step in range(1500):
            action = rng.random()
            if action < 0.6 or not reference:
                v = rng.random(dims).astype(np.float32)
                tree.insert(v, next_oid)
                reference[next_oid] = v
                next_oid += 1
            elif action < 0.85:
                oid = int(rng.choice(list(reference)))
                assert tree.delete(reference[oid], oid)
                del reference[oid]
            else:
                q = random_boxes(rng, dims, 1)[0]
                expected = {
                    oid
                    for oid, v in reference.items()
                    if q.contains_point(v.astype(np.float64))
                }
                assert set(tree.range_search(q)) == expected
        tree.validate()
        assert len(tree) == len(reference)


class TestPersistence:
    def test_save_open_round_trip(self, uniform8, tree8, tmp_path, rng):
        path = str(tmp_path / "tree.pages")
        tree8.save(path)
        reopened = HybridTree.open(path)
        assert len(reopened) == len(tree8)
        assert reopened.height == tree8.height
        for query in random_boxes(rng, 8, 10):
            assert set(reopened.range_search(query)) == set(tree8.range_search(query))

    def test_cold_open_faults_pages_lazily(self, uniform8, tree8, tmp_path):
        path = str(tmp_path / "tree.pages")
        tree8.save(path)
        reopened = HybridTree.open(path)
        assert reopened.nm.cached_nodes == 0
        touched_by_query = len(reopened.range_search(Rect([0.4] * 8, [0.6] * 8)))
        del touched_by_query
        # Only the pages the query visited were faulted in, and they were
        # read through the file store.
        assert 0 < reopened.nm.cached_nodes <= tree8.pages()
        assert reopened.io.random_reads == reopened.nm.cached_nodes

    def test_reopened_tree_supports_updates(self, uniform8, tree8, tmp_path):
        path = str(tmp_path / "tree.pages")
        tree8.save(path)
        reopened = HybridTree.open(path)
        reopened.insert(np.full(8, 0.5), 999_999)
        assert 999_999 in reopened.point_search(np.full(8, 0.5))

    def test_knn_after_reopen(self, uniform8, tree8, tmp_path):
        path = str(tmp_path / "tree.pages")
        tree8.save(path)
        reopened = HybridTree.open(path)
        q = uniform8[7].astype(np.float64)
        assert [o for o, _ in reopened.knn(q, 5)] == [o for o, _ in tree8.knn(q, 5)]

    def test_save_over_own_path(self, uniform8, tree8, tmp_path, rng):
        """Regression: saving a lazily-faulting reopened tree over its own
        path used to delete the page file it was still reading from."""
        path = str(tmp_path / "tree.pages")
        tree8.save(path)
        reopened = HybridTree.open(path)
        # Fault only a few pages in, so most still live solely in the file.
        reopened.range_search(Rect([0.48] * 8, [0.52] * 8))
        assert reopened.nm.cached_nodes < tree8.pages()
        reopened.save(path)  # must fault the rest in from the old file
        again = HybridTree.open(path)
        again.validate()
        assert len(again) == len(tree8)
        for query in random_boxes(rng, 8, 8):
            assert again.range_search(query) == tree8.range_search(query)

    def test_save_interrupted_keeps_previous(self, uniform8, tree8, tmp_path, monkeypatch):
        """A crash before publication leaves the previous save readable."""
        path = str(tmp_path / "tree.pages")
        tree8.save(path)

        import repro.core.hybridtree as ht

        def boom(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(ht.os, "replace", boom)
        with pytest.raises(RuntimeError):
            tree8.save(path)
        monkeypatch.undo()
        reopened = HybridTree.open(path)
        reopened.validate()
        assert len(reopened) == len(tree8)

    def test_delete_underflow_then_roundtrip_bounded(self, uniform8, tmp_path, rng):
        """Heavy deletion (driving node underflow/merges), then a save/open
        round trip under a small buffer pool: structure and answers survive."""
        tree = build_dynamic(uniform8[:1500])
        deleted = set(range(0, 1200, 2))
        for oid in deleted:
            assert tree.delete(uniform8[oid], oid)
        tree.validate()
        path = str(tmp_path / "tree.pages")
        tree.save(path)
        small = HybridTree.open(path, buffer_pages=4)
        small.validate()
        assert len(small) == len(tree) == 1500 - len(deleted)
        for query in random_boxes(rng, 8, 8):
            assert sorted(small.range_search(query)) == sorted(tree.range_search(query))
        remaining = [o for o, _ in small.knn(uniform8[1].astype(np.float64), 20)]
        assert not deleted.intersection(remaining)
        # And the bounded tree can itself be saved over its own path.
        small.save(path)
        again = HybridTree.open(path)
        again.validate()
        assert len(again) == len(tree)


class TestELSBehaviour:
    def test_els_reduces_io(self, rng):
        from repro.datasets import clustered_dataset

        data = clustered_dataset(4000, 16, clusters=12, seed=5)
        with_els = build_dynamic(data, els_bits=4)
        without = build_dynamic(data, els_bits=0)
        queries = random_boxes(rng, 16, 15, side_lo=0.05, side_hi=0.2)
        with_els.io.reset()
        without.io.reset()
        for q in queries:
            assert set(with_els.range_search(q)) == set(without.range_search(q))
        assert with_els.io.random_reads <= without.io.random_reads

    def test_rebuild_els_tightens_after_deletes(self, uniform8):
        tree = build_dynamic(uniform8[:600])
        for oid in range(300):
            tree.delete(uniform8[oid], oid)
        before = tree.els.get(tree.root_id)
        tree.rebuild_els()
        after = tree.els.get(tree.root_id)
        assert before.contains_rect(after)
        tree.validate()


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 5), st.integers(20, 250))
def test_property_randomized_tree_equals_bruteforce(seed, dims, n):
    """End-to-end: random data, random box — tree == brute force."""
    rng = np.random.default_rng(seed)
    data = rng.random((n, dims)).astype(np.float32)
    tree = HybridTree(dims, els_bits=int(rng.integers(0, 8)))
    for oid, v in enumerate(data):
        tree.insert(v, oid)
    tree.validate()
    lo = rng.random(dims) * 0.7
    query = Rect(lo, lo + rng.random(dims) * 0.3)
    assert set(tree.range_search(query)) == brute_force_range(data, query)
    q = rng.random(dims)
    expected = brute_force_knn_dists(data, q, min(5, n), L1)
    got = tree.knn(q, min(5, n), L1)
    assert np.allclose([d for _, d in got], expected, atol=1e-5)
