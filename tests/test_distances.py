"""Tests for the metric implementations and their box lower bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import (
    L1,
    L2,
    LINF,
    LpMetric,
    Metric,
    QuadraticFormMetric,
    UserMetric,
    WeightedEuclidean,
)

POINT = st.lists(st.floats(-10, 10, width=32), min_size=4, max_size=4).map(np.array)


class TestLpMetric:
    def test_l1(self):
        assert L1.distance(np.array([0, 0]), np.array([1, 2])) == 3.0

    def test_l2(self):
        assert L2.distance(np.array([0, 0]), np.array([3, 4])) == 5.0

    def test_linf(self):
        assert LINF.distance(np.array([0, 0]), np.array([3, 4])) == 4.0

    def test_general_p(self):
        m = LpMetric(3)
        assert m.distance(np.array([0.0]), np.array([2.0])) == pytest.approx(2.0)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            LpMetric(0.5)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(0)
        pts = rng.random((20, 5))
        q = rng.random(5)
        for metric in (L1, L2, LINF, LpMetric(3)):
            batch = metric.distance_batch(pts, q)
            scalar = [metric.distance(p, q) for p in pts]
            assert np.allclose(batch, scalar)

    def test_mindist_rect_inside_is_zero(self):
        assert L2.mindist_rect(np.array([0.5, 0.5]), np.zeros(2), np.ones(2)) == 0.0

    def test_mindist_rect_outside(self):
        d = L2.mindist_rect(np.array([2.0, 0.5]), np.zeros(2), np.ones(2))
        assert d == pytest.approx(1.0)

    def test_equality_and_hash(self):
        assert LpMetric(2) == L2
        assert hash(LpMetric(1)) == hash(L1)
        assert LpMetric(1) != LpMetric(2)

    def test_protocol_conformance(self):
        assert isinstance(L2, Metric)


class TestWeightedEuclidean:
    def test_reduces_to_l2_with_unit_weights(self):
        m = WeightedEuclidean(np.ones(3))
        a, b = np.array([0.0, 0, 0]), np.array([1.0, 2, 2])
        assert m.distance(a, b) == pytest.approx(L2.distance(a, b))

    def test_weights_scale_dimensions(self):
        m = WeightedEuclidean(np.array([4.0, 0.0]))
        assert m.distance(np.array([0.0, 0]), np.array([1.0, 5])) == pytest.approx(2.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WeightedEuclidean(np.array([1.0, -1.0]))

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        m = WeightedEuclidean(rng.random(4))
        pts, q = rng.random((10, 4)), rng.random(4)
        assert np.allclose(m.distance_batch(pts, q), [m.distance(p, q) for p in pts])


class TestQuadraticForm:
    def _matrix(self):
        return np.array([[2.0, 0.5], [0.5, 1.0]])

    def test_distance(self):
        m = QuadraticFormMetric(self._matrix())
        d = m.distance(np.array([0.0, 0]), np.array([1.0, 1]))
        assert d == pytest.approx(np.sqrt(4.0))

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            QuadraticFormMetric(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_rejects_indefinite(self):
        with pytest.raises(ValueError):
            QuadraticFormMetric(np.array([[1.0, 0.0], [0.0, -1.0]]))

    def test_mindist_is_lower_bound(self):
        rng = np.random.default_rng(2)
        m = QuadraticFormMetric(self._matrix())
        low, high = np.array([0.2, 0.2]), np.array([0.6, 0.9])
        q = np.array([1.5, -0.5])
        bound = m.mindist_rect(q, low, high)
        samples = rng.uniform(low, high, size=(200, 2))
        assert all(m.distance(q, s) >= bound - 1e-9 for s in samples)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        m = QuadraticFormMetric(self._matrix())
        pts, q = rng.random((10, 2)), rng.random(2)
        assert np.allclose(m.distance_batch(pts, q), [m.distance(p, q) for p in pts])


class TestUserMetric:
    def test_wraps_callable(self):
        m = UserMetric(lambda a, b: float(np.abs(a - b).sum()))
        assert m.distance(np.array([0.0]), np.array([2.0])) == 2.0

    def test_default_rect_bound_clamps(self):
        m = UserMetric(lambda a, b: float(np.abs(a - b).sum()))
        assert m.mindist_rect(np.array([2.0]), np.array([0.0]), np.array([1.0])) == 1.0

    def test_custom_rect_bound(self):
        m = UserMetric(lambda a, b: 42.0, rect_lower_bound=lambda q, lo, hi: 0.0)
        assert m.mindist_rect(np.array([2.0]), np.array([0.0]), np.array([1.0])) == 0.0

    def test_batch(self):
        m = UserMetric(lambda a, b: float(np.max(np.abs(a - b))))
        pts = np.array([[0.0], [3.0]])
        assert m.distance_batch(pts, np.array([1.0])).tolist() == [1.0, 2.0]


@settings(max_examples=100, deadline=None)
@given(POINT, POINT)
def test_property_symmetry(a, b):
    for metric in (L1, L2, LINF, WeightedEuclidean(np.array([1.0, 2.0, 0.5, 3.0]))):
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a), abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(POINT, POINT, POINT)
def test_property_triangle_inequality(a, b, c):
    for metric in (L1, L2, LINF):
        ab = metric.distance(a, b)
        bc = metric.distance(b, c)
        ac = metric.distance(a, c)
        assert ac <= ab + bc + 1e-6


@settings(max_examples=100, deadline=None)
@given(POINT, POINT, POINT)
def test_property_mindist_lower_bounds_box_members(q, c1, c2):
    """For any box and any member point, mindist_rect(q, box) <= d(q, p)."""
    low, high = np.minimum(c1, c2), np.maximum(c1, c2)
    member = (low + high) / 2.0
    for metric in (L1, L2, LINF, WeightedEuclidean(np.array([1.0, 0.5, 2.0, 1.5]))):
        assert metric.mindist_rect(q, low, high) <= metric.distance(q, member) + 1e-6
