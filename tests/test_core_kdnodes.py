"""Tests for the dual-position intranode kd-tree."""

import numpy as np
import pytest

from repro.core import kdnodes
from repro.core.kdnodes import KDInternal, KDLeaf
from repro.geometry.rect import Rect


def sample_tree():
    """The structure of the paper's Figure 1 (ids stand in for L1..L7)."""
    return KDInternal(
        0, 3.0, 3.0,
        KDInternal(
            1, 3.0, 2.0,
            KDInternal(0, 2.0, 2.0, KDLeaf(1), KDLeaf(2)),
            KDLeaf(3),
        ),
        KDInternal(
            0, 5.0, 4.0,
            KDInternal(1, 4.0, 4.0, KDLeaf(4), KDLeaf(7)),
            KDInternal(1, 1.0, 1.0, KDLeaf(5), KDLeaf(6)),
        ),
    )


SPACE = Rect([0.0, 0.0], [6.0, 6.0])


class TestBasics:
    def test_counts(self):
        kd = sample_tree()
        assert kdnodes.count_leaves(kd) == 7
        assert kdnodes.count_internals(kd) == 6
        assert kdnodes.depth(kd) == 3

    def test_child_ids_in_order(self):
        assert kdnodes.child_ids(sample_tree()) == [1, 2, 3, 4, 7, 5, 6]

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            KDInternal(0, 1.0, 2.0, KDLeaf(0), KDLeaf(1))

    def test_overlap_property(self):
        node = KDInternal(0, 3.0, 2.0, KDLeaf(0), KDLeaf(1))
        assert node.overlap == 1.0

    def test_split_dimensions(self):
        assert kdnodes.split_dimensions(sample_tree()) == {0, 1}


class TestMapping:
    """The Section 3.1 mapping, checked against the paper's Figure 1."""

    def test_figure1_style_regions(self):
        """Regions derived by the mapping, hand-computed for sample_tree():
        left region = parent ∩ {x_dim <= lsp}, right = parent ∩ {x_dim >= rsp}.
        """
        kd = sample_tree()
        regions = {
            leaf.child_id: region
            for leaf, region in kdnodes.leaves_with_regions(kd, SPACE)
        }
        assert regions[1] == Rect([0.0, 0.0], [2.0, 3.0])
        assert regions[2] == Rect([2.0, 0.0], [3.0, 3.0])
        # The overlapping sibling (rsp = 2 < lsp = 3) starts at y >= 2.
        assert regions[3] == Rect([0.0, 2.0], [3.0, 6.0])
        assert regions[4] == Rect([3.0, 0.0], [5.0, 4.0])
        assert regions[7] == Rect([3.0, 4.0], [5.0, 6.0])
        assert regions[5] == Rect([4.0, 0.0], [6.0, 1.0])
        assert regions[6] == Rect([4.0, 1.0], [6.0, 6.0])

    def test_overlap_between_siblings(self):
        kd = sample_tree()
        regions = {
            leaf.child_id: r for leaf, r in kdnodes.leaves_with_regions(kd, SPACE)
        }
        # Paper: children of an internal node with lsp > rsp have
        # overlapping BRs — here the subtree under lsp=3/rsp=2 (leaves 1, 2)
        # against its sibling leaf 3.
        assert regions[3].overlap_volume(regions[1]) > 0
        assert regions[3].overlap_volume(regions[2]) > 0
        # Clean splits stay disjoint up to shared boundaries.
        assert regions[1].overlap_volume(regions[2]) == 0.0

    def test_region_of_child(self):
        kd = sample_tree()
        assert kdnodes.region_of_child(kd, SPACE, 3) == Rect([0.0, 2.0], [3.0, 6.0])
        with pytest.raises(KeyError):
            kdnodes.region_of_child(kd, SPACE, 99)

    def test_regions_cover_space_for_clean_tree(self):
        kd = KDInternal(0, 0.5, 0.5, KDLeaf(0), KDLeaf(1))
        regions = [r for _, r in kdnodes.leaves_with_regions(kd, Rect.unit(1))]
        assert regions[0].high[0] == 0.5 and regions[1].low[0] == 0.5


class TestSurgery:
    def test_replace_leaf(self):
        kd = sample_tree()
        new = KDInternal(1, 2.5, 2.5, KDLeaf(30), KDLeaf(31))
        kd = kdnodes.replace_leaf(kd, 3, new)
        assert kdnodes.child_ids(kd) == [1, 2, 30, 31, 4, 7, 5, 6]

    def test_remove_leaf_promotes_sibling(self):
        kd = sample_tree()
        kd = kdnodes.remove_leaf(kd, 3)
        assert kdnodes.child_ids(kd) == [1, 2, 4, 7, 5, 6]
        # The internal node that held leaf 3 is gone.
        assert kdnodes.count_internals(kd) == 5

    def test_remove_last_leaf_returns_none(self):
        assert kdnodes.remove_leaf(KDLeaf(5), 5) is None

    def test_prune_to_children_preserves_pairwise_separation(self):
        kd = sample_tree()
        before = {
            leaf.child_id: r for leaf, r in kdnodes.leaves_with_regions(kd, SPACE)
        }
        keep = {4, 5, 6, 7}
        pruned = kdnodes.prune_to_children(kd, keep)
        after = {
            leaf.child_id: r for leaf, r in kdnodes.leaves_with_regions(pruned, SPACE)
        }
        assert set(after) == keep
        # Regions may only widen (dropped constraints), never shrink ...
        for cid in keep:
            assert after[cid].contains_rect(before[cid])
        # ... and kept siblings keep their LCA split: disjoint pairs stay
        # disjoint.
        assert not after[5].intersects(after[4]) or before[5].intersects(before[4])

    def test_prune_to_nothing(self):
        assert kdnodes.prune_to_children(sample_tree(), set()) is None

    def test_prune_single_child(self):
        pruned = kdnodes.prune_to_children(sample_tree(), {4})
        assert isinstance(pruned, KDLeaf) and pruned.child_id == 4


class TestValidation:
    def test_valid_tree_passes(self):
        kdnodes.validate_kdtree(sample_tree(), SPACE)

    def test_detects_gap_made_by_mutation(self):
        kd = sample_tree()
        kd.lsp = 2.0  # now lsp < rsp would be needed... force inconsistency
        kd.rsp = 2.5
        with pytest.raises(AssertionError):
            kdnodes.validate_kdtree(kd, SPACE)

    def test_detects_bad_dim(self):
        kd = KDInternal(5, 0.5, 0.5, KDLeaf(0), KDLeaf(1))
        with pytest.raises(AssertionError):
            kdnodes.validate_kdtree(kd, Rect.unit(2))


def test_randomized_mapping_matches_bruteforce(rng):
    """Mapping-derived regions equal explicit halfspace intersection."""
    for _ in range(20):
        dims = int(rng.integers(2, 5))
        space = Rect.unit(dims)

        def build(depth, low, high):
            if depth == 0 or rng.random() < 0.3:
                return KDLeaf(int(rng.integers(0, 10**6))), []
            dim = int(rng.integers(0, dims))
            span = high[dim] - low[dim]
            rsp = low[dim] + rng.uniform(0.2, 0.6) * span
            lsp = min(high[dim], rsp + rng.uniform(0.0, 0.3) * span)
            left, lcons = build(depth - 1, low, None_high(low, high, dim, lsp))
            right, rcons = build(depth - 1, None_low(low, high, dim, rsp), high)
            node = KDInternal(dim, lsp, rsp, left, right)
            return node, []

        def None_high(low, high, dim, v):
            h = high.copy()
            h[dim] = v
            return h

        def None_low(low, high, dim, v):
            lo = low.copy()
            lo[dim] = v
            return lo

        kd, _ = build(3, np.zeros(dims), np.ones(dims))
        kdnodes.validate_kdtree(kd, space)
        regions = [r for _, r in kdnodes.leaves_with_regions(kd, space)]
        for r in regions:
            assert space.contains_rect(r)
