"""Shared fixtures and brute-force reference helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.rect import Rect


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


def brute_force_range(data: np.ndarray, query: Rect) -> set[int]:
    """Reference result of a box range query (oids are row indices)."""
    mask = np.all((data >= query.low) & (data <= query.high), axis=1)
    return set(np.flatnonzero(mask).tolist())


def brute_force_distance_range(data, query, radius, metric) -> set[int]:
    dists = metric.distance_batch(data.astype(np.float64), np.asarray(query, dtype=np.float64))
    return set(np.flatnonzero(dists <= radius).tolist())


def brute_force_knn_dists(data, query, k, metric) -> np.ndarray:
    """The k smallest distances (the unambiguous part of a k-NN answer)."""
    dists = metric.distance_batch(data.astype(np.float64), np.asarray(query, dtype=np.float64))
    return np.sort(dists)[:k]


def random_boxes(rng, dims: int, count: int, side_lo=0.05, side_hi=0.5) -> list[Rect]:
    """Random query boxes inside the unit cube."""
    boxes = []
    for _ in range(count):
        side = rng.uniform(side_lo, side_hi, size=dims)
        low = rng.uniform(0.0, 1.0, size=dims) * (1.0 - side)
        boxes.append(Rect(low, low + side))
    return boxes
