"""Crash matrix: kill the process at every write boundary, reopen, verify.

The invariant under test is the save protocol's whole promise: a crash at
*any* point during ``save()`` — any page write, torn or clean, the fsync,
or the final rename — leaves the path readable as either the complete
previous tree or the complete new one, never a hybrid; and a crash during
in-place mutation of a reopened tree never touches the published file at
all (copy-on-write overlay).
"""

import os

import numpy as np
import pytest

import repro.core.hybridtree as hybridtree_mod
from repro.core import HybridTree
from repro.datasets import uniform_dataset
from repro.geometry.rect import Rect
from repro.storage.errors import CrashError
from repro.storage.faults import FaultInjectingPageStore
from repro.storage.recovery import verify

DIMS = 5
QUERY = Rect([0.15] * DIMS, [0.75] * DIMS)

_real_save_store = hybridtree_mod._save_store


def _state(path):
    tree = HybridTree.open(path)
    return len(tree), sorted(tree.range_search(QUERY)), tree.knn(
        np.full(DIMS, 0.4), 5
    )


def _crashing_factory(k, torn):
    def factory(path, page_size):
        store = FaultInjectingPageStore(
            _real_save_store(path, page_size), seed=1000 + k
        )
        store.crash_after_writes(k, torn=torn)
        return store

    return factory


@pytest.fixture()
def saved(tmp_path):
    data = uniform_dataset(900, DIMS, seed=5)
    tree = HybridTree.bulk_load(data)
    path = str(tmp_path / "t.pages")
    tree.save(path)
    return path, data


@pytest.mark.parametrize("torn", [False, True], ids=["clean-cut", "torn-write"])
def test_save_crash_at_every_write_boundary(saved, monkeypatch, torn):
    path, data = saved
    old_state = _state(path)

    grown = HybridTree.open(path)
    for oid in range(300):
        grown.insert(np.asarray(data[oid]) * 0.5 + 0.25, 2000 + oid)
    completed = False
    for k in range(500):
        monkeypatch.setattr(
            hybridtree_mod, "_save_store", _crashing_factory(k, torn)
        )
        try:
            grown.save(path)
        except CrashError:
            # Crashed mid-save: the published file must be byte-for-byte
            # the old tree — readable, fsck-clean, identical answers.
            report = verify(path)
            assert report.ok, (k, report.errors)
            assert _state(path) == old_state, k
        else:
            completed = True
            break
    assert completed, "crash matrix never reached a fault-free save"
    assert k > 5, "matrix should cover many write boundaries"
    report = verify(path)
    assert report.ok, report.errors
    new_state = _state(path)
    assert new_state[0] == old_state[0] + 300


def test_save_crash_at_the_rename_boundary(saved, monkeypatch):
    path, data = saved
    old_state = _state(path)
    grown = HybridTree.open(path)
    for oid in range(100):
        grown.insert(np.asarray(data[oid]) * 0.9, 3000 + oid)

    real_replace = os.replace

    def dying_replace(src, dst):
        raise CrashError("crash before rename")

    monkeypatch.setattr(hybridtree_mod.os, "replace", dying_replace)
    with pytest.raises(CrashError):
        grown.save(path)
    monkeypatch.setattr(hybridtree_mod.os, "replace", real_replace)
    # Fully written tmp image, never published: old tree still the truth.
    assert verify(path).ok
    assert _state(path) == old_state
    # The interrupted save can simply be retried.
    grown.save(path)
    assert verify(path).ok
    assert _state(path)[0] == old_state[0] + 100


@pytest.mark.parametrize("op", ["insert", "delete"])
def test_mutation_crash_never_touches_the_published_file(saved, op):
    path, data = saved
    old_state = _state(path)
    with open(path, "rb") as f:
        old_bytes = f.read()

    for k in range(0, 40, 7):
        tree = HybridTree.open(path, buffer_pages=4)  # evictions write back
        injector = FaultInjectingPageStore(tree.nm.store, seed=k)
        tree.nm.store = injector
        injector.crash_after_writes(k, torn=True)
        try:
            for oid in range(200):
                if op == "insert":
                    tree.insert(np.asarray(data[oid]) * 0.7 + 0.1, 5000 + oid)
                else:
                    tree.delete(data[oid], oid)
        except CrashError:
            pass
        with open(path, "rb") as f:
            assert f.read() == old_bytes, (op, k)
    assert _state(path) == old_state
    assert verify(path).ok


def test_interleaved_lifecycle_with_crashes(tmp_path, monkeypatch):
    """Generations of save / crash / reopen / mutate keep converging."""
    data = uniform_dataset(600, DIMS, seed=17)
    path = str(tmp_path / "life.pages")
    tree = HybridTree.bulk_load(data[:300])
    tree.save(path)

    for generation, lo in enumerate(range(300, 600, 100)):
        tree = HybridTree.open(path)
        for oid in range(lo, lo + 100):
            tree.insert(data[oid], oid)
        # A crashing save attempt first...
        monkeypatch.setattr(
            hybridtree_mod, "_save_store", _crashing_factory(3 + generation, True)
        )
        with pytest.raises(CrashError):
            tree.save(path)
        monkeypatch.setattr(hybridtree_mod, "_save_store", _real_save_store)
        assert verify(path).ok
        assert len(HybridTree.open(path)) == lo  # old generation intact
        # ...then the retry lands the new generation.
        tree.save(path)
        assert verify(path).ok
        assert len(HybridTree.open(path)) == lo + 100

    final = HybridTree.open(path)
    final.validate()
    assert sorted(final.range_search(Rect.unit(DIMS))) == list(range(600))
