"""Tests for the extension competitors: X-tree, M-tree, VA-file, rr policy."""

import numpy as np
import pytest

from repro.baselines import MTree, RTree, VAFile, XTree
from repro.baselines.mtree import mtree_index_capacity, mtree_leaf_capacity
from repro.core import HybridTree
from repro.core.splits import POLICY_RR, choose_data_split, reset_round_robin
from repro.datasets import clustered_dataset, colhist_dataset, uniform_dataset
from repro.distances import L1, L2, LINF
from repro.geometry.rect import Rect
from tests.conftest import (
    brute_force_distance_range,
    brute_force_knn_dists,
    brute_force_range,
    random_boxes,
)


@pytest.fixture(scope="module")
def data():
    return clustered_dataset(2200, 6, clusters=6, seed=55)


class TestVAFile:
    @pytest.fixture(scope="class", params=[2, 6, 10], ids=lambda b: f"bits={b}")
    def va(self, request, data):
        return VAFile.from_points(data, bits=request.param)

    def test_range_exact(self, va, data, rng):
        for query in random_boxes(rng, 6, 8):
            assert set(va.range_search(query)) == brute_force_range(data, query)

    def test_distance_range_exact(self, va, data, rng):
        for metric in (L1, L2, LINF):
            q = data[17].astype(np.float64)
            got = {o for o, _ in va.distance_range(q, 0.4, metric)}
            assert got == brute_force_distance_range(data, q, 0.4, metric)

    def test_knn_exact(self, va, data, rng):
        q = rng.random(6)
        got = va.knn(q, 7, L2)
        assert np.allclose(
            [d for _, d in got], brute_force_knn_dists(data, q, 7, L2), atol=1e-6
        )

    def test_io_model(self, data):
        va = VAFile.from_points(data, bits=6)
        va.io.reset()
        va.knn(data[0].astype(np.float64), 5, L2)
        # Every query scans the full approximation file sequentially ...
        assert va.io.sequential_reads == va.approximation_pages()
        # ... and verifies only a few candidates with random reads.
        assert 0 < va.io.random_reads < va.heap_pages()

    def test_approximation_smaller_than_heap(self, data):
        va = VAFile.from_points(data, bits=6)
        assert va.approximation_pages() < va.heap_pages()

    def test_more_bits_fewer_candidates(self, data, rng):
        q = rng.random(6)
        reads = []
        for bits in (2, 8):
            va = VAFile.from_points(data, bits=bits)
            va.io.reset()
            va.knn(q, 5, L2)
            reads.append(va.io.random_reads)
        assert reads[1] <= reads[0]

    def test_out_of_bounds_insert_requantizes(self):
        va = VAFile(2, bits=4)
        va.insert(np.array([0.5, 0.5]), 0)
        va.insert(np.array([2.0, 2.0]), 1)  # outside unit bounds
        assert set(va.point_search(np.array([0.5, 0.5]))) == {0}
        assert set(va.point_search(np.array([2.0, 2.0]))) == {1}

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            VAFile(4, bits=0)

    def test_empty(self):
        va = VAFile(3)
        assert va.range_search(Rect.unit(3)) == []
        assert va.knn(np.zeros(3), 2) == []
        assert va.pages() == 0


class TestMTree:
    @pytest.fixture(scope="class")
    def mt(self, data):
        return MTree.from_points(data, metric=L2)

    def test_distance_range_exact(self, mt, data, rng):
        for _ in range(6):
            q = data[int(rng.integers(len(data)))].astype(np.float64)
            r = float(rng.uniform(0.1, 0.5))
            got = {o for o, _ in mt.distance_range(q, r)}
            assert got == brute_force_distance_range(data, q, r, L2)

    def test_knn_exact(self, mt, data, rng):
        for _ in range(4):
            q = rng.random(6)
            got = mt.knn(q, 9)
            assert np.allclose(
                [d for _, d in got], brute_force_knn_dists(data, q, 9, L2), atol=1e-6
            )

    def test_l1_tree(self, data, rng):
        mt1 = MTree.from_points(data[:800], metric=L1)
        q = data[3].astype(np.float64)
        got = {o for o, _ in mt1.distance_range(q, 0.6)}
        assert got == brute_force_distance_range(data[:800], q, 0.6, L1)

    def test_rejects_window_queries(self, mt):
        with pytest.raises(TypeError):
            mt.range_search(Rect.unit(6))

    def test_rejects_foreign_metric(self, mt):
        with pytest.raises(ValueError):
            mt.knn(np.zeros(6), 3, metric=L1)
        with pytest.raises(ValueError):
            mt.distance_range(np.zeros(6), 0.5, metric=LINF)
        # The build metric itself is fine to pass explicitly.
        assert isinstance(mt.knn(np.zeros(6), 1, metric=L2), list)

    def test_covering_radii_cover_subtrees(self, mt):
        from repro.baselines.common import EntryLeaf
        from repro.baselines.mtree import MIndexNode

        def check(node_id, router, radius):
            node = mt.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                if router is not None and node.count:
                    dists = L2.distance_batch(node.points().astype(np.float64), router)
                    assert np.all(dists <= radius + 1e-6)
                return
            assert isinstance(node, MIndexNode)
            for entry in node.entries:
                if router is not None:
                    assert (
                        L2.distance(router, entry.router) + entry.radius
                        <= radius + 1e-6
                    )
                check(entry.child_id, entry.router, entry.radius)

        check(mt._root_id, None, None)

    def test_capacity_model(self):
        assert mtree_leaf_capacity(16) == (4096 - 32) // (16 * 4 + 8)
        assert mtree_index_capacity(64) == (4096 - 32) // (64 * 4 + 12)

    def test_height_grows(self):
        data = uniform_dataset(4000, 4, seed=60)
        mt = MTree.from_points(data)
        assert mt.height >= 2
        assert len(mt) == 4000


class TestXTree:
    def test_exactness(self, data, rng):
        xt = XTree.from_points(data)
        for query in random_boxes(rng, 6, 8):
            assert set(xt.range_search(query)) == brute_force_range(data, query)
        q = rng.random(6)
        assert np.allclose(
            [d for _, d in xt.knn(q, 6, L2)],
            brute_force_knn_dists(data, q, 6, L2),
            atol=1e-6,
        )

    def test_supernodes_form_at_high_dims(self):
        data = colhist_dataset(6000, 64, seed=61)
        xt = XTree.from_points(data)
        assert xt.supernode_count() > 0
        assert len(xt) == 6000

    def test_supernode_visits_charge_extra_pages(self):
        data = colhist_dataset(6000, 64, seed=61)
        xt = XTree.from_points(data)
        pages = [p for p in xt.nm.page_counts.values() if p > 1]
        assert pages and max(pages) <= xt.max_supernode_pages
        assert xt.pages() > xt.nm.store.allocated_pages

    def test_low_dims_behave_like_rtree(self, data, rng):
        xt = XTree.from_points(data)
        rt = RTree.from_points(data)
        assert xt.supernode_count() == 0
        q = random_boxes(rng, 6, 1)[0]
        assert set(xt.range_search(q)) == set(rt.range_search(q))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            XTree(4, max_overlap=1.5)
        with pytest.raises(ValueError):
            XTree(4, max_supernode_pages=0)

    def test_delete_works(self, data):
        xt = XTree.from_points(data[:600])
        for oid in range(200):
            assert xt.delete(data[oid], oid)
        assert len(xt) == 400


class TestRoundRobinPolicy:
    def test_policy_accepted(self):
        pts = np.random.default_rng(0).random((30, 4))
        reset_round_robin()
        split = choose_data_split(pts, 0.3, policy=POLICY_RR)
        assert 0 <= split.dim < 4

    def test_cycles_dimensions(self):
        pts = np.random.default_rng(1).random((30, 3))
        reset_round_robin()
        dims = [choose_data_split(pts, 0.3, policy=POLICY_RR).dim for _ in range(3)]
        assert sorted(dims) == [0, 1, 2]

    def test_tree_with_rr_policy_is_exact(self, rng):
        data = uniform_dataset(1500, 5, seed=62)
        tree = HybridTree(5, split_policy=POLICY_RR)
        for oid, v in enumerate(data):
            tree.insert(v, oid)
        tree.validate()
        q = random_boxes(rng, 5, 1)[0]
        assert set(tree.range_search(q)) == brute_force_range(data, q)

    def test_rr_splits_dead_dimensions_unlike_eda(self):
        """Lemma 1 contrast: round-robin wastes splits on the padded dims."""
        from repro.core import compute_stats
        from repro.datasets import pad_with_nondiscriminating_dims

        base = colhist_dataset(4000, 16, seed=63)
        data = pad_with_nondiscriminating_dims(base, 16, seed=64)
        eda = HybridTree(32)
        rr = HybridTree(32, split_policy=POLICY_RR)
        for oid, v in enumerate(data):
            eda.insert(v, oid)
            rr.insert(v, oid)
        eda_padded = {d for d in compute_stats(eda).split_dims_used if d >= 16}
        rr_padded = {d for d in compute_stats(rr).split_dims_used if d >= 16}
        assert not eda_padded        # Lemma 1 guarantee
        assert rr_padded             # the uninformed policy cannot give it
