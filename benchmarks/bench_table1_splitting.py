"""Table 1: splitting strategies of the index structures — measured.

The paper's Table 1 is a design-property table; this benchmark regenerates
it as *measurements* over real trees: split arity, fanout capacity (and its
(in)dependence on dimensionality), overlap, utilisation guarantee, and
posting redundancy.
"""

from conftest import scaled

from repro.eval.report import render_table
from repro.eval.tables import table1_splitting_strategies


def test_table1_splitting_strategies(run_once, report):
    rows = run_once(
        table1_splitting_strategies,
        dims_list=(16, 32, 64),
        count=scaled(16000),
    )
    report(render_table(rows, "Table 1 — splitting strategies (measured)"))

    by = {(r["index"], r["dims"]): r for r in rows}
    # Fanout capacity: kd-organised structures are dimension-independent,
    # the R-tree's shrinks with dimensionality.
    assert by[("hybrid", 16)]["fanout_cap"] == by[("hybrid", 64)]["fanout_cap"]
    assert by[("kdb", 16)]["fanout_cap"] == by[("kdb", 64)]["fanout_cap"]
    assert by[("rtree", 64)]["fanout_cap"] < by[("rtree", 16)]["fanout_cap"] / 2
    for dims in (16, 32, 64):
        # Utilisation: hybrid and hB guarantee it; the KDB-tree does not.
        assert by[("hybrid", dims)]["min_leaf_fill"] >= 0.3
        assert by[("hb", dims)]["min_leaf_fill"] >= 0.3
        # Overlap: kd-based structures are (nearly) overlap-free; the
        # hybrid tree allows only a small fraction of overlapping splits.
        assert by[("hybrid", dims)]["overlap_frac"] <= 0.2
        assert by[("hb", dims)]["redundancy"] >= 1.0
        assert by[("hybrid", dims)]["redundancy"] == 1.0
    # KDB cascading splits leave (nearly) empty pages at some
    # dimensionality — the missing utilisation guarantee.
    assert min(by[("kdb", d)]["min_leaf_fill"] for d in (16, 32, 64)) < 0.1
    # hB path posting shows up as redundancy once index splits occur.
    assert max(by[("hb", d)]["redundancy"] for d in (16, 32, 64)) > 1.0
