"""Lemma 1: implicit dimensionality reduction — measured.

Pad COLHIST vectors with non-discriminating dimensions (identical values for
every object).  Lemma 1 guarantees the hybrid tree never chooses them as
split dimensions, so query I/O should stay nearly flat as they are added.
"""

from conftest import scaled

from repro.eval.figures import lemma1_dimension_elimination
from repro.eval.report import render_table


def test_lemma1_dimension_elimination(run_once, report):
    rows = run_once(
        lemma1_dimension_elimination,
        base_dims=16,
        extra_dims_list=(0, 8, 16, 32, 48),
        count=scaled(8000),
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Lemma 1 — implicit dimensionality reduction"))

    # Shape: padded dimensions are never used for splitting.
    for row in rows:
        assert row["padded_dims_used"] == 0, row
    # Shape: I/O stays nearly flat as dead dimensions are added (the page
    # capacity shrinks with physical dims, so allow that much drift).
    base = float(rows[0]["io/query"])
    worst = max(float(r["io/query"]) for r in rows)
    assert worst <= max(4.0 * base, base + 30), (base, worst)
