"""Ablation (Section 3.2): max-extent vs max-variance split dimension.

The paper argues the EDA-optimal dimension (maximum BR extent) beats the
maximum-variance choice because expected disk accesses depend on region
geometry, not on how data distributes inside the region.
"""

from conftest import scaled

from repro.eval.figures import ablation_split_dimension
from repro.eval.report import render_table


def test_ablation_split_dimension(run_once, report):
    rows = run_once(
        ablation_split_dimension,
        dims=64,
        count=scaled(8000),
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Ablation — split dimension rule (64-d COLHIST)"))

    eda = next(r for r in rows if r["dimension_rule"] == "eda")
    var = next(r for r in rows if r["dimension_rule"] == "vam")
    assert float(eda["io/query"]) <= float(var["io/query"]) * 1.1, (eda, var)
