"""Shared configuration for the figure/table reproduction benchmarks.

Every benchmark runs its experiment exactly once (``benchmark.pedantic`` with
one round — the experiments are minutes-scale, not microbenchmarks), prints
the paper-shaped table, and *asserts the published shape* (who wins, how the
trend moves), which is the reproduction criterion; absolute numbers differ
from the 1999 testbed by design.

Scale knob: set ``REPRO_SCALE`` (float, default 1.0) to grow or shrink every
dataset/query count, e.g. ``REPRO_SCALE=3 pytest benchmarks/`` for a run
closer to the paper's sizes.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def host_metadata() -> dict:
    """Host facts stamped into every ``BENCH_*.json`` artifact.

    Wall-time comparisons only mean something relative to the box that
    produced them (the ROADMAP's "1-core CI runner" caveat) — so the box
    describes itself in the artifact instead of in tribal knowledge.
    """
    import datetime
    import platform

    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "repro_scale": float(os.environ.get("REPRO_SCALE", "1.0")),
    }


def scaled(value: int, minimum: int = 4) -> int:
    """Apply the global REPRO_SCALE multiplier to a size parameter."""
    scale = float(os.environ.get("REPRO_SCALE", "1.0"))
    return max(minimum, int(value * scale))


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner


@pytest.fixture()
def report(request, capsys):
    """Emit a result table to the live terminal AND benchmarks/results/."""

    def emit(text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{request.node.name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        with capsys.disabled():
            print()
            print(text)

    return emit


def series(rows: list[dict], method: str, value: str, key: str = "method") -> list[float]:
    """Extract one method's metric series from experiment rows."""
    return [float(row[value]) for row in rows if row[key] == method]
