"""Extension — the structure-agnostic traversal kernel across every index.

For each paged structure (hybrid tree + the seven ported baselines) the
benchmark measures, on the same clustered dataset and workload:

- **batch vs loop**: wall time of the kernel's shared-traversal ``*_many``
  call against the instrumented single-query loop (``measured_loop``), for
  box-range queries (distance-range on the M-tree, which has no box
  geometry) and k-NN — asserting the batch path wins the primary query
  kind for every structure, with bit-identical results;
- **parallel vs serial**: wall time of ``ParallelQueryEngine`` thread
  views of the live index at 1/2/4 workers, asserting bit-identical
  merged results (speedups are recorded, not asserted: small CI runners
  cannot beat the GIL-free serial loop).

Everything lands in ``benchmarks/results/BENCH_kernel.json``.  Scale knob:
``REPRO_SCALE`` as in every other benchmark.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, host_metadata, scaled

from repro.baselines.common import LoopQueryMixin
from repro.datasets import clustered_dataset, range_workload
from repro.distances import L2
from repro.engine.parallel import ParallelQueryEngine
from repro.eval.harness import build_index
from repro.eval.report import render_table

K = 10
DIMS = 8
STRUCTURES = (
    "hybrid",
    "rtree",
    "xtree",
    "kdbtree",
    "sstree",
    "srtree",
    "mtree",
    "hbtree",
)


def _primary_queries(kind: str, index, workload):
    """The structure's primary bulk query: box range, or distance range
    for the M-tree (no box geometry)."""
    if getattr(index, "trav_supports_box", True):
        boxes = workload.boxes()
        return (
            "range",
            lambda: LoopQueryMixin.range_search_loop(
                index, boxes, return_metrics=True
            ),
            lambda: index.range_search_many(boxes),
        )
    centers, radii = workload.centers, 0.35
    return (
        "distance",
        lambda: LoopQueryMixin.distance_range_loop(
            index, centers, radii, L2, return_metrics=True
        ),
        lambda: index.distance_range_many(centers, radii, L2),
    )


def test_kernel_speedups(run_once, report):
    def experiment():
        data = clustered_dataset(scaled(6000), DIMS, seed=0)
        workload = range_workload(data, scaled(300, minimum=30), 0.002, seed=1)
        centers = workload.centers

        batch_rows = []
        parallel_rows = []
        for kind in STRUCTURES:
            index = build_index(kind, data)
            row = {"structure": kind}
            specs = [_primary_queries(kind, index, workload)]
            specs.append(
                (
                    "knn",
                    lambda: LoopQueryMixin.knn_loop(
                        index, centers, K, L2, return_metrics=True
                    ),
                    lambda: index.knn_many(centers, K, L2),
                )
            )
            for label, run_loop, run_batch in specs:
                start = time.perf_counter()
                loop_results, _ = run_loop()
                loop_wall = time.perf_counter() - start
                start = time.perf_counter()
                batch_results = run_batch()
                batch_wall = time.perf_counter() - start
                row[f"{label}_loop_s"] = round(loop_wall, 4)
                row[f"{label}_batch_s"] = round(batch_wall, 4)
                row[f"{label}_speedup"] = round(loop_wall / max(batch_wall, 1e-9), 2)
                row[f"{label}_identical"] = loop_results == batch_results
            row["primary"] = specs[0][0]
            batch_rows.append(row)

            serial = index.knn_many(centers, K, L2)
            base_wall = None
            for workers in (1, 2, 4):
                with ParallelQueryEngine(index, workers=workers) as engine:
                    engine.knn_many(centers[:2], K, L2)  # warm views
                    start = time.perf_counter()
                    results = engine.knn_many(centers, K, L2)
                    wall = time.perf_counter() - start
                if workers == 1:
                    base_wall = wall
                parallel_rows.append(
                    {
                        "structure": kind,
                        "workers": workers,
                        "wall_s": round(wall, 4),
                        "speedup_vs_1": round(base_wall / max(wall, 1e-9), 2),
                        "identical": results == serial,
                    }
                )
        return batch_rows, parallel_rows

    batch_rows, parallel_rows = run_once(experiment)
    payload = {
        "host": host_metadata(),
        "batch_vs_loop": batch_rows,
        "parallel_thread_views": parallel_rows,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_kernel.json"), "w") as f:
        json.dump(payload, f, indent=2)
    report(
        render_table(
            [
                {
                    "structure": r["structure"],
                    "primary": r["primary"],
                    "primary_speedup": r[f"{r['primary']}_speedup"],
                    "knn_speedup": r["knn_speedup"],
                }
                for r in batch_rows
            ],
            "kernel batch vs measured loop (wall-time speedup)",
        )
        + "\n\n"
        + render_table(parallel_rows, "live-index thread views, knn")
    )

    for row in batch_rows:
        kind, primary = row["structure"], row["primary"]
        assert row[f"{primary}_identical"], f"{kind}: batch diverged from loop"
        assert row["knn_identical"], f"{kind}: batch knn diverged from loop"
        assert row[f"{primary}_speedup"] > 1.0, (
            f"{kind}: kernel batch should beat the measured loop "
            f"({row[f'{primary}_batch_s']}s vs {row[f'{primary}_loop_s']}s)"
        )
    assert all(r["identical"] for r in parallel_rows), "parallel results diverged"
