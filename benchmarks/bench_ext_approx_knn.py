"""Future-work extension (Section 5): approximate nearest-neighbour search.

The paper names approximate NN queries as planned work on the hybrid tree;
this benchmark sweeps the (1 + eps) approximation factor on 64-d COLHIST and
reports the I/O saved against recall and distance error.
"""

from conftest import scaled

from repro.eval.figures import ext_approximate_knn
from repro.eval.report import render_table


def test_ext_approximate_knn(run_once, report):
    rows = run_once(
        ext_approximate_knn,
        dims=64,
        count=scaled(12000),
        num_queries=scaled(20, minimum=6),
        k=10,
    )
    report(render_table(rows, "Extension — approximate k-NN on the hybrid tree"))

    exact = rows[0]
    loosest = rows[-1]
    assert exact["factor"] == 0.0
    assert exact["recall"] == 1.0 and exact["kth_dist_ratio"] == 1.0
    # Shape: looser factors never cost more I/O, and the loosest saves some.
    ios = [float(r["io/query"]) for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(ios, ios[1:])), ios
    assert loosest["io_vs_exact"] <= 1.0
    # Guarantee: k-th distance within (1 + eps) of optimal.
    for row in rows:
        assert row["kth_dist_ratio"] <= 1.0 + row["factor"] + 1e-9, row
