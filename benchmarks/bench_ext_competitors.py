"""Extension — the wider 1990s field: X-tree, M-tree, VA-file vs hybrid.

Beyond the structures the paper benchmarks, its Section 2 classification
names the X-tree (DP/feature-based), M-tree (DP/distance-based) and the
linear-scan argument that the VA-file turned constructive.  This benchmark
lines them all up on 64-d COLHIST distance queries (L2 — the one metric the
M-tree can serve).

Expected shape: the hybrid tree leads the tree structures; the VA-file —
whose cost floor is the (cheap, sequential) approximation scan plus a few
candidate reads — is the strongest non-tree contender, exactly the
high-dimensional landscape the literature of 1998-1999 described.
"""

from conftest import scaled

from repro.datasets import colhist_dataset, distance_workload
from repro.distances import L2
from repro.eval.harness import build_index, run_workload
from repro.eval.report import render_table

METHODS = ("hybrid", "xtree", "rtree", "mtree", "vafile", "scan")


def test_ext_competitor_field(run_once, report):
    def experiment():
        data = colhist_dataset(scaled(10000), 64, seed=0)
        workload = distance_workload(
            data, scaled(15, minimum=6), 0.002, metric=L2, seed=1
        )
        rows = []
        for kind in METHODS:
            index = build_index(kind, data)
            result = run_workload(index, data, workload, kind=kind)
            row = result.row(dims=64, metric="L2")
            if kind == "xtree":
                row["supernodes"] = index.supernode_count()
            rows.append(row)
        return rows

    rows = run_once(experiment)
    report(render_table(rows, "Extension — 1990s field on 64-d COLHIST (L2)"))

    by = {r["method"]: float(r["norm_io"]) for r in rows}
    # Shape: hybrid leads every tree structure.
    for tree_kind in ("xtree", "rtree", "mtree"):
        assert by["hybrid"] < by[tree_kind], (tree_kind, by)
    # Shape: the VA-file is competitive (it cannot beat its approximation-
    # scan floor, but stays near or below the full scan).
    assert by["vafile"] < 2.0 * by["scan"], by
    assert by["scan"] == 0.1
