"""Figure 7(a, b): scalability with database size (64-d COLHIST).

Paper (25K-70K tuples): the hybrid tree outperforms all other techniques by
more than an order of magnitude over the SR-tree, and its *normalized* cost
decreases as the database grows — the actual cost grows sublinearly.
"""

from conftest import scaled, series

from repro.eval.figures import fig7_dbsize
from repro.eval.report import render_table


def test_fig7_database_size(run_once, report):
    sizes = tuple(scaled(s) for s in (4000, 8000, 12000, 16000))
    rows = run_once(
        fig7_dbsize,
        sizes=sizes,
        dims=64,
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Figure 7(a,b) — database size sweep (64-d COLHIST)"))

    hybrid = series(rows, "hybrid", "norm_io")
    hb = series(rows, "hbtree", "norm_io")
    sr = series(rows, "srtree", "norm_io")
    # Shape: hybrid wins at every size; big margin over the SR-tree.
    assert all(h <= b for h, b in zip(hybrid, hb)), (hybrid, hb)
    assert all(h < s for h, s in zip(hybrid, sr)), (hybrid, sr)
    assert sr[-1] / hybrid[-1] >= 3.0, (hybrid, sr)
    # Shape: hybrid's normalized cost decreases with database size
    # (sublinear growth of the actual cost).
    assert hybrid[-1] <= hybrid[0] * 1.05, hybrid
