"""Figure 6(a, b): scalability with dimensionality — FOURIER (medium dims).

Paper (FOURIER, 400K points, 8/12/16 dims, 0.07% selectivity): the hybrid
tree performs significantly better than hB-tree, SR-tree and linear scan;
the hB-tree beats the SR-tree (SP beats BR at higher dims); the hybrid
tree's normalized I/O stays below the 0.1 linear-scan line.
"""

from conftest import scaled, series

from repro.eval.figures import fig6_dimensionality
from repro.eval.report import render_table


def test_fig6_fourier_dimensionality(run_once, report):
    rows = run_once(
        fig6_dimensionality,
        dataset="fourier",
        dims_list=(8, 12, 16),
        count=scaled(40000),
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Figure 6(a,b) — FOURIER dimensionality sweep"))

    hybrid = series(rows, "hybrid", "norm_io")
    hb = series(rows, "hbtree", "norm_io")
    sr = series(rows, "srtree", "norm_io")
    scan = series(rows, "scan", "norm_io")
    # Shape: hybrid wins at every dimensionality (within noise at the low
    # end, where the paper's own curves also nearly touch); hB beats SR at
    # the top end.
    assert all(h <= b * 1.05 for h, b in zip(hybrid, hb)), (hybrid, hb)
    assert all(h <= s for h, s in zip(hybrid, sr)), (hybrid, sr)
    assert hb[-1] <= sr[-1], (hb, sr)
    # Shape: linear scan normalizes to 0.1 by construction.
    assert all(abs(s - 0.1) < 1e-6 for s in scan), scan
    # Shape: the hybrid tree beats the linear scan everywhere.
    assert all(h < 0.1 for h in hybrid), hybrid
