"""Ablation (Section 3.2): middle vs median split position.

"The hybrid tree chooses the split position as close to the middle as
possible.  This tends to produce more cubic BRs and hence ones with smaller
surface areas ... the lower the number of expected disk accesses.  Our
experiments validate the above observation."
"""

from conftest import scaled

from repro.eval.figures import ablation_split_position
from repro.eval.report import render_table


def test_ablation_split_position(run_once, report):
    rows = run_once(
        ablation_split_position,
        dims=64,
        count=scaled(8000),
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Ablation — split position rule (64-d COLHIST)"))

    middle = next(r for r in rows if r["position"] == "middle")
    median = next(r for r in rows if r["position"] == "median")
    # Shape: middle is no worse than median (paper: strictly better on
    # their data; we allow a small tolerance at reduced scale).
    assert float(middle["io/query"]) <= float(median["io/query"]) * 1.1, (middle, median)
