"""Extension — the multi-worker parallel engine and the zero-copy read path.

Two measurements over a saved tree file:

- **decode**: time to fault in every node page through the copying codec
  vs the zero-copy codec (`copy=False` over an mmapped page) — the
  per-page decode cost the mmap read path removes;
- **throughput**: batch `range_search_many` / `knn_many` queries-per-second
  at 1/2/4 workers (thread and fork modes, mmap handles), with the speedup
  over the single-worker serial engine and a bit-identical results check.

Worker cold start (tree reopen + fsck per handle) is excluded: engines are
constructed before the timed region, matching how a serving process would
hold a warm pool.  The ≥ 2x speedup shape is only asserted when the host
actually has ≥ 4 CPU cores — on smaller runners the numbers are still
emitted to ``BENCH_parallel.json`` but parallelism cannot beat the GIL-free
serial loop, and pretending otherwise would be noise.

Scale knob: ``REPRO_SCALE`` as in every other benchmark.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, host_metadata, scaled

from repro.core import HybridTree
from repro.datasets import colhist_dataset, range_workload
from repro.engine.parallel import ParallelQueryEngine
from repro.eval.report import render_table
from repro.storage.mmapstore import MmapPageStore
from repro.storage.serialization import HybridNodeCodec

K = 10
DECODE_PASSES = 5


def _decode_bench(path: str, dims: int, data_capacity: int) -> dict:
    """Time copy vs zero-copy decode over every node page of the file."""
    timings = {}
    with MmapPageStore(path, verify="fsck") as store:
        pages = []
        for pid in range(store._next_id):
            page = store.read(pid, charge=False)
            try:  # keep only decodable node pages (skip blobs/superblock)
                HybridNodeCodec(dims, data_capacity).decode(bytes(page))
            except Exception:
                continue
            pages.append(page)
        for label, codec in (
            ("copy", HybridNodeCodec(dims, data_capacity)),
            (
                "zero-copy",
                HybridNodeCodec(
                    dims, data_capacity, copy=False, verify_checksums=False
                ),
            ),
        ):
            start = time.perf_counter()
            for _ in range(DECODE_PASSES):
                for page in pages:
                    codec.decode(page)
            timings[label] = (time.perf_counter() - start) / DECODE_PASSES
    timings["pages"] = len(pages)
    timings["speedup"] = timings["copy"] / max(timings["zero-copy"], 1e-12)
    return timings


def test_parallel_engine(run_once, report, tmp_path):
    def experiment():
        data = colhist_dataset(scaled(20000), 16, seed=0)
        tree = HybridTree.bulk_load(data)
        path = str(tmp_path / "tree.pages")
        tree.save(path)
        workload = range_workload(data, scaled(1000, minimum=50), 0.002, seed=1)
        boxes = workload.boxes()
        centers = workload.centers

        decode = _decode_bench(path, tree.dims, tree.data_capacity)

        rows = []
        baseline = {}
        for workers, mode in ((1, "thread"), (2, "thread"), (2, "fork"), (4, "fork")):
            engine = ParallelQueryEngine(path, workers=workers, mode=mode)
            try:
                engine.knn_many(centers[:4], K)  # warm worker caches
                for kind, run in (
                    ("range", lambda: engine.range_search_many(boxes)),
                    ("knn", lambda: engine.knn_many(centers, K)),
                ):
                    start = time.perf_counter()
                    results = run()
                    wall = time.perf_counter() - start
                    n = len(results)
                    key = (kind, workers, mode)
                    if workers == 1:
                        baseline[kind] = (wall, results)
                    rows.append(
                        {
                            "kind": kind,
                            "workers": workers,
                            "mode": mode,
                            "wall_s": round(wall, 3),
                            "qps": round(n / wall, 1),
                            "speedup_vs_1": round(baseline[kind][0] / wall, 2),
                            "identical": results == baseline[kind][1],
                        }
                    )
            finally:
                engine.close()
        return rows, decode

    rows, decode = run_once(experiment)
    payload = {
        "host": host_metadata(),
        "decode": decode,
        "throughput": rows,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_parallel.json"), "w") as f:
        json.dump(payload, f, indent=2)
    report(
        render_table(rows, "parallel engine throughput (warm workers, mmap)")
        + "\n\n"
        + f"decode of {decode['pages']} node pages: copy {decode['copy'] * 1e3:.2f} ms, "
        f"zero-copy {decode['zero-copy'] * 1e3:.2f} ms "
        f"({decode['speedup']:.1f}x faster fault-in)"
    )

    assert all(row["identical"] for row in rows), "parallel results diverged"
    assert decode["zero-copy"] < decode["copy"], (
        "zero-copy decode should beat the copying codec "
        f"({decode['zero-copy']:.4f}s vs {decode['copy']:.4f}s)"
    )
    cores = os.cpu_count() or 1
    best4 = max(
        (row["speedup_vs_1"] for row in rows if row["workers"] == 4), default=0.0
    )
    if cores >= 4:
        assert best4 >= 2.0, (
            f"4 workers on {cores} cores only reached {best4}x over serial"
        )
