"""Extension — the write-ahead log: durability cost, group commit, snapshots.

Four measurements over one saved tree:

- **durability**: insert throughput on the plain copy-on-write session
  (mutations in memory until ``save()``) vs the WAL session (every
  mutation fsync-committed) — the honest price of crash durability per
  transaction, plus the recovery-side cost of replaying that log on
  reopen;
- **group commit**: fsyncs-per-commit when 1/2/4/8 threads commit
  concurrently against the raw :class:`WriteAheadLog` — coalescing onto
  a flush leader is the mechanism that keeps the durability price from
  scaling with writer concurrency;
- **snapshot reads**: batch k-NN throughput on the live WAL tree vs a
  pinned :meth:`snapshot_view` while a writer mutates between batches —
  isolation should cost view construction, not query speed, and the
  view's answers must stay bit-identical to its pin-time state;
- **checkpoint**: wall time and log bytes folded when the WAL collapses
  into a fresh superblock.

Scale knob: ``REPRO_SCALE`` as in every other benchmark.
"""

from __future__ import annotations

import json
import os
import threading
import time

from conftest import RESULTS_DIR, host_metadata, scaled

from repro.core import HybridTree
from repro.datasets import range_workload, uniform_dataset
from repro.eval.report import render_table
from repro.storage import wal as wal_io

K = 10


def _insert_throughput(path: str, data, start_oid: int, wal: bool) -> float:
    tree = HybridTree.open(path, wal=wal)
    try:
        start = time.perf_counter()
        for i, vector in enumerate(data):
            tree.insert(vector, start_oid + i)
        wall = time.perf_counter() - start
    finally:
        tree.close()
    return len(data) / wall


def _group_commit(tmp_path, rounds: int) -> list[dict]:
    rows = []
    for threads in (1, 2, 4, 8):
        log = wal_io.WriteAheadLog(
            str(tmp_path / f"gc{threads}.wal"), 4096, 0
        )
        log.sync_count = 0
        start = time.perf_counter()
        for r in range(rounds):
            for t in range(threads):
                log.append_commit({"round": r, "thread": t})
            barrier = threading.Barrier(threads)

            def committer():
                barrier.wait()
                log.commit()

            workers = [
                threading.Thread(target=committer) for _ in range(threads)
            ]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        wall = time.perf_counter() - start
        rows.append(
            {
                "threads": threads,
                "commits": log.commit_count,
                "fsyncs": log.sync_count,
                "syncs_per_commit": round(log.sync_count / log.commit_count, 3),
                "commits_per_s": round(log.commit_count / wall, 1),
            }
        )
        log.close()
    return rows


def test_wal(run_once, report, tmp_path):
    def experiment():
        dims = 8
        data = uniform_dataset(scaled(8000), dims, seed=0)
        base = str(tmp_path / "base.pages")
        HybridTree.bulk_load(data).save(base)
        extra = uniform_dataset(scaled(600, minimum=100), dims, seed=1)

        # Durability: the same insert stream, volatile vs logged.
        import shutil

        volatile_path = str(tmp_path / "volatile.pages")
        shutil.copyfile(base, volatile_path)
        volatile_ips = _insert_throughput(volatile_path, extra, 10**6, wal=False)
        durable_path = str(tmp_path / "durable.pages")
        shutil.copyfile(base, durable_path)
        durable_ips = _insert_throughput(durable_path, extra, 10**6, wal=True)
        log_bytes = os.path.getsize(wal_io.wal_path_for(durable_path))
        start = time.perf_counter()
        replayed = HybridTree.open(durable_path)
        replay_s = time.perf_counter() - start
        transactions = replayed.wal_replayed_transactions
        assert transactions == len(extra)
        assert len(replayed) == scaled(8000) + len(extra)
        replayed.close()
        durability = {
            "volatile_inserts_per_s": round(volatile_ips, 1),
            "durable_inserts_per_s": round(durable_ips, 1),
            "durability_cost_x": round(volatile_ips / durable_ips, 2),
            "log_bytes_per_txn": log_bytes // max(transactions, 1),
            "replay_s": round(replay_s, 3),
            "replayed_txns": transactions,
        }

        group = _group_commit(tmp_path, rounds=scaled(60, minimum=10))

        # Snapshot reads: live tree vs pinned view under interleaved writes.
        tree = HybridTree.open(durable_path, wal=True)
        workload = range_workload(data, scaled(400, minimum=50), 0.002, seed=2)
        centers = workload.centers
        tree.knn_many(centers[:4], K)  # warm the node cache
        start = time.perf_counter()
        live_results = tree.knn_many(centers, K)
        live_wall = time.perf_counter() - start
        view = tree.snapshot_view()
        for i, vector in enumerate(extra[: scaled(100, minimum=20)]):
            tree.insert(vector, 2 * 10**6 + i)  # writer moves on past the pin
        view.knn_many(centers[:4], K)
        start = time.perf_counter()
        view_results = view.knn_many(centers, K)
        view_wall = time.perf_counter() - start
        identical = view_results == live_results
        view.close()
        snapshots = {
            "live_qps": round(len(centers) / live_wall, 1),
            "view_qps": round(len(centers) / view_wall, 1),
            "view_overhead_x": round(view_wall / live_wall, 2),
            "identical_to_pin_time": identical,
        }

        # Checkpoint: fold the whole log into a fresh superblock.
        pre_bytes = tree.wal.size_bytes
        start = time.perf_counter()
        info = tree.checkpoint()
        checkpoint_s = time.perf_counter() - start
        tree.close()
        checkpoint = {
            "wall_s": round(checkpoint_s, 3),
            "bytes_folded": pre_bytes,
            "generation": info["generation"],
        }
        return durability, group, snapshots, checkpoint

    durability, group, snapshots, checkpoint = run_once(experiment)
    payload = {
        "host": host_metadata(),
        "durability": durability,
        "group_commit": group,
        "snapshots": snapshots,
        "checkpoint": checkpoint,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_wal.json"), "w") as f:
        json.dump(payload, f, indent=2)
    report(
        render_table(group, "group commit: fsync coalescing under concurrency")
        + "\n\n"
        + f"durability: {durability['volatile_inserts_per_s']} volatile vs "
        f"{durability['durable_inserts_per_s']} durable inserts/s "
        f"({durability['durability_cost_x']}x), replay of "
        f"{durability['replayed_txns']} txns in {durability['replay_s']}s\n"
        + f"snapshot view: {snapshots['view_qps']} qps vs live "
        f"{snapshots['live_qps']} qps "
        f"({snapshots['view_overhead_x']}x), bit-identical="
        f"{snapshots['identical_to_pin_time']}\n"
        + f"checkpoint: folded {checkpoint['bytes_folded']} log bytes in "
        f"{checkpoint['wall_s']}s (generation {checkpoint['generation']})"
    )

    assert snapshots["identical_to_pin_time"], "snapshot drifted under writes"
    multi = [row for row in group if row["threads"] > 1]
    assert all(row["fsyncs"] < row["commits"] for row in multi), (
        "group commit never coalesced: " + repr(multi)
    )
