"""Figure 7(c, d): distance-based queries under the L1 metric (COLHIST).

Paper: range queries by Manhattan distance (the MARS similarity measure);
hB-tree omitted ("does not support distance-based search", footnote 2).
The hybrid tree outperforms the SR-tree throughout.
"""

from conftest import scaled, series

from repro.eval.figures import fig7_distance
from repro.eval.report import render_table


def test_fig7_distance_queries(run_once, report):
    rows = run_once(
        fig7_distance,
        dims_list=(16, 32, 64),
        count=scaled(12000),
        num_queries=scaled(20, minimum=6),
    )
    report(render_table(rows, "Figure 7(c,d) — L1 distance queries (COLHIST)"))

    hybrid = series(rows, "hybrid", "norm_io")
    sr = series(rows, "srtree", "norm_io")
    assert all(h < s for h, s in zip(hybrid, sr)), (hybrid, sr)
    # Shape: the margin is substantial at high dimensionality.
    assert sr[-1] / hybrid[-1] >= 2.0, (hybrid, sr)
