"""Extension — buffer-pool behaviour of a disk-resident hybrid tree.

The paper reports cold per-query disk accesses; a production deployment
runs behind a buffer pool.  This benchmark saves a tree to a real page file,
reopens it with bounded LRU node caches of various sizes, and measures
page faults per query over a clustered workload.  Expected shape: misses
fall monotonically with buffer size; once the pool covers the working set
(directory + hot clusters), queries run almost I/O-free — the locality that
makes tree indexes deployable at all.
"""

import numpy as np
from conftest import scaled

from repro.core import HybridTree
from repro.datasets import colhist_dataset, range_workload
from repro.eval.report import render_table


def test_ext_buffer_pool(run_once, report, tmp_path):
    def experiment():
        data = colhist_dataset(scaled(10000), 64, seed=0)
        tree = HybridTree.bulk_load(data)
        path = str(tmp_path / "tree.pages")
        tree.save(path)
        total_pages = tree.pages()
        workload = range_workload(data, scaled(40, minimum=10), 0.002, seed=1)
        boxes = workload.boxes()

        rows = []
        for fraction in (0.02, 0.05, 0.15, 0.5, 1.0):
            buffer_pages = max(4, int(total_pages * fraction))
            reopened = HybridTree.open(path, buffer_pages=buffer_pages)
            # Warm-up pass, then the measured pass.
            for box in boxes:
                reopened.range_search(box)
            reopened.io.reset()
            results = 0
            for box in boxes:
                results += len(reopened.range_search(box))
            rows.append(
                {
                    "buffer_pages": buffer_pages,
                    "fraction_of_tree": fraction,
                    "faults/query": round(reopened.io.random_reads / len(boxes), 2),
                    "results": round(results / len(boxes), 1),
                }
            )
        rows.append({"buffer_pages": f"(tree: {total_pages} pages)"})
        return rows

    rows = run_once(experiment)
    report(render_table(rows, "Extension — buffer pool: faults per warm query"))

    faults = [float(r["faults/query"]) for r in rows if "faults/query" in r]
    # Shape: monotone non-increasing in buffer size ...
    assert all(b <= a + 0.5 for a, b in zip(faults, faults[1:])), faults
    # ... and a full-tree buffer serves warm queries without faults.
    assert faults[-1] == 0.0, faults
    # A small buffer still absorbs a useful share of accesses vs cold runs.
    assert faults[0] > faults[-1], faults
