"""Ablation — EDA dimension choice vs round-robin (the LSDh-tree policy).

Section 3.3 / Lemma 1: "SP-based techniques which choose the split dimension
arbitrarily/round robin fashion cannot provide the above guarantee."  We pad
COLHIST with non-discriminating dimensions and compare the hybrid tree's
EDA-optimal splits against a round-robin variant: round-robin wastes splits
on dead dimensions and pays for it in I/O.
"""

from conftest import scaled

from repro.core import compute_stats
from repro.datasets import colhist_dataset, pad_with_nondiscriminating_dims, range_workload
from repro.eval.harness import build_index, run_workload
from repro.eval.report import render_table


def test_ablation_round_robin_policy(run_once, report):
    def experiment():
        base = colhist_dataset(scaled(8000), 16, seed=0)
        data = pad_with_nondiscriminating_dims(base, 16, seed=1)
        workload = range_workload(data, scaled(25, minimum=8), 0.002, seed=2)
        rows = []
        for kind in ("hybrid", "hybrid-rr"):
            index = build_index(kind, data)
            stats = compute_stats(index)
            result = run_workload(index, data, workload, kind=kind)
            row = result.row(total_dims=32, padded_dims=16)
            row["padded_dims_split"] = len(
                [d for d in stats.split_dims_used if d >= 16]
            )
            rows.append(row)
        return rows

    rows = run_once(experiment)
    report(render_table(rows, "Ablation — EDA vs round-robin split dimension"))

    eda = next(r for r in rows if r["method"] == "hybrid")
    rr = next(r for r in rows if r["method"] == "hybrid-rr")
    # Lemma 1: EDA never splits the dead dimensions; round-robin does.
    assert eda["padded_dims_split"] == 0, eda
    assert rr["padded_dims_split"] > 0, rr
    # And pays for it.
    assert float(eda["io/query"]) <= float(rr["io/query"]), (eda, rr)
