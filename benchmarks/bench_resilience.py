"""Extension — the cost of resilient query execution (ISSUE 8).

Deadline checks ride the hot path of every kernel: the object walk checks
once per node visit, the SOA kernel once per frontier round, the measured
loop once per query.  The resilience contract is only free if a *timed*
batch that never trips its deadline costs the same as an untimed one — so
this benchmark measures what the checks cost, two ways.

**Direct accounting (gated).**  Every :class:`Deadline` counts the
cancellation points it passes through (``Deadline.checks``), and a long
microbenchmark (~100k calls, noise averages out) prices one
``Deadline.check()``.  The gated overhead is then simply
``checks x per-check cost / batch wall time``, per engine over the
summed workload suite.  This estimator is exact for the quantity ISSUE 8
gates — the checks are the *only* code the timed arm adds — and it is
stable on a virtualized box, which the alternative is not:

**A/B wall comparison (recorded, ungated).**  The same workload run with
``timeout=None`` and with a timeout that can never fire, in back-to-back
pairs with alternating order and GC parked, median of per-pair ratios.
Recorded for context, but on this hardware (a microVM with hypervisor
steal and frequency jitter) identical back-to-back runs differ by up to
~18% in both wall *and* CPU time, so differencing two end-to-end runs
cannot resolve a sub-2% signal — gating on it would gate on the
hypervisor's mood.

Acceptance gate (ISSUE 8): direct-accounted deadline-check overhead
stays under 2% on both the object-walk and SOA kernels at full scale
(``REPRO_SCALE >= 1``); reduced-scale smoke runs record everything
without gating (tiny workloads amplify the constant terms).

The artifact also records the supervised parallel engine's fault-recovery
wall time (a worker killed mid-batch, partition retried on a respawned
worker) next to its clean-run baseline — not gated, but the recovery path
should stay the same order of magnitude as the work it redoes.

Everything lands in ``benchmarks/results/BENCH_resilience.json``.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import tempfile
import time

from conftest import RESULTS_DIR, host_metadata, scaled

from repro.core import HybridTree
from repro.datasets import clustered_dataset, range_workload
from repro.distances import L2
from repro.engine import ParallelQueryEngine
from repro.resilience import Deadline
from repro.storage.faults import WorkerFault

K = 10
DIMS = 8
# Even on purpose: pairs alternate which arm runs first, and an even
# count gives both orders equal weight in the median (the first arm of
# a pair tends to run slightly cold).
REPEATS = 10
# A timeout no benchmark run can trip: the checks run, the budget never
# fires, so any wall-time delta is pure checking overhead.
AMPLE_TIMEOUT = 3600.0
GATE_OVERHEAD = 0.02


def _specs(index, workload, centers):
    """(label, thunk(timeout)) pairs over the batch workload."""
    boxes = workload.boxes()
    return [
        ("range", lambda t: index.range_search_many(boxes, timeout=t)),
        ("knn", lambda t: index.knn_many(centers, K, L2, timeout=t)),
    ]


def _wall(thunk, arg):
    start = time.perf_counter()
    thunk(arg)
    return time.perf_counter() - start


def _per_check_cost(chunks: int = 5, chunk: int = 20_000) -> float:
    """Median per-call wall cost of one ``Deadline.check()``."""
    d = Deadline(AMPLE_TIMEOUT)
    rates = []
    for _ in range(chunks):
        start = time.perf_counter()
        for _ in range(chunk):
            d.check()
        rates.append((time.perf_counter() - start) / chunk)
    return statistics.median(rates)


def test_resilience_overhead(run_once, report):
    def experiment():
        data = clustered_dataset(scaled(6000), DIMS, seed=0)
        workload = range_workload(data, scaled(300, minimum=30), 0.002, seed=1)
        centers = workload.centers
        index = HybridTree.bulk_load(data)

        check_s = _per_check_cost()
        rows = []
        suites = []
        for engine in ("object", "soa"):
            if engine == "soa":
                index.compile_snapshot()
            else:
                index.invalidate_snapshot()
            suite_checks = 0
            suite_untimed = 0.0
            suite_ab = []
            for label, thunk in _specs(index, workload, centers):
                thunk(None)  # warmup (and lazy snapshot caches)
                thunk(AMPLE_TIMEOUT)
                # How many cancellation points does this workload pass
                # through?  The Deadline itself counts them.
                meter = Deadline(AMPLE_TIMEOUT)
                thunk(meter)
                # A/B pairs: back-to-back so each repeat's ratio cancels
                # slow drift; GC parked so a collection pause cannot land
                # in one arm and masquerade as checking overhead.
                pairs = []
                for rep in range(REPEATS):
                    gc.collect()
                    gc.disable()
                    try:
                        if rep % 2:
                            timed = _wall(thunk, AMPLE_TIMEOUT)
                            untimed = _wall(thunk, None)
                        else:
                            untimed = _wall(thunk, None)
                            timed = _wall(thunk, AMPLE_TIMEOUT)
                    finally:
                        gc.enable()
                    pairs.append((untimed, timed))
                best_untimed = min(u for u, _ in pairs)
                suite_checks += meter.checks
                suite_untimed += best_untimed
                suite_ab.extend(pairs)
                rows.append(
                    {
                        "engine": engine,
                        "workload": label,
                        "untimed_s": round(best_untimed, 5),
                        "timed_s": round(min(t for _, t in pairs), 5),
                        "checks": meter.checks,
                        "direct_overhead": round(
                            meter.checks * check_s / max(best_untimed, 1e-9), 5
                        ),
                        "ab_overhead": round(
                            statistics.median(
                                t / max(u, 1e-9) for u, t in pairs
                            )
                            - 1.0,
                            4,
                        ),
                    }
                )
            suites.append(
                {
                    "engine": engine,
                    "checks": suite_checks,
                    "untimed_s": round(suite_untimed, 5),
                    "direct_overhead": round(
                        suite_checks * check_s / max(suite_untimed, 1e-9), 5
                    ),
                    "ab_overhead": round(
                        statistics.median(
                            t / max(u, 1e-9) for u, t in suite_ab
                        )
                        - 1.0,
                        4,
                    ),
                }
            )

        # Fault recovery: a worker killed mid-batch vs the clean run.
        recovery = {}
        with tempfile.TemporaryDirectory() as tmpdir:
            path = os.path.join(tmpdir, "bench.tree")
            index.save(path)
            with ParallelQueryEngine(path, workers=2, mode="thread") as eng:
                eng.knn_many(centers, K)  # warmup
                start = time.perf_counter()
                clean = eng.knn_many(centers, K)
                recovery["clean_s"] = round(time.perf_counter() - start, 5)
                eng.inject_faults({0: WorkerFault("die")})
                start = time.perf_counter()
                recovered = eng.knn_many(centers, K)
                recovery["recovered_s"] = round(time.perf_counter() - start, 5)
                recovery["identical"] = recovered == clean
                recovery["restarts"] = eng.restarts_performed
        return rows, suites, recovery, check_s

    rows, suites, recovery, check_s = run_once(experiment)
    payload = {
        "host": host_metadata(),
        "per_check_us": round(check_s * 1e6, 4),
        "deadline_overhead": rows,
        "suite_overhead": suites,
        "fault_recovery": recovery,
        "gate_overhead": GATE_OVERHEAD,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_resilience.json"), "w") as f:
        json.dump(payload, f, indent=2)

    lines = [
        f"deadline-check overhead (one check: {check_s * 1e6:.3f}us; "
        f"direct = checks x cost / wall, A/B = median of {REPEATS} "
        "paired-run ratios, noisy on this box)"
    ]
    for r in rows:
        lines.append(
            f"  {r['engine']:>6} {r['workload']:>8}: {r['untimed_s']:.5f}s, "
            f"{r['checks']} checks, direct {r['direct_overhead'] * 100:+.3f}%"
            f" (A/B {r['ab_overhead'] * 100:+.2f}%)"
        )
    for s in suites:
        lines.append(
            f"  {s['engine']:>6}    suite: {s['untimed_s']:.5f}s, "
            f"{s['checks']} checks, direct {s['direct_overhead'] * 100:+.3f}%"
            f" (A/B {s['ab_overhead'] * 100:+.2f}%)  <- gated on direct"
        )
    lines.append(
        f"  fault recovery: clean {recovery['clean_s']}s, "
        f"worker-death retry {recovery['recovered_s']}s, "
        f"identical={recovery['identical']}"
    )
    report("\n".join(lines))

    assert recovery["identical"], "recovered batch diverged from clean run"
    if float(os.environ.get("REPRO_SCALE", "1.0")) >= 1.0:
        for s in suites:
            assert s["direct_overhead"] < GATE_OVERHEAD, (
                f"{s['engine']}: deadline checks cost "
                f"{s['direct_overhead'] * 100:.2f}% over the suite "
                f"(gate {GATE_OVERHEAD * 100:.0f}%)"
            )
