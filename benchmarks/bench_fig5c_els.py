"""Figure 5(c): effect of Encoded Live Space precision.

Paper (COLHIST, 16/32/64 dims): without ELS (0 bits) queries touch far more
pages; 4 bits per boundary captures nearly all of the improvement; more bits
barely help.  The side-table overhead stays ~1% of the database size.
"""

from conftest import scaled

from repro.eval.figures import fig5c_els
from repro.eval.report import render_table

BITS = (0, 2, 4, 8, 12, 16)


def test_fig5c_els_precision(run_once, report):
    rows = run_once(
        fig5c_els,
        bits_list=BITS,
        dims_list=(16, 32, 64),
        count=scaled(8000),
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Figure 5(c) — ELS precision sweep (COLHIST)"))

    for dims in (16, 32, 64):
        by_bits = {row["els_bits"]: float(row["io/query"]) for row in rows if row["dims"] == dims}
        # Shape: no ELS is the worst setting.
        assert by_bits[0] >= max(by_bits[4], by_bits[16]), (dims, by_bits)
        # Shape: 4 bits already achieves most of the full-precision gain.
        gain_full = by_bits[0] - by_bits[16]
        gain_4 = by_bits[0] - by_bits[4]
        if gain_full > 1.0:
            assert gain_4 >= 0.7 * gain_full, (dims, by_bits)
