"""Figure 6(c, d): scalability with dimensionality — COLHIST (high dims).

Paper (COLHIST, 70K points, 16/32/64 dims, 0.2% selectivity): same ordering
as Figure 6(a, b) at high dimensionality — hybrid < hB < SR in normalized
I/O, hybrid below the linear-scan line at every dimensionality.
"""

from conftest import scaled, series

from repro.eval.figures import fig6_dimensionality
from repro.eval.report import render_table


def test_fig6_colhist_dimensionality(run_once, report):
    rows = run_once(
        fig6_dimensionality,
        dataset="colhist",
        dims_list=(16, 32, 64),
        count=scaled(12000),
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Figure 6(c,d) — COLHIST dimensionality sweep"))

    hybrid = series(rows, "hybrid", "norm_io")
    hb = series(rows, "hbtree", "norm_io")
    sr = series(rows, "srtree", "norm_io")
    assert all(h <= b for h, b in zip(hybrid, hb)), (hybrid, hb)
    assert all(h <= s * 1.02 for h, s in zip(hybrid, sr)), (hybrid, sr)
    assert hb[-1] <= sr[-1], (hb, sr)
    assert all(h < 0.1 for h in hybrid), hybrid
    # Shape: SR-tree degrades fastest as dimensionality grows.
    assert (sr[-1] - sr[0]) >= (hybrid[-1] - hybrid[0]) - 1e-9, (sr, hybrid)
