"""Validation — the Minkowski EDA cost model (paper Section 3.2, Figure 2).

The split analysis rests on one prediction: a uniformly-placed cube query of
side r touches a region with extents s exactly with probability
``vol(Minkowski sum ∩ data space)``.  This benchmark builds a hybrid tree on
uniform data, *predicts* the expected data-node accesses per query by
summing that probability over the leaf regions the search actually prunes
with (the quantized live boxes), then measures the real access rate over
uniformly-placed queries.  Model and measurement must agree — this is the
foundation every split decision in the tree stands on.
"""

import numpy as np
from conftest import scaled

from repro.core import HybridTree
from repro.core.nodes import DataNode, IndexNode
from repro.datasets import uniform_dataset
from repro.eval.report import render_table
from repro.geometry.rect import Rect


def _clipped_minkowski_probability(rect: Rect, side: float) -> float:
    """Probability a query *centre* (uniform in the unit cube) yields a cube
    query intersecting ``rect``: the Minkowski sum clipped to the space."""
    half = side / 2.0
    low = np.maximum(rect.low - half, 0.0)
    high = np.minimum(rect.high + half, 1.0)
    return float(np.prod(np.maximum(high - low, 0.0)))


def _leaf_effective_rects(tree: HybridTree) -> list[Rect]:
    rects: list[Rect] = []

    def walk(node_id: int, region: Rect) -> None:
        node = tree.nm.get(node_id, charge=False)
        if isinstance(node, DataNode):
            rects.append(tree.els.effective_rect(node_id, region))
            return
        assert isinstance(node, IndexNode)
        for child_id, child_region in node.children_with_regions(region):
            walk(child_id, tree.els.effective_rect(child_id, child_region))

    walk(tree.root_id, tree.bounds)
    return rects


def test_minkowski_cost_model(run_once, report):
    def experiment():
        rows = []
        for dims, side in ((2, 0.08), (3, 0.15), (4, 0.25)):
            data = uniform_dataset(scaled(6000), dims, seed=dims)
            tree = HybridTree(dims)
            for oid, v in enumerate(data):
                tree.insert(v, oid)
            predicted = sum(
                _clipped_minkowski_probability(r, side)
                for r in _leaf_effective_rects(tree)
            )
            rng = np.random.default_rng(99)
            num_queries = scaled(300, minimum=50)
            # Count exactly the data-node touches (what the model predicts)
            # by hooking the node cache.
            touches = {"data": 0}
            original_get = tree.nm.get

            def counting_get(page_id, charge=True, _orig=original_get, _t=touches):
                node = _orig(page_id, charge=charge)
                if charge and isinstance(node, DataNode):
                    _t["data"] += 1
                return node

            tree.nm.get = counting_get
            for _ in range(num_queries):
                center = rng.random(dims)
                box = Rect(
                    np.clip(center - side / 2, 0, 1), np.clip(center + side / 2, 0, 1)
                )
                tree.range_search(box)
            tree.nm.get = original_get
            measured = touches["data"] / num_queries
            rows.append(
                {
                    "dims": dims,
                    "query_side": side,
                    "predicted_leaf_accesses": round(predicted, 2),
                    "measured_leaf_accesses": round(measured, 2),
                    "ratio": round(measured / predicted, 3) if predicted else "-",
                }
            )
        return rows

    rows = run_once(experiment)
    report(render_table(rows, "Validation — Minkowski access-probability model"))

    for row in rows:
        # The model should predict measured accesses within 25%.
        assert 0.75 <= float(row["ratio"]) <= 1.25, row
