"""Extension — the compiled struct-of-arrays kernel vs the object walk.

For each traversable structure the benchmark builds the index once, runs
the batch workload on the **object-walk** kernel (no snapshot attached),
then compiles the struct-of-arrays snapshot and reruns the identical
workload on the **vectorized SOA** kernel, asserting bit-identical results
and recording the wall-time ratio plus the one-off compile cost.  The
hybrid tree is additionally measured through the persisted snapshot: saved
with the section, reopened via the zero-copy mmap path, queried again —
the configuration parallel workers share.

Acceptance gate (ISSUE 6): on the hybrid tree the SOA kernel must beat
the object walk by >= 3x on the ``bench_kernel.py`` workload suite —
asserted on the suite's total wall time, with k-NN (the
interpreter-bound workload, where vectorization is the whole win)
additionally required to clear 3x on its own and range required to be
strictly faster.  Range's standalone margin is structurally modest at
this scale: a height-2 tree with ~70-point leaves makes box containment
arithmetic-bound, and both kernels run the same float comparisons — the
SOA side just schedules them better (rank windows on a presorted leaf
dimension, a float32 prefilter, one exact pass over survivors).  Both
sides get one untimed warmup so the ratios measure steady state, not
the object walk's cold-start penalty.  Gates apply only at full scale
(``REPRO_SCALE >= 1``); reduced-scale smoke runs assert identity only,
because interpreter constant factors dominate tiny trees.

Everything lands in ``benchmarks/results/BENCH_soa.json`` (with host
metadata, like every BENCH artifact).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from conftest import RESULTS_DIR, host_metadata, scaled

from repro.core import HybridTree
from repro.datasets import clustered_dataset, range_workload
from repro.distances import L2
from repro.eval.harness import build_index
from repro.eval.report import render_table

K = 10
DIMS = 8
STRUCTURES = (
    "hybrid",
    "rtree",
    "xtree",
    "kdbtree",
    "sstree",
    "srtree",
    "mtree",
    "hbtree",
)


def _specs(index, workload, centers):
    """(label, thunk) pairs for the structure's batch workload."""
    specs = []
    if getattr(index, "trav_supports_box", True):
        boxes = workload.boxes()
        specs.append(("range", lambda: index.range_search_many(boxes)))
    else:
        specs.append(
            ("distance", lambda: index.distance_range_many(centers, 0.35, L2))
        )
    specs.append(("knn", lambda: index.knn_many(centers, K, L2)))
    return specs


def test_soa_speedups(run_once, report):
    def experiment():
        data = clustered_dataset(scaled(6000), DIMS, seed=0)
        workload = range_workload(data, scaled(300, minimum=30), 0.002, seed=1)
        centers = workload.centers

        rows = []
        for kind in STRUCTURES:
            index = build_index(kind, data)
            row = {"structure": kind}
            specs = _specs(index, workload, centers)

            index.invalidate_snapshot()  # object-walk side, guaranteed
            object_results = {}
            object_total = 0.0
            for label, thunk in specs:
                thunk()  # untimed warmup: measure steady state on both sides
                start = time.perf_counter()
                object_results[label] = thunk()
                wall = time.perf_counter() - start
                row[f"{label}_object_s"] = round(wall, 4)
                object_total += wall

            start = time.perf_counter()
            snap = index.compile_snapshot()
            row["compile_s"] = round(time.perf_counter() - start, 4)
            row["kind"] = snap.kind
            row["nodes"] = snap.n_nodes

            soa_total = 0.0
            for label, thunk in specs:
                thunk()  # warmup (also builds the snapshot's lazy sort caches)
                start = time.perf_counter()
                soa_result = thunk()
                soa_wall = time.perf_counter() - start
                soa_total += soa_wall
                row[f"{label}_soa_s"] = round(soa_wall, 4)
                row[f"{label}_speedup"] = round(
                    row[f"{label}_object_s"] / max(soa_wall, 1e-9), 2
                )
                row[f"{label}_identical"] = soa_result == object_results[label]
            row["primary"] = specs[0][0]
            row["suite_speedup"] = round(object_total / max(soa_total, 1e-9), 2)
            rows.append(row)

            if kind == "hybrid":
                # The persisted path: snapshot section -> zero-copy mmap.
                with tempfile.TemporaryDirectory() as tmpdir:
                    path = os.path.join(tmpdir, "bench.tree")
                    index.save(path)
                    reopened = HybridTree.open(path, mmap=True)
                    try:
                        mrow = {"structure": "hybrid (mmap snapshot)"}
                        mrow["reattached"] = reopened.soa_snapshot is not None
                        for label, thunk in _specs(reopened, workload, centers):
                            start = time.perf_counter()
                            result = thunk()
                            mrow[f"{label}_soa_s"] = round(
                                time.perf_counter() - start, 4
                            )
                            mrow[f"{label}_identical"] = (
                                result == object_results[label]
                            )
                    finally:
                        reopened.close()
                    rows.append(mrow)
        return rows

    rows = run_once(experiment)
    payload = {"host": host_metadata(), "soa_vs_object": rows}
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_soa.json"), "w") as f:
        json.dump(payload, f, indent=2)
    report(
        render_table(
            [
                {
                    "structure": r["structure"],
                    "kind": r.get("kind", "-"),
                    "compile_s": r.get("compile_s", "-"),
                    "primary_speedup": r.get(f"{r.get('primary')}_speedup", "-"),
                    "knn_speedup": r.get("knn_speedup", "-"),
                    "suite_speedup": r.get("suite_speedup", "-"),
                }
                for r in rows
            ],
            "SOA kernel vs object walk (wall-time speedup)",
        )
    )

    full_scale = float(os.environ.get("REPRO_SCALE", "1.0")) >= 1.0
    for row in rows:
        for key, value in row.items():
            if key.endswith("_identical"):
                assert value, f"{row['structure']}: {key} diverged"
        if row["structure"] == "hybrid (mmap snapshot)":
            assert row["reattached"], "saved snapshot did not reattach via mmap"
        elif full_scale and row["structure"] == "hybrid":
            # The acceptance gate (see module docstring).  Other structures
            # record their ratios without a floor: the sphere-bounded kinds
            # prune through the original bound objects (bit-identity over
            # vectorization), so their win is structural bookkeeping only.
            assert row["suite_speedup"] >= 3.0, (
                f"hybrid: SOA suite too slow ({row['suite_speedup']}x)"
            )
            assert row["knn_speedup"] >= 3.0, (
                f"hybrid: SOA knn too slow ({row['knn_soa_s']}s vs "
                f"{row['knn_object_s']}s)"
            )
            assert row["range_speedup"] >= 1.0, (
                f"hybrid: SOA range slower than object walk "
                f"({row['range_soa_s']}s vs {row['range_object_s']}s)"
            )
