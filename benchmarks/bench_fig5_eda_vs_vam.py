"""Figure 5(a, b): EDA-optimal vs VAMSplit node splitting.

Paper (64-d COLHIST, dimensionality sweep): the EDA-optimal split algorithms
consistently outperform VAMSplit in both disk accesses (5a) and CPU time
(5b), and the performance gap widens as dimensionality grows.
"""

from conftest import scaled, series

from repro.eval.figures import fig5_eda_vs_vam
from repro.eval.report import render_table

DIMS = (16, 32, 64)


def test_fig5_eda_vs_vam(run_once, report):
    rows = run_once(
        fig5_eda_vs_vam,
        dims_list=DIMS,
        count=scaled(8000),
        num_queries=scaled(25, minimum=8),
    )
    report(render_table(rows, "Figure 5(a,b) — EDA-optimal vs VAM split (COLHIST)"))

    eda_io = series(rows, "hybrid", "io/query")
    vam_io = series(rows, "hybrid-vam", "io/query")
    # Shape: EDA wins at high dimensionality, where the paper's gap is
    # widest.  (On our synthetic 16-d COLHIST the two are within noise and
    # VAM can edge ahead — see EXPERIMENTS.md; the paper's claim is about
    # the high-dimensional regime.)
    assert eda_io[-1] < vam_io[-1], (eda_io, vam_io)
    assert eda_io[-2] <= vam_io[-2] * 1.05, (eda_io, vam_io)
    # Shape: the absolute gap grows from the lowest to the highest dims.
    assert (vam_io[-1] - eda_io[-1]) >= (vam_io[0] - eda_io[0]) - 1e-9
    # Figure 5(b): the CPU-time ordering matches at high dimensionality
    # (generous tolerance — wall-clock CPU is the noisy column).
    eda_cpu = series(rows, "hybrid", "cpu_ms")
    vam_cpu = series(rows, "hybrid-vam", "cpu_ms")
    assert eda_cpu[-1] <= vam_cpu[-1] * 1.15, (eda_cpu, vam_cpu)
