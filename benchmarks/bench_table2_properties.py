"""Table 2: comparison of the hybrid tree with BR-based and kd-based trees.

Regenerates the representation-property table from built structures and
verifies the hybrid column: kd representation with dual split positions,
possibly-overlapping subspaces (but disjoint at the data level), 1-d splits
and ELS dead-space elimination.
"""

from conftest import scaled

from repro.eval.report import render_table
from repro.eval.tables import table2_representation_properties


def test_table2_properties(run_once, report):
    rows = run_once(
        table2_representation_properties,
        dims=32,
        count=scaled(4000),
    )
    report(render_table(rows, "Table 2 — representation properties (measured)"))

    hybrid = next(r for r in rows if r["index"] == "Hybrid tree")
    kdb = next(r for r in rows if r["index"].startswith("KDB"))
    sr = next(r for r in rows if r["index"].startswith("SR"))
    assert hybrid["split_dims"] == 1 and kdb["split_dims"] == 1
    assert sr["split_dims"] == 32
    # Fanout: the kd-organised nodes hold an order of magnitude more
    # children than the SR-tree's sphere+rect entries at 32 dims.
    assert hybrid["index_fanout_cap"] > 5 * sr["index_fanout_cap"]
    # Data-node *splits* are always clean (Section 3.6), so data-level
    # regions overlap only where an overlapping *index* split above them
    # forced it — a sub-0.1% sliver of the unit volume, against the
    # R-tree family's near-total sibling overlap.
    evidence = next(r for r in rows if "data-level" in r["index"])
    assert float(evidence["representation"]) < 1e-2
