"""Extension — the batch query engine vs a loop of single queries.

The engine (`repro.engine`) executes a whole batch in one traversal: each
tree node is fetched once per batch and tested against all still-alive
queries with vectorized predicates, instead of once per query.  Expected
shape over a 1000-query workload: batch `range_search_many` and `knn_many`
are at least 2x faster wall-clock and charge far fewer page reads than the
equivalent single-query loop, while returning bit-identical results; a
pinned `QuerySession` additionally drives the directory's page bill to the
one-off pin cost.  Per-query latency / page histograms come from
`repro.engine.metrics`.
"""

import time

import numpy as np
from conftest import scaled

from repro.core import HybridTree
from repro.datasets import colhist_dataset, range_workload
from repro.engine import QuerySession
from repro.engine.metrics import LoopRecorder
from repro.eval.report import render_table


def _measured_loop(tree, label, calls):
    recorder = LoopRecorder(label, tree.io)
    reads0 = tree.io.random_reads
    results = [call() for call in _instrument(recorder, calls)]
    return results, recorder.finish(charged_reads=tree.io.random_reads - reads0)


def _instrument(recorder, calls):
    def wrap(call):
        def run():
            recorder.start_query()
            try:
                return call()
            finally:
                recorder.end_query()

        return run

    return [wrap(c) for c in calls]


def test_engine_batch(run_once, report):
    def experiment():
        data = colhist_dataset(scaled(20000), 16, seed=0)
        tree = HybridTree.bulk_load(data)
        num_queries = scaled(1000, minimum=50)
        workload = range_workload(data, num_queries, 0.002, seed=1)
        boxes = workload.boxes()
        centers = workload.centers
        k = 10

        rows = []
        renders = []

        def compare(mode, run_loop, run_batch):
            tree.io.reset()
            start = time.perf_counter()
            loop_results, loop_metrics = run_loop()
            loop_wall = time.perf_counter() - start
            tree.io.reset()
            start = time.perf_counter()
            batch_results, batch_metrics = run_batch()
            batch_wall = time.perf_counter() - start
            rows.append(
                {
                    "mode": mode,
                    "loop_s": round(loop_wall, 3),
                    "batch_s": round(batch_wall, 3),
                    "speedup": round(loop_wall / batch_wall, 2),
                    "loop_reads": loop_metrics.charged_reads,
                    "batch_reads": batch_metrics.charged_reads,
                    "identical": loop_results == batch_results,
                }
            )
            renders.append(batch_metrics.render())
            return loop_wall, batch_wall, loop_metrics, batch_metrics

        compare(
            "range",
            lambda: _measured_loop(
                tree, "range-loop", [lambda b=b: tree.range_search(b) for b in boxes]
            ),
            lambda: tree.range_search_many(boxes, return_metrics=True),
        )
        compare(
            f"knn k={k}",
            lambda: _measured_loop(
                tree, "knn-loop", [lambda c=c: tree.knn(c, k) for c in centers]
            ),
            lambda: tree.knn_many(centers, k, return_metrics=True),
        )
        with QuerySession(tree, pin_levels=2) as session:
            tree.io.reset()
            _, session_metrics = session.knn_many(centers, k, return_metrics=True)
            rows.append(
                {
                    "mode": f"knn k={k} (session, {session.pinned_pages} pinned)",
                    "batch_reads": session_metrics.charged_reads,
                    "identical": "-",
                }
            )
        return rows, renders

    rows, renders = run_once(experiment)
    report(
        render_table(rows, "batch engine vs single-query loop (1000-query workload)")
        + "\n\n"
        + "\n\n".join(renders)
    )

    by_mode = {row["mode"]: row for row in rows}
    for mode in ("range", "knn k=10"):
        row = by_mode[mode]
        assert row["identical"] is True, f"{mode}: batch results differ from loop"
        assert row["speedup"] >= 2.0, (
            f"{mode}: batch only {row['speedup']}x faster than the loop"
        )
        assert row["batch_reads"] < row["loop_reads"], (
            f"{mode}: batch charged {row['batch_reads']} reads, "
            f"loop {row['loop_reads']}"
        )


def test_engine_alive_set_shrinks(run_once, report):
    """Per-query attributed pages in batch mode match the loop's charged
    pages — the alive-set bookkeeping is exact, not an estimate."""

    def experiment():
        data = colhist_dataset(scaled(8000), 16, seed=3)
        tree = HybridTree.bulk_load(data)
        workload = range_workload(data, scaled(200, minimum=20), 0.002, seed=4)
        boxes = workload.boxes()
        _, loop_metrics = _measured_loop(
            tree, "range-loop", [lambda b=b: tree.range_search(b) for b in boxes]
        )
        _, batch_metrics = tree.range_search_many(boxes, return_metrics=True)
        return loop_metrics.pages, batch_metrics.pages

    loop_pages, batch_pages = run_once(experiment)
    report(
        "per-query page counts, loop vs batch-attributed: "
        f"equal for {int(np.sum(loop_pages == batch_pages))}/{len(loop_pages)} queries"
    )
    assert np.array_equal(loop_pages, batch_pages)
