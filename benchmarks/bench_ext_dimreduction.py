"""Extension — dimensionality reduction vs the hybrid tree (paper Section 1).

The paper's introduction weighs standalone DR (index the first principal
components, verify exactly) against a robust multidimensional index, and
claims DR (1) needs strongly correlated data and (3) suits static data only,
while a good index needs neither.  This benchmark measures both claims:

- on strongly correlated (low-rank) data, PCA compresses to a handful of
  dimensions — but the hybrid tree's EDA splits *already* exploit that
  structure implicitly, so explicit reduction buys no I/O advantage over
  the plain tree once its two-phase verification is paid for;
- on sparse histogram data the 95%-energy basis keeps most dimensions, so
  the DR pipeline degenerates to an ordinary index plus overhead.
"""

import numpy as np
from conftest import scaled

from repro.core import HybridTree
from repro.datasets import colhist_dataset
from repro.distances import L2
from repro.eval.report import render_table
from repro.reduction import ReducedIndex


def _correlated(n, latent, dims, seed=0):
    rng = np.random.default_rng(seed)
    basis = rng.random((latent, dims))
    noise = rng.normal(0, 0.02, (n, dims))
    return (rng.random((n, latent)) @ basis + noise).astype(np.float32)


def _measure(index, data, queries, k=10):
    index.io.reset()
    for q in queries:
        index.knn(q, k, metric=L2)
    return index.io.weighted_cost() / len(queries)


def test_ext_dimensionality_reduction(run_once, report):
    def experiment():
        rows = []
        for label, data in (
            ("correlated (rank 4)", _correlated(scaled(8000), 4, 32, seed=1)),
            ("colhist 64-d", colhist_dataset(scaled(8000), 64, seed=2)),
        ):
            rng = np.random.default_rng(3)
            queries = data[rng.choice(len(data), scaled(15, minimum=6))].astype(
                np.float64
            )
            plain = HybridTree.bulk_load(data)
            reduced = ReducedIndex(data, energy_target=0.95)
            rows.append(
                {
                    "data": label,
                    "method": "hybrid (full dims)",
                    "indexed_dims": data.shape[1],
                    "io/query": round(_measure(plain, data, queries), 1),
                    "pages": plain.pages(),
                }
            )
            rows.append(
                {
                    "data": label,
                    "method": "PCA + hybrid (GEMINI)",
                    "indexed_dims": reduced.reduced_dims,
                    "io/query": round(_measure(reduced, data, queries), 1),
                    "pages": reduced.pages(),
                }
            )
        return rows

    rows = run_once(experiment)
    report(render_table(rows, "Extension — dimensionality reduction (paper §1)"))

    by = {(r["data"], r["method"]): r for r in rows}
    corr_reduced = by[("correlated (rank 4)", "PCA + hybrid (GEMINI)")]
    hist_reduced = by[("colhist 64-d", "PCA + hybrid (GEMINI)")]
    # Claim 1: correlation decides how far DR compresses.
    assert corr_reduced["indexed_dims"] <= 6
    assert hist_reduced["indexed_dims"] > 16
    # The robust index needs no reduction: it is at least competitive on
    # correlated data without the two-phase overhead.
    corr_plain = by[("correlated (rank 4)", "hybrid (full dims)")]
    assert float(corr_plain["io/query"]) <= 2.0 * float(corr_reduced["io/query"])
