"""Offline integrity checking (fsck) and salvage for saved tree files.

Two levels of defence against at-rest corruption:

- :func:`verify` is the fsck: it re-derives everything the superblock
  claims — per-page CRC32 frames, reachability of every node page from
  the root, agreement between the reachability holes and the persisted
  free list, and the checksum-of-checksums — and reports every
  discrepancy instead of stopping at the first.
- :func:`salvage` is the disaster path: when the index structure (or the
  superblock itself) is damaged, it scavenges every data page whose frame
  still verifies, and rebuilds a fresh tree from the recovered
  ``(vector, oid)`` entries via bulk load.  Index pages carry no unique
  state, so a tree salvaged this way is complete up to the data pages
  actually lost.

Both operate on the file directly (no live tree needed) and are wired to
``repro fsck`` / ``repro salvage`` in the CLI.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.storage.errors import PageCorruptionError, RecoveryError
from repro.storage.page import (
    PAGE_KIND_BLOB,
    PAGE_KIND_DATA,
    PAGE_KIND_INDEX,
    PAGE_KIND_SUPERBLOCK,
    PageLayout,
    data_node_capacity,
    unframe_page,
)
from repro.storage.superblock import (
    _CANDIDATE_PAGE_SIZES,
    checksum_of_checksums,
    read_blob,
    read_superblock,
)

_KIND_NAMES = {
    PAGE_KIND_DATA: "data",
    PAGE_KIND_INDEX: "index",
    PAGE_KIND_BLOB: "blob",
    PAGE_KIND_SUPERBLOCK: "superblock",
}

_DATA_DIMS = struct.Struct("<BHH")  # node payload prefix: kind, count, dims


@dataclass
class FsckReport:
    """Everything :func:`verify` learned about a saved tree file."""

    path: str
    page_size: int | None = None
    page_count: int | None = None
    file_pages: int | None = None
    generation: int | None = None
    root_id: int | None = None
    count: int | None = None
    reachable_pages: int = 0
    free_pages: int = 0
    corrupt_pages: list[int] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)
    # Problems confined to the optional SOA snapshot section.  Kept out of
    # ``errors`` deliberately: a corrupt snapshot only degrades queries to
    # the object-walk kernel (open() drops it), it does not make the tree
    # itself unsafe to open — so ``ok`` stays True.
    snapshot_errors: list[str] = field(default_factory=list)
    has_snapshot: bool = False
    # Sidecar write-ahead log (``<path>.wal``), when one exists.  A stale
    # or torn log is *normal* (a completed checkpoint, a killed writer) —
    # replay ignores/truncates it — so notes never flip ``ok``; only a
    # committed record whose page image fails its frame check does, since
    # replay on open would raise on it.
    wal_path: str | None = None
    wal_stale: bool = False
    wal_transactions: int = 0
    wal_discarded_records: int = 0
    wal_notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        lines = [f"fsck {self.path}: {'clean' if self.ok else 'CORRUPT'}"]
        if self.page_size is not None:
            lines.append(
                f"  page_size={self.page_size} node_pages={self.page_count} "
                f"file_pages={self.file_pages} generation={self.generation}"
            )
            lines.append(
                f"  root={self.root_id} objects={self.count} "
                f"reachable={self.reachable_pages} free={self.free_pages}"
            )
        if self.has_snapshot:
            lines.append(
                "  soa snapshot: "
                + ("CORRUPT (queries degrade to the object-walk kernel)"
                   if self.snapshot_errors else "clean")
            )
        if self.wal_path is not None:
            if self.wal_stale:
                lines.append(f"  wal {self.wal_path}: stale (ignored on open)")
            else:
                lines.append(
                    f"  wal {self.wal_path}: {self.wal_transactions} committed "
                    f"transaction(s) replayed on open, "
                    f"{self.wal_discarded_records} uncommitted record(s) discarded"
                )
            for note in self.wal_notes:
                lines.append(f"  wal: {note}")
        for err in self.errors:
            lines.append(f"  error: {err}")
        for err in self.snapshot_errors:
            lines.append(f"  snapshot: {err}")
        return "\n".join(lines)


@dataclass
class SalvageReport:
    """What :func:`salvage` recovered (the rebuilt tree rides along)."""

    path: str
    page_size: int
    dims: int
    pages_scanned: int
    data_pages_recovered: int
    objects_recovered: int
    expected_objects: int | None = None
    out_path: str | None = None
    tree: object | None = None
    snapshot_dropped: bool = False
    wal_transactions: int = 0
    wal_pages_applied: int = 0

    def render(self) -> str:
        lines = [
            f"salvage {self.path}: recovered {self.objects_recovered} objects "
            f"from {self.data_pages_recovered} intact data pages "
            f"({self.pages_scanned} pages scanned)"
        ]
        if self.wal_transactions:
            lines.append(
                f"  write-ahead log: {self.wal_pages_applied} committed page "
                f"image(s) from {self.wal_transactions} transaction(s) "
                "took precedence over the base file"
            )
        if self.snapshot_dropped:
            lines.append(
                "  soa snapshot section dropped (recompile with "
                "compile_snapshot() and re-save)"
            )
        if self.expected_objects is not None:
            lost = self.expected_objects - self.objects_recovered
            lines.append(
                f"  manifest expected {self.expected_objects} objects "
                f"({lost} lost)" if lost else
                f"  manifest expected {self.expected_objects} objects (none lost)"
            )
        if self.out_path:
            lines.append(f"  rebuilt tree written to {self.out_path}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------
def verify(path: str | os.PathLike) -> FsckReport:
    """Full integrity audit of a saved tree file; never raises on
    corruption — every problem found lands in ``report.errors``.

    Checks, in order: superblock frame + manifest, blob pages (ELS/free
    list), per-page CRC of every node page, reachability of the whole
    index from the root, free-list/reachability agreement (orphans,
    free-but-referenced pages), and the checksum-of-checksums.
    """
    path = os.fspath(path)
    report = FsckReport(path=path)
    try:
        manifest, page_size = read_superblock(path)
    except (PageCorruptionError, ValueError) as exc:
        report.errors.append(f"superblock: {exc}")
        return report
    report.page_size = page_size
    report.page_count = int(manifest["page_count"])
    report.file_pages = os.path.getsize(path) // page_size
    report.generation = int(manifest.get("generation", 0))
    report.root_id = int(manifest["root_id"])
    report.count = int(manifest.get("count", 0))

    free_ids: set[int] = set()
    try:
        import io as _io

        blob = np.load(_io.BytesIO(read_blob(path, manifest, "els", page_size)))
        free_ids = {int(pid) for pid in blob["free_ids"]}
    except (PageCorruptionError, ValueError, KeyError) as exc:
        report.errors.append(f"els blob: {exc}")
    report.free_pages = len(free_ids)

    # Per-page frame audit of the node region; holes (free pages) are
    # zero-filled and legitimately have no frame.
    page_count = report.page_count
    headers: dict[int, object] = {}
    with open(path, "rb") as f:
        for pid in range(min(page_count, report.file_pages)):
            f.seek(pid * page_size)
            page = f.read(page_size)
            try:
                header, _ = unframe_page(page, pid)
            except PageCorruptionError as exc:
                if pid in free_ids:
                    continue  # a hole; any content is fine
                report.corrupt_pages.append(pid)
                report.errors.append(f"page {pid}: {exc.reason}")
                continue
            headers[pid] = header
            if header.kind not in (PAGE_KIND_DATA, PAGE_KIND_INDEX):
                report.errors.append(
                    f"page {pid}: unexpected kind "
                    f"{_KIND_NAMES.get(header.kind, header.kind)} in node region"
                )
    if page_count > report.file_pages:
        report.errors.append(
            f"file truncated: manifest says {page_count} node pages, "
            f"file holds {report.file_pages}"
        )

    # Reachability: walk the index from the root through the real codec.
    reachable = _walk(path, manifest, page_size, report)
    report.reachable_pages = len(reachable)

    for pid in sorted(reachable & free_ids):
        report.errors.append(f"page {pid}: on the free list but reachable")
    # Orphan detection is only meaningful when the walk saw the whole
    # index: a corrupt interior page makes its entire subtree "unreachable"
    # without those pages being orphans.
    if not report.corrupt_pages:
        for pid in range(page_count):
            if pid not in reachable and pid not in free_ids:
                report.errors.append(f"page {pid}: orphaned (unreachable, not free)")

    expected_cc = manifest.get("checksum_of_checksums")
    if expected_cc is not None:
        crcs = [
            headers[pid].crc if pid in headers and pid not in free_ids else 0
            for pid in range(page_count)
        ]
        if checksum_of_checksums(crcs) != expected_cc and not report.errors:
            report.errors.append("checksum-of-checksums mismatch")

    _verify_snapshot_section(path, manifest, page_size, report)
    _verify_wal(path, page_size, report)
    return report


def _verify_wal(path: str, page_size: int, report: FsckReport) -> None:
    """Audit the sidecar write-ahead log, if one exists.

    Mirrors exactly what :meth:`HybridTree.open` will do with the log:
    a generation mismatch makes it stale (ignored), a torn tail is
    truncated at the last commit, and the committed page images are
    frame-verified — the one condition that would make replay raise, and
    therefore the one that lands in ``report.errors``.
    """
    from repro.storage import wal as wal_io

    wal_path = wal_io.wal_path_for(path)
    if not os.path.exists(wal_path):
        return
    report.wal_path = wal_path
    scan = wal_io.scan_wal(wal_path)
    if scan.header is None:
        report.wal_stale = True
        if scan.truncated_reason:
            report.wal_notes.append(scan.truncated_reason)
        return
    pinned = int(scan.header.get("base_generation", -1))
    if pinned != (report.generation or 0):
        report.wal_stale = True
        report.wal_notes.append(
            f"pinned to base generation {pinned}, file is generation "
            f"{report.generation} (a completed checkpoint left it behind)"
        )
        return
    report.wal_transactions = scan.transactions
    report.wal_discarded_records = scan.discarded_records
    if scan.truncated_reason:
        report.wal_notes.append(f"tail discarded: {scan.truncated_reason}")
    for record in scan.records:
        if record.type != wal_io.REC_PAGE:
            continue
        if len(record.payload) != page_size:
            report.errors.append(
                f"wal lsn {record.lsn}: page image is {len(record.payload)} "
                f"bytes (page size {page_size})"
            )
            continue
        try:
            unframe_page(record.payload, record.page_id)
        except PageCorruptionError as exc:
            report.errors.append(
                f"wal lsn {record.lsn} (page {record.page_id}): {exc.reason}"
            )


def _verify_snapshot_section(
    path: str, manifest: dict, page_size: int, report: FsckReport
) -> None:
    """Audit the optional SOA snapshot section (raw pages after the node
    region): CRC32 over the whole section, then a structural parse.
    Findings go into ``report.snapshot_errors`` (see the field's note)."""
    import zlib

    loc = manifest.get("soa")
    if loc is None:
        return
    report.has_snapshot = True
    try:
        start = int(loc["start"]) * page_size
        nbytes = int(loc["bytes"])
        expected_crc = int(loc["crc32"])
    except (KeyError, TypeError, ValueError) as exc:
        report.snapshot_errors.append(f"malformed manifest entry: {exc}")
        return
    with open(path, "rb") as f:
        f.seek(start)
        section = f.read(nbytes)
    if len(section) != nbytes:
        report.snapshot_errors.append(
            f"section truncated: manifest says {nbytes} bytes, "
            f"file holds {len(section)}"
        )
        return
    if zlib.crc32(section) & 0xFFFFFFFF != expected_crc:
        report.snapshot_errors.append("section CRC32 mismatch")
        return
    from repro.engine.soa.persist import SnapshotFormatError, deserialize_snapshot

    try:
        deserialize_snapshot(section)
    except SnapshotFormatError as exc:
        report.snapshot_errors.append(f"undeserializable: {exc}")


def _walk(path: str, manifest: dict, page_size: int, report: FsckReport) -> set[int]:
    """Reachability sweep from the root; decode errors go into the report."""
    from repro.core.nodes import IndexNode
    from repro.storage.serialization import HybridNodeCodec

    dims = int(manifest["dims"])
    codec = HybridNodeCodec(
        dims, data_node_capacity(dims, PageLayout(page_size=page_size)), page_size
    )
    page_count = int(manifest["page_count"])
    reachable: set[int] = set()
    stack = [int(manifest["root_id"])]
    with open(path, "rb") as f:
        while stack:
            pid = stack.pop()
            if pid in reachable:
                report.errors.append(f"page {pid}: referenced more than once")
                continue
            if not 0 <= pid < page_count:
                report.errors.append(f"page {pid}: child id outside node region")
                continue
            reachable.add(pid)
            f.seek(pid * page_size)
            try:
                node = codec.decode(f.read(page_size).ljust(page_size, b"\x00"))
            except PageCorruptionError:
                continue  # already reported by the frame audit
            except ValueError as exc:
                report.errors.append(f"page {pid}: undecodable ({exc})")
                continue
            if isinstance(node, IndexNode):
                stack.extend(node.child_ids())
    return reachable


# ----------------------------------------------------------------------
# salvage
# ----------------------------------------------------------------------
def _wal_salvage_state(path: str, page_size: int, manifest: dict):
    """What the sidecar WAL contributes to a salvage.

    Returns ``(overrides, excluded, transactions)``: ``overrides`` maps
    page id to the decoded ``(vectors, oids)`` of its *last* committed
    data-page image; ``excluded`` is every base-file page id whose base
    version must be ignored — pages the log rewrote as index nodes, and
    pages the final committed allocator state declares free.
    """
    from repro.storage import wal as wal_io

    overrides: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    excluded: set[int] = set()
    if not manifest:
        return overrides, excluded, 0
    scan = wal_io.usable_scan(path, int(manifest.get("generation", 0)))
    if scan is None or not scan.transactions:
        return overrides, excluded, 0
    import json

    last_free: list[int] = []
    for pages, commit in wal_io.committed_transactions(scan):
        for record in pages:
            try:
                header, payload = unframe_page(record.payload, record.page_id)
            except PageCorruptionError:
                continue
            if header.kind == PAGE_KIND_DATA:
                _, count, dims = _DATA_DIMS.unpack_from(payload, 0)
                offset = _DATA_DIMS.size
                vectors = np.frombuffer(
                    payload, dtype="<f4", count=count * dims, offset=offset
                ).reshape(count, dims)
                oids = np.frombuffer(
                    payload, dtype="<u4", count=count, offset=offset + count * dims * 4
                )
                overrides[record.page_id] = (vectors, oids)
                excluded.discard(record.page_id)
            else:
                overrides.pop(record.page_id, None)
                excluded.add(record.page_id)
        try:
            last_free = json.loads(commit.payload.decode()).get("free_ids", last_free)
        except ValueError:
            pass
    for pid in last_free:
        overrides.pop(int(pid), None)
        excluded.add(int(pid))
    return overrides, excluded, scan.transactions


def iter_intact_data_pages(path: str | os.PathLike, page_size: int):
    """Yield ``(page_id, vectors, oids)`` for every page of the file whose
    frame verifies and whose kind is *data* — regardless of whether the
    index above it survived."""
    path = os.fspath(path)
    size = os.path.getsize(path)
    with open(path, "rb") as f:
        for pid in range(size // page_size):
            f.seek(pid * page_size)
            try:
                header, payload = unframe_page(f.read(page_size), pid)
            except PageCorruptionError:
                continue
            if header.kind != PAGE_KIND_DATA:
                continue
            _, count, dims = _DATA_DIMS.unpack_from(payload, 0)
            offset = _DATA_DIMS.size
            vectors = np.frombuffer(
                payload, dtype="<f4", count=count * dims, offset=offset
            ).reshape(count, dims)
            oids = np.frombuffer(
                payload, dtype="<u4", count=count, offset=offset + count * dims * 4
            )
            yield pid, vectors, oids


def _probe_page_size(path: str) -> int:
    """Best-effort page-size discovery when the superblock is gone: the
    size under which the most page frames verify."""
    size = os.path.getsize(path)
    best, best_hits = 0, 0
    with open(path, "rb") as f:
        for page_size in _CANDIDATE_PAGE_SIZES:
            if size < page_size:
                continue
            hits = 0
            for pid in range(size // page_size):
                f.seek(pid * page_size)
                try:
                    unframe_page(f.read(page_size), pid)
                    hits += 1
                except PageCorruptionError:
                    pass
            if hits > best_hits:
                best, best_hits = page_size, hits
    if not best_hits:
        raise RecoveryError(f"{path}: no page size yields a single intact page")
    return best


def salvage(
    path: str | os.PathLike,
    out_path: str | os.PathLike | None = None,
    page_size: int | None = None,
) -> SalvageReport:
    """Scavenge every intact data page and rebuild a fresh tree.

    Works even when the superblock or the whole index level is destroyed:
    tree parameters come from the manifest when it is readable, otherwise
    the page size is probed (:func:`_probe_page_size`) and the
    dimensionality is taken from the surviving data pages themselves.
    Returns a :class:`SalvageReport` whose ``tree`` attribute is the
    rebuilt :class:`~repro.core.hybridtree.HybridTree`; with ``out_path``
    the rebuilt tree is also saved there.
    """
    from repro.core.hybridtree import HybridTree

    path = os.fspath(path)
    manifest: dict = {}
    if page_size is None:
        try:
            manifest, page_size = read_superblock(path)
        except (PageCorruptionError, ValueError):
            page_size = _probe_page_size(path)

    # A matching-generation sidecar WAL holds *newer* committed images of
    # some pages: the last committed image of each page id supersedes the
    # base file's version, and the last commit's free list tells us which
    # base-file pages died (their entries were reinserted elsewhere in the
    # same transaction, so keeping both would duplicate objects).
    wal_overrides, wal_freed, wal_txns = _wal_salvage_state(
        path, page_size, manifest
    )

    vec_parts: list[np.ndarray] = []
    oid_parts: list[np.ndarray] = []
    dims: int | None = int(manifest["dims"]) if "dims" in manifest else None
    data_pages = 0
    for pid, vectors, oids in iter_intact_data_pages(path, page_size):
        if pid in wal_overrides or pid in wal_freed:
            continue
        if dims is None:
            dims = vectors.shape[1]
        if vectors.shape[1] != dims:
            continue  # garbage that happens to frame-verify cannot match dims
        if len(oids):
            vec_parts.append(vectors.copy())
            oid_parts.append(oids.copy())
        data_pages += 1
    wal_data_pages = 0
    for pid in sorted(wal_overrides):
        vectors, oids = wal_overrides[pid]
        if dims is None:
            dims = vectors.shape[1]
        if vectors.shape[1] != dims:
            continue
        if len(oids):
            vec_parts.append(vectors.copy())
            oid_parts.append(oids.copy())
        data_pages += 1
        wal_data_pages += 1
    if dims is None:
        raise RecoveryError(f"{path}: no intact data pages to salvage")

    kwargs = {"page_size": page_size}
    for key in ("min_fill", "split_policy", "split_position", "els_bits",
                "expected_query_side"):
        if key in manifest:
            kwargs[key] = manifest[key]
    if vec_parts:
        all_vecs = np.vstack(vec_parts)
        all_oids = np.concatenate(oid_parts).astype(np.int64)
        tree = HybridTree.bulk_load(all_vecs, all_oids, **kwargs)
    else:
        tree = HybridTree(dims, **kwargs)

    report = SalvageReport(
        path=path,
        page_size=page_size,
        dims=dims,
        pages_scanned=os.path.getsize(path) // page_size,
        data_pages_recovered=data_pages,
        objects_recovered=len(tree),
        expected_objects=int(manifest["count"]) if "count" in manifest else None,
        tree=tree,
        # The rebuilt tree carries no snapshot: a section in the damaged
        # file (however intact) describes the *old* page layout.
        snapshot_dropped="soa" in manifest,
        wal_transactions=wal_txns,
        wal_pages_applied=wal_data_pages,
    )
    if out_path is not None:
        tree.save(out_path)
        report.out_path = os.fspath(out_path)
    return report
