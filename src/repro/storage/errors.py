"""Typed storage failures.

Production hierarchies distinguish *what the caller can do about it*:

- :class:`PageCorruptionError` — the bytes on disk are not what was written
  (torn write, bit flip, truncation).  Retrying will not help; the caller
  must fail the operation, degrade to a sequential scan over intact data
  pages, or run :func:`repro.storage.recovery.salvage`.
- :class:`TransientStorageError` — the device hiccuped (the 1999 analogue:
  a SCSI bus reset).  :class:`~repro.storage.nodemanager.NodeManager`
  retries these with bounded backoff.
- :class:`CrashError` — the simulated process died mid-operation.  Raised
  only by :class:`~repro.storage.faults.FaultInjectingPageStore`; the
  crash-matrix tests treat everything after it as a fresh process.

``PageCorruptionError`` subclasses :class:`ValueError` so pre-existing
callers that treated undecodable pages as value errors keep working.
"""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage-substrate failures."""


class PageCorruptionError(StorageError, ValueError):
    """A page failed its integrity check (magic, version, or CRC32).

    Carries the offending ``page_id`` (when known) and a human-readable
    ``reason`` so fsck reports can aggregate per-page findings.
    """

    def __init__(self, reason: str, page_id: int | None = None):
        self.page_id = page_id
        self.reason = reason
        where = f"page {page_id}: " if page_id is not None else ""
        super().__init__(f"{where}{reason}")


class ReadOnlyStoreError(StorageError, PermissionError):
    """A write reached a read-only store (e.g. an mmapped saved tree).

    Retrying cannot help; the caller holds a read-side handle and must go
    through a writable reopen (``HybridTree.open`` without ``mmap=True``)
    to mutate the tree.
    """


class TransientStorageError(StorageError, IOError):
    """A retriable I/O fault; the same operation may succeed if reissued."""


# The docs and the resilience layer call these "transient I/O errors";
# keep that name importable alongside the historical one.
TransientIOError = TransientStorageError


class CrashError(StorageError, RuntimeError):
    """The simulated process crashed; the store accepts no further I/O."""


class RecoveryError(StorageError):
    """Salvage could not recover anything usable from the file."""
