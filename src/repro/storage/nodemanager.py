"""The node cache every index structure runs through.

``NodeManager`` is the boundary between the in-memory tree objects and the
paged store.  Its contract:

- every *node visit* during a tree operation calls :meth:`get` and is charged
  one random page read (the paper's unit of I/O cost);
- every node mutation calls :meth:`put` and is charged one random page write;
- with a codec attached, :meth:`flush` packs dirty nodes into real pages and
  :meth:`get` faults missing nodes back in through the codec, so a tree can be
  closed, reopened from the file, and queried cold — exercising the same
  serialization a 1999 disk-resident index would.

The object cache means benchmarks do not pay Python ``struct`` costs on every
access while the accounting stays identical to a cold, unbuffered disk.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Protocol

from repro.storage.errors import TransientStorageError
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.pagestore import InMemoryPageStore, PageStore


class NodeCodec(Protocol):
    """Packs tree nodes into page images and back."""

    def encode(self, node: Any) -> bytes:
        """Serialize ``node`` into at most one page worth of bytes."""
        ...

    def decode(self, data: bytes) -> Any:
        """Inverse of :meth:`encode`."""
        ...


class NodeManager:
    """Page-granular node cache with I/O accounting.

    Parameters
    ----------
    store:
        Backing page store.  Defaults to a fresh in-memory store.
    codec:
        Optional node serializer.  Required for :meth:`flush` and for
        faulting nodes in from a persistent store.
    stats:
        Shared I/O accountant.  Defaults to the store's.
    max_retries / retry_backoff / retry_budget:
        Transient store faults (:class:`TransientStorageError`) are retried
        up to ``max_retries`` times with exponential backoff starting at
        ``retry_backoff`` seconds, but never past ``retry_budget`` seconds
        of total wall clock — exponential backoff with a generous
        ``max_retries`` must not be able to blow a query timeout.  When an
        ambient query deadline is active (``repro.resilience``), backoff
        sleeps are clamped to the deadline's remaining budget and the
        deadline is checked between attempts, so a timed query surfaces
        its typed ``QueryTimeoutError`` instead of sleeping through it.
        Permanent errors — including
        :class:`~repro.storage.errors.PageCorruptionError` and
        :class:`~repro.storage.errors.CrashError` — are never retried and
        surface unchanged.  A failed attempt is never charged to
        :class:`IOStats` (stores record only on success), so a retried
        operation costs exactly one access.
    """

    def __init__(
        self,
        store: PageStore | None = None,
        codec: NodeCodec | None = None,
        stats: IOStats | None = None,
        max_cached: int | None = None,
        max_retries: int = 4,
        retry_backoff: float = 0.001,
        retry_budget: float = 1.0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_budget <= 0:
            raise ValueError("retry_budget must be > 0")
        self.store = store if store is not None else InMemoryPageStore()
        self.codec = codec
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.retry_budget = retry_budget
        self.retries_performed = 0
        self.stats = stats if stats is not None else self.store.stats
        if max_cached is not None:
            if max_cached < 1:
                raise ValueError("max_cached must be >= 1")
            if codec is None:
                raise ValueError("bounded caching needs a codec to evict through")
        self.max_cached = max_cached
        self._cache: OrderedDict[int, Any] = OrderedDict()
        self._dirty: set[int] = set()
        self._pinned: set[int] = set()
        self._track_written: set[int] | None = None
        self._track_freed: set[int] | None = None

    # ------------------------------------------------------------------
    # Core protocol used by the index structures
    # ------------------------------------------------------------------
    def allocate(self) -> int:
        """Reserve a page id for a new node."""
        return self.store.allocate()

    def get(self, page_id: int, charge: bool = True) -> Any:
        """Return the node stored at ``page_id``, charging one page read.

        With a bounded cache (``max_cached``) a cache *hit* is free — the
        page genuinely is in memory — and a miss round-trips through the
        store/codec; with the default unbounded object cache every charged
        visit counts one access, modelling the paper's cold measurements.

        ``charge=False`` is for maintenance traversals (e.g. computing tree
        statistics) that must not pollute query-cost measurements; the store
        read on a cache miss is then uncharged too.

        Pinned pages (see :meth:`pin`) are always free to revisit: a query
        session has already paid to bring them into the buffer.
        """
        node = self._cache.get(page_id)
        if node is not None:
            if page_id in self._pinned:
                return node
            if self.max_cached is not None:
                self._cache.move_to_end(page_id)
            elif charge:
                self.stats.record(AccessKind.RANDOM_READ)
            return node
        if self.codec is None:
            raise KeyError(f"node {page_id} not cached and no codec to fault it in")
        data = self._store_read(page_id, charge=charge)
        node = self.codec.decode(data)
        self._cache[page_id] = node
        self._evict_if_needed()
        return node

    def begin_mutation_tracking(self) -> None:
        """Start recording which pages :meth:`put`/:meth:`free` touch.

        The write-ahead-log path brackets every outermost tree mutation
        with this so it knows exactly which page images to log at commit.
        """
        self._track_written = set()
        self._track_freed = set()

    def end_mutation_tracking(self) -> tuple[set[int], set[int]]:
        """Stop tracking; returns ``(written_page_ids, freed_page_ids)``."""
        written, freed = self._track_written, self._track_freed
        self._track_written = None
        self._track_freed = None
        return (written or set(), freed or set())

    def put(self, page_id: int, node: Any, charge: bool = True) -> None:
        """Install/overwrite the node at ``page_id``, charging one page write."""
        if self._track_written is not None:
            self._track_written.add(page_id)
            self._track_freed.discard(page_id)
        self._cache[page_id] = node
        if self.max_cached is not None:
            self._cache.move_to_end(page_id)
        self._dirty.add(page_id)
        if charge and self.max_cached is None:
            self.stats.record(AccessKind.RANDOM_WRITE)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        if self.max_cached is None:
            return
        while len(self._cache) - len(self._pinned) > self.max_cached:
            victim = next(
                (pid for pid in self._cache if pid not in self._pinned), None
            )
            if victim is None:
                return
            node = self._cache.pop(victim)
            if victim in self._dirty:
                self._store_write(victim, self.codec.encode(node))
                self._dirty.discard(victim)

    def free(self, page_id: int) -> None:
        """Release a node's page."""
        if self._track_freed is not None:
            self._track_freed.add(page_id)
            self._track_written.discard(page_id)
        self._cache.pop(page_id, None)
        self._dirty.discard(page_id)
        self._pinned.discard(page_id)
        self.store.free(page_id)

    # ------------------------------------------------------------------
    # Pinning (query sessions keep hot upper-level nodes resident)
    # ------------------------------------------------------------------
    def pin(self, page_id: int, charge: bool = True) -> Any:
        """Fault the node in (one charged read unless ``charge=False``) and
        keep it resident: later visits are free and a bounded cache never
        evicts it.  Returns the node."""
        node = self.get(page_id, charge=charge)
        self._pinned.add(page_id)
        return node

    def unpin(self, page_id: int) -> None:
        """Release a pin; the page returns to normal charging/eviction."""
        self._pinned.discard(page_id)
        self._evict_if_needed()

    def unpin_all(self) -> None:
        for page_id in list(self._pinned):
            self.unpin(page_id)

    @property
    def pinned_nodes(self) -> int:
        return len(self._pinned)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Serialize every dirty node to the store; returns pages written."""
        if self.codec is None:
            raise RuntimeError("flush() requires a codec")
        written = 0
        for page_id in sorted(self._dirty):
            self._store_write(page_id, self.codec.encode(self._cache[page_id]))
            written += 1
        self._dirty.clear()
        return written

    # ------------------------------------------------------------------
    # Retried store I/O (transient faults only)
    # ------------------------------------------------------------------
    def _store_read(self, page_id: int, charge: bool) -> bytes:
        return self._with_retry(lambda: self.store.read(page_id, charge=charge))

    def _store_write(self, page_id: int, data: bytes) -> None:
        self._with_retry(lambda: self.store.write(page_id, data))

    def _with_retry(self, op):
        from repro.resilience import active_deadline

        deadline = active_deadline()
        started = time.perf_counter()
        attempt = 0
        while True:
            try:
                return op()
            except TransientStorageError:
                if attempt >= self.max_retries:
                    raise
                if deadline is not None:
                    # A timed query must surface its typed timeout rather
                    # than sleep through the budget retrying.
                    deadline.check()
                wanted = self.retry_backoff * (2**attempt) if self.retry_backoff > 0 else 0.0
                if wanted > 0:
                    # Wall-clock cap: total retry time (spent + next sleep)
                    # stays within retry_budget and the query deadline.
                    spent = time.perf_counter() - started
                    wanted = min(wanted, max(0.0, self.retry_budget - spent))
                    if deadline is not None:
                        wanted = deadline.sleep_budget(wanted)
                    if wanted > 0:
                        time.sleep(wanted)
                    elif spent >= self.retry_budget:
                        raise
                attempt += 1
                self.retries_performed += 1

    def evict_all(self) -> None:
        """Drop the object cache (dirty nodes must be flushed first).

        Pinned nodes stay resident — they were paid for by a session.
        """
        if self._dirty:
            raise RuntimeError("evict_all() with dirty nodes would lose data; flush() first")
        kept = {pid: self._cache[pid] for pid in self._pinned if pid in self._cache}
        self._cache.clear()
        self._cache.update(kept)

    @property
    def cached_nodes(self) -> int:
        return len(self._cache)

    @property
    def dirty_nodes(self) -> int:
        return len(self._dirty)
