"""Page allocators: an in-memory simulated disk and a real file-backed one.

Both stores expose the same interface — ``allocate``/``read``/``write``/
``free`` on fixed-size pages — and both report their accesses to a shared
:class:`~repro.storage.iostats.IOStats`.  Benchmarks use the in-memory store
(identical accounting, no packing cost); persistence tests and the
``HybridTree.save``/``open`` round trip use the file store, which lays pages
out contiguously in a single file exactly like a 1999 database heap file.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod

from repro.storage.iostats import AccessKind, IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE


class PageStore(ABC):
    """Abstract fixed-size page allocator with access accounting."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, stats: IOStats | None = None):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._next_id = 0
        self._free_list: list[int] = []

    def allocate(self) -> int:
        """Reserve a fresh page id (recycling freed pages first)."""
        if self._free_list:
            return self._free_list.pop()
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the allocator."""
        self._validate_id(page_id)
        self._free_list.append(page_id)

    def ensure_allocated(self, page_id: int) -> None:
        """Extend the allocation horizon so ``page_id`` is addressable.

        Used when mirroring a tree with stable page ids into a fresh store.
        """
        while self._next_id <= page_id:
            self._next_id += 1

    @property
    def allocated_pages(self) -> int:
        """Pages currently in use (allocated minus freed)."""
        return self._next_id - len(self._free_list)

    def _validate_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._next_id:
            raise KeyError(f"page id {page_id} was never allocated")

    @abstractmethod
    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        """Return the page's contents, charging one access of ``kind``.

        ``charge=False`` performs the read without recording it — the hook
        maintenance traversals (``validate``, ``rebuild_els``, statistics)
        use so they never pollute query-cost measurements, even when a
        bounded buffer pool forces a genuine page fault.
        """

    @abstractmethod
    def write(
        self, page_id: int, data: bytes, kind: AccessKind = AccessKind.RANDOM_WRITE
    ) -> None:
        """Store ``data`` (at most ``page_size`` bytes), charging one access."""


class InMemoryPageStore(PageStore):
    """Simulated disk: pages live in a dict, accesses are only counted."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, stats: IOStats | None = None):
        super().__init__(page_size, stats)
        self._pages: dict[int, bytes] = {}

    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        self._validate_id(page_id)
        if charge:
            self.stats.record(kind)
        return self._pages.get(page_id, b"\x00" * self.page_size)

    def write(
        self, page_id: int, data: bytes, kind: AccessKind = AccessKind.RANDOM_WRITE
    ) -> None:
        self._validate_id(page_id)
        if len(data) > self.page_size:
            raise ValueError(f"page overflow: {len(data)} > {self.page_size} bytes")
        self.stats.record(kind)
        self._pages[page_id] = data


class FilePageStore(PageStore):
    """Real file-backed pages: page ``i`` occupies bytes ``[i*P, (i+1)*P)``."""

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        stats: IOStats | None = None,
    ):
        super().__init__(page_size, stats)
        self.path = os.fspath(path)
        # "r+b" keeps existing content; create the file if absent.
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        size = os.path.getsize(self.path)
        self._next_id = size // page_size

    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        self._validate_id(page_id)
        if charge:
            self.stats.record(kind)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        return data.ljust(self.page_size, b"\x00")

    def write(
        self, page_id: int, data: bytes, kind: AccessKind = AccessKind.RANDOM_WRITE
    ) -> None:
        self._validate_id(page_id)
        if len(data) > self.page_size:
            raise ValueError(f"page overflow: {len(data)} > {self.page_size} bytes")
        self.stats.record(kind)
        self._file.seek(page_id * self.page_size)
        self._file.write(data.ljust(self.page_size, b"\x00"))

    def flush(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
