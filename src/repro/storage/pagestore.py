"""Page allocators: an in-memory simulated disk and a real file-backed one.

Both stores expose the same interface — ``allocate``/``read``/``write``/
``free`` on fixed-size pages — and both report their accesses to a shared
:class:`~repro.storage.iostats.IOStats`.  Benchmarks use the in-memory store
(identical accounting, no packing cost); persistence tests and the
``HybridTree.save``/``open`` round trip use the file store, which lays pages
out contiguously in a single file exactly like a 1999 database heap file.

:class:`OverlayPageStore` adds copy-on-write on top of a file store: a
reopened tree reads through to the saved file but buffers every write in
memory, so the published save stays byte-identical until the next
``save()`` republishes atomically — a crash mid-session can never corrupt
the on-disk tree.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections.abc import Iterable

from repro.storage.errors import PageCorruptionError, ReadOnlyStoreError
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, unframe_page


class PageStore(ABC):
    """Abstract fixed-size page allocator with access accounting."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, stats: IOStats | None = None):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()
        self._next_id = 0
        self._free_list: list[int] = []
        self._free_set: set[int] = set()

    def allocate(self) -> int:
        """Reserve a fresh page id (recycling freed pages first)."""
        if self._free_list:
            page_id = self._free_list.pop()
            self._free_set.discard(page_id)
            return page_id
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def free(self, page_id: int) -> None:
        """Return a page to the allocator.

        Freeing the same id twice is rejected: a double free would put the
        id on the free list twice, and two later ``allocate()`` calls would
        hand the same page to different nodes — silent cross-linked
        corruption, the worst failure mode an allocator can have.
        """
        self._validate_id(page_id)
        if page_id in self._free_set:
            raise ValueError(f"double free of page {page_id}")
        self._free_set.add(page_id)
        self._free_list.append(page_id)

    def ensure_allocated(self, page_id: int) -> None:
        """Extend the allocation horizon so ``page_id`` is addressable.

        Used when mirroring a tree with stable page ids into a fresh store.
        """
        self._next_id = max(self._next_id, page_id + 1)

    def set_allocator_state(self, next_id: int, free_ids: Iterable[int]) -> None:
        """Restore persisted allocator state (used by ``HybridTree.open``).

        ``free_ids`` outside ``[0, next_id)`` are dropped: they refer to
        pages past the end of the saved file and are simply unallocated.
        """
        if next_id < 0:
            raise ValueError("next_id must be non-negative")
        self._next_id = next_id
        kept = [pid for pid in free_ids if 0 <= pid < next_id]
        self._free_set = set(kept)
        if len(self._free_set) != len(kept):
            raise ValueError("free list contains duplicate page ids")
        self._free_list = kept

    @property
    def free_page_ids(self) -> list[int]:
        """The freed-but-not-reused page ids (persisted by ``save``)."""
        return list(self._free_list)

    @property
    def allocated_pages(self) -> int:
        """Pages currently in use (allocated minus freed)."""
        return self._next_id - len(self._free_list)

    def _validate_id(self, page_id: int) -> None:
        if not 0 <= page_id < self._next_id:
            raise KeyError(f"page id {page_id} was never allocated")

    @abstractmethod
    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        """Return the page's contents, charging one access of ``kind``.

        ``charge=False`` performs the read without recording it — the hook
        maintenance traversals (``validate``, ``rebuild_els``, statistics)
        use so they never pollute query-cost measurements, even when a
        bounded buffer pool forces a genuine page fault.
        """

    @abstractmethod
    def write(
        self,
        page_id: int,
        data: bytes,
        kind: AccessKind = AccessKind.RANDOM_WRITE,
        charge: bool = True,
    ) -> None:
        """Store ``data`` (at most ``page_size`` bytes), charging one access."""


class InMemoryPageStore(PageStore):
    """Simulated disk: pages live in a dict, accesses are only counted."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE, stats: IOStats | None = None):
        super().__init__(page_size, stats)
        self._pages: dict[int, bytes] = {}

    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        self._validate_id(page_id)
        if charge:
            self.stats.record(kind)
        return self._pages.get(page_id, b"\x00" * self.page_size).ljust(
            self.page_size, b"\x00"
        )

    def write(
        self,
        page_id: int,
        data: bytes,
        kind: AccessKind = AccessKind.RANDOM_WRITE,
        charge: bool = True,
    ) -> None:
        self._validate_id(page_id)
        if len(data) > self.page_size:
            raise ValueError(f"page overflow: {len(data)} > {self.page_size} bytes")
        if charge:
            self.stats.record(kind)
        self._pages[page_id] = data


class FilePageStore(PageStore):
    """Real file-backed pages: page ``i`` occupies bytes ``[i*P, (i+1)*P)``.

    With ``checksums=True`` every :meth:`read` verifies the page's frame
    (magic + format version + whole-page CRC32, see
    :func:`repro.storage.page.unframe_page`) and raises
    :class:`PageCorruptionError` on any mismatch — the mode
    ``HybridTree.save``/``open`` run in.  The default leaves pages opaque
    for callers that store raw bytes.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        stats: IOStats | None = None,
        checksums: bool = False,
    ):
        super().__init__(page_size, stats)
        self.path = os.fspath(path)
        self.checksums = checksums
        # "r+b" keeps existing content; create the file if absent.
        mode = "r+b" if os.path.exists(self.path) else "w+b"
        self._file = open(self.path, mode)
        size = os.path.getsize(self.path)
        self._next_id = size // page_size

    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        self._validate_id(page_id)
        if charge:
            self.stats.record(kind)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size).ljust(self.page_size, b"\x00")
        if self.checksums:
            unframe_page(data, page_id)
        return data

    def write(
        self,
        page_id: int,
        data: bytes,
        kind: AccessKind = AccessKind.RANDOM_WRITE,
        charge: bool = True,
    ) -> None:
        self._validate_id(page_id)
        if len(data) > self.page_size:
            raise ValueError(f"page overflow: {len(data)} > {self.page_size} bytes")
        if charge:
            self.stats.record(kind)
        self._file.seek(page_id * self.page_size)
        self._file.write(data.ljust(self.page_size, b"\x00"))

    def flush(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FilePageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class OverlayPageStore(PageStore):
    """Copy-on-write view over a base store: reads fall through, writes
    land in a private in-memory overlay.

    ``HybridTree.open`` wraps its :class:`FilePageStore` in an overlay so
    that dirty-node write-back from a bounded buffer pool (and any other
    mid-session mutation) never touches the published save file; the file
    changes only through ``save()``'s atomic rename.  Access accounting is
    identical to writing through: every charged overlay access records
    against the shared :class:`IOStats`.
    """

    def __init__(self, base: PageStore):
        super().__init__(base.page_size, base.stats)
        self.base = base
        self._pages: dict[int, bytes] = {}
        self._next_id = base._next_id

    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        self._validate_id(page_id)
        if charge:
            self.stats.record(kind)
        page = self._pages.get(page_id)
        if page is not None:
            return page.ljust(self.page_size, b"\x00")
        if page_id < self.base._next_id:
            return self.base.read(page_id, charge=False)
        return b"\x00" * self.page_size

    def write(
        self,
        page_id: int,
        data: bytes,
        kind: AccessKind = AccessKind.RANDOM_WRITE,
        charge: bool = True,
    ) -> None:
        self._validate_id(page_id)
        if len(data) > self.page_size:
            raise ValueError(f"page overflow: {len(data)} > {self.page_size} bytes")
        if charge:
            self.stats.record(kind)
        self._pages[page_id] = data

    def close(self) -> None:
        close = getattr(self.base, "close", None)
        if close is not None:
            close()


class VersionedOverlayStore(OverlayPageStore):
    """Copy-on-write overlay with pinnable page-version snapshots.

    The write-ahead-log path opens its tree over this store: committed
    pages land in the overlay exactly like :class:`OverlayPageStore`, but a
    reader may first :meth:`pin_snapshot` — from then on, every overwrite
    of a page preserves that page's *pre-write* image for the pinned
    snapshot, so a :class:`SnapshotPageStore` view keeps reading the exact
    store state of pin time while the writer mutates underneath it.  This
    is MVCC in its smallest form: versions are materialised lazily (only
    pages actually overwritten while a pin is live cost a copy) and freed
    when the last snapshot over them unpins.

    All snapshot bookkeeping is lock-protected, so reader threads may pull
    pages from their snapshots while the writer commits.
    """

    def __init__(self, base: PageStore):
        super().__init__(base)
        self._lock = threading.Lock()
        self._snapshots: dict[int, dict[int, bytes | None]] = {}
        self._next_token = 0

    def pin_snapshot(self) -> int:
        """Freeze the current committed state; returns the snapshot token."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._snapshots[token] = {}
            return token

    def unpin_snapshot(self, token: int) -> None:
        """Release a snapshot and the page versions it kept alive."""
        with self._lock:
            self._snapshots.pop(token, None)

    @property
    def pinned_snapshots(self) -> int:
        return len(self._snapshots)

    @property
    def preserved_pages(self) -> int:
        """Pre-write page images currently kept alive for snapshots."""
        return sum(len(pages) for pages in self._snapshots.values())

    def write(
        self,
        page_id: int,
        data: bytes,
        kind: AccessKind = AccessKind.RANDOM_WRITE,
        charge: bool = True,
    ) -> None:
        with self._lock:
            for pages in self._snapshots.values():
                if page_id not in pages:
                    # None marks "read through to the base store": the page
                    # had no overlay version when the snapshot was pinned.
                    pages[page_id] = self._pages.get(page_id)
            super().write(page_id, data, kind, charge)

    def snapshot_read(self, token: int, page_id: int) -> bytes:
        """The page as it stood when ``token`` was pinned (uncharged)."""
        with self._lock:
            pages = self._snapshots.get(token)
            if pages is None:
                raise KeyError(f"snapshot {token} is not pinned")
            if page_id in pages:
                page = pages[page_id]
            else:
                page = self._pages.get(page_id)
        if page is not None:
            return page.ljust(self.page_size, b"\x00")
        if page_id < self.base._next_id:
            return self.base.read(page_id, charge=False)
        return b"\x00" * self.page_size


class SnapshotPageStore(PageStore):
    """A read-only view of one pinned snapshot of a
    :class:`VersionedOverlayStore`.

    Carries its own :class:`IOStats` (so concurrent readers' charges merge
    honestly, like parallel-engine workers) and a frozen allocation
    horizon; writes raise :class:`ReadOnlyStoreError`.  Closing the view
    unpins the snapshot.
    """

    def __init__(
        self,
        owner: VersionedOverlayStore,
        token: int | None = None,
        stats: IOStats | None = None,
    ):
        super().__init__(owner.page_size, stats if stats is not None else IOStats())
        self.owner = owner
        self.token = token if token is not None else owner.pin_snapshot()
        self._next_id = owner._next_id
        self._closed = False

    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        self._validate_id(page_id)
        if charge:
            self.stats.record(kind)
        return self.owner.snapshot_read(self.token, page_id)

    def write(self, page_id: int, data: bytes, kind=AccessKind.RANDOM_WRITE,
              charge: bool = True) -> None:
        raise ReadOnlyStoreError(
            "snapshot views are read-only; mutate through the owning tree"
        )

    def free(self, page_id: int) -> None:
        raise ReadOnlyStoreError("snapshot views are read-only")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.owner.unpin_snapshot(self.token)
