"""Deterministic fault injection for the paged storage substrate.

:class:`FaultInjectingPageStore` wraps any :class:`PageStore` and injects
the failure modes a real 1999 disk subsystem exhibits, under a seeded RNG
so every test run replays identically:

- **transient I/O errors** (:class:`TransientStorageError`): the operation
  fails but would succeed if reissued — exercised against
  :class:`~repro.storage.nodemanager.NodeManager`'s bounded retry loop;
- **torn writes**: only a prefix of the page reaches the platter before
  the process dies (the tail reads back as zeros);
- **bit flips**: a single bit of a stored page is inverted at rest,
  modelling media decay — every flip must surface as a
  :class:`~repro.storage.errors.PageCorruptionError` on the next checked
  read;
- **crash after N writes** (:class:`CrashError`): the simulated process
  dies at an exact write boundary; all subsequent I/O through this store
  fails until :meth:`revive`, and the crash-matrix tests reopen the file
  as a fresh process would.

The wrapper shares the inner store's allocator and ``IOStats``, and —
critically for the accounting tests — raises *before* delegating, so a
failed attempt is never charged and a retried success is charged exactly
once.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

from repro.storage.errors import CrashError, TransientStorageError
from repro.storage.iostats import AccessKind
from repro.storage.pagestore import PageStore


# ----------------------------------------------------------------------
# Worker-level chaos (the parallel engine's supervision tests)
# ----------------------------------------------------------------------
class SimulatedWorkerDeath(BaseException):
    """Thread-mode stand-in for a killed worker process.

    A ``BaseException`` so it sails past ordinary ``except Exception``
    handlers exactly as a real SIGKILL would sail past everything — only
    the parallel engine's supervisor catches it (and treats it as a dead
    worker: respawn the view, retry the partition, bounded by the retry
    budget).
    """


@dataclass
class WorkerFault:
    """A failure plan shipped inside one partition's payload.

    ``kind``
        ``"hang"`` — stall for ``seconds`` before doing any work;
        ``"die"`` — kill the worker (``os._exit`` in a process,
        :class:`SimulatedWorkerDeath` in a thread);
        ``"raise"`` — raise a :class:`TransientStorageError` from inside
        the partition, modelling an I/O storm that exhausted the
        node-level retries.
    ``seconds``
        Hang duration (``"hang"`` only).
    ``cooperative``
        A cooperative hang checks the query deadline while stalling, so
        the *worker itself* raises ``QueryTimeoutError`` — exercising the
        in-worker timeout path.  A non-cooperative hang ignores the
        deadline (a truly wedged worker); only the parent's per-partition
        wall-clock guard can reclaim it.
    ``sticky``
        A sticky fault survives the supervisor's retry (the respawned
        worker fails again, until the retry budget is spent); a non-sticky
        fault is stripped from the payload on retry, so the retried
        partition succeeds and must produce bit-identical results.
    """

    kind: str
    seconds: float = 0.05
    cooperative: bool = True
    sticky: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("hang", "die", "raise"):
            raise ValueError('kind must be "hang", "die" or "raise"')


def apply_worker_fault(fault: WorkerFault, deadline, in_process: bool) -> None:
    """Execute a :class:`WorkerFault` at the top of a partition."""
    if fault.kind == "raise":
        raise TransientStorageError("injected worker-level I/O storm")
    if fault.kind == "die":
        if in_process:
            os._exit(17)
        raise SimulatedWorkerDeath("injected worker death")
    # hang: stall in small slices so a cooperative hang can notice the
    # deadline mid-stall instead of only after the full sleep.
    end = time.perf_counter() + fault.seconds
    while True:
        if fault.cooperative and deadline is not None:
            deadline.check()
        left = end - time.perf_counter()
        if left <= 0:
            return
        time.sleep(min(0.01, left))


class FaultInjectingPageStore(PageStore):
    """A :class:`PageStore` decorator with scriptable, seeded faults."""

    def __init__(self, inner: PageStore, seed: int = 0):
        # Deliberately skip PageStore.__init__: allocator state lives in
        # the inner store and is delegated below.
        self.inner = inner
        self.page_size = inner.page_size
        self.stats = inner.stats
        self.rng = random.Random(seed)
        self.crashed = False
        self._transient_reads = 0
        self._transient_writes = 0
        self._writes_until_crash: int | None = None
        self._torn_crash = False
        self.reads = 0
        self.writes = 0
        self.faults_injected = 0

    # -- allocator delegation ------------------------------------------
    def allocate(self) -> int:
        return self.inner.allocate()

    def free(self, page_id: int) -> None:
        self.inner.free(page_id)

    def ensure_allocated(self, page_id: int) -> None:
        self.inner.ensure_allocated(page_id)

    def set_allocator_state(self, next_id, free_ids) -> None:
        self.inner.set_allocator_state(next_id, free_ids)

    @property
    def free_page_ids(self) -> list[int]:
        return self.inner.free_page_ids

    @property
    def allocated_pages(self) -> int:
        return self.inner.allocated_pages

    @property
    def _next_id(self) -> int:
        return self.inner._next_id

    def _validate_id(self, page_id: int) -> None:
        self.inner._validate_id(page_id)

    # -- fault scripting -----------------------------------------------
    def fail_reads(self, count: int) -> None:
        """Make the next ``count`` reads raise :class:`TransientStorageError`."""
        self._transient_reads = count

    def fail_writes(self, count: int) -> None:
        """Make the next ``count`` writes raise :class:`TransientStorageError`."""
        self._transient_writes = count

    def crash_after_writes(self, count: int, torn: bool = False) -> None:
        """Die at the ``count``-th upcoming write boundary.

        With ``torn=True`` the fatal write persists a random prefix of the
        page (at least one byte, never the whole page) before the crash —
        the classic torn page.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self._writes_until_crash = count
        self._torn_crash = torn

    def flip_bit(self, page_id: int, bit: int | None = None) -> int:
        """Invert one bit of the stored page at rest; returns the bit index.

        Goes under the inner store's verification and accounting: the
        corruption is only discovered by a later checked read.
        """
        raw = bytearray(self._raw_read(page_id))
        if bit is None:
            bit = self.rng.randrange(len(raw) * 8)
        raw[bit // 8] ^= 1 << (bit % 8)
        self.inner.write(page_id, bytes(raw), charge=False)
        flush = getattr(self.inner, "flush", None)
        if flush is not None:
            flush()  # decay at rest must be visible to other handles
        self.faults_injected += 1
        return bit

    def revive(self) -> None:
        """Clear the crashed flag (a 'new process' over the same store)."""
        self.crashed = False
        self._writes_until_crash = None

    def _raw_read(self, page_id: int) -> bytes:
        """Read without charging and without checksum verification."""
        checked = getattr(self.inner, "checksums", False)
        if checked:
            self.inner.checksums = False
        try:
            return self.inner.read(page_id, charge=False)
        finally:
            if checked:
                self.inner.checksums = True

    # -- the injected I/O path -----------------------------------------
    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> bytes:
        if self.crashed:
            raise CrashError("store crashed; no further I/O")
        if self._transient_reads > 0:
            self._transient_reads -= 1
            self.faults_injected += 1
            raise TransientStorageError(f"injected transient read fault (page {page_id})")
        self.reads += 1
        return self.inner.read(page_id, kind, charge)

    def write(
        self,
        page_id: int,
        data: bytes,
        kind: AccessKind = AccessKind.RANDOM_WRITE,
        charge: bool = True,
    ) -> None:
        if self.crashed:
            raise CrashError("store crashed; no further I/O")
        if self._transient_writes > 0:
            self._transient_writes -= 1
            self.faults_injected += 1
            raise TransientStorageError(f"injected transient write fault (page {page_id})")
        if self._writes_until_crash is not None and self._writes_until_crash == 0:
            self.crashed = True
            self.faults_injected += 1
            if self._torn_crash and len(data) > 1:
                prefix = self.rng.randrange(1, max(2, len(data)))
                self.inner.write(page_id, data[:prefix], kind, charge=False)
            raise CrashError(f"injected crash at write to page {page_id}")
        if self._writes_until_crash is not None:
            self._writes_until_crash -= 1
        self.writes += 1
        self.inner.write(page_id, data, kind, charge)

    # -- passthroughs used by save()/close paths -----------------------
    def flush(self) -> None:
        if self.crashed:
            raise CrashError("store crashed; no further I/O")
        flush = getattr(self.inner, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "FaultInjectingPageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
