"""Zero-copy read-only page store over a saved tree file, backed by mmap.

:class:`MmapPageStore` maps the whole single-file save format of
:mod:`repro.storage.superblock` into the address space once and serves
every :meth:`read` as a :class:`memoryview` slice of the mapping — no
``read()`` syscall, no bytes copy, and no per-read checksum work.  The
integrity contract moves from *per read* to *once at open*:

- ``verify="fsck"`` (what ``HybridTree.open(mmap=True)`` uses via
  :func:`repro.storage.recovery.verify`) audits the entire file — page
  CRCs, reachability, free list, checksum-of-checksums — before the first
  query, so steady-state reads can skip ``unframe_page``'s CRC entirely;
- ``verify="sweep"`` runs a standalone CRC sweep over the mapped pages
  (free pages, legitimately zero-filled holes, are exempt) for raw page
  files that carry no superblock;
- ``verify="none"`` trusts the caller (e.g. the file was fsck'd moments
  ago by other means).

Because the mapping is shared (``MAP_SHARED`` semantics of
``mmap.ACCESS_READ``), any number of worker threads or forked/spawned
worker processes mapping the same file share one copy of the data in the
OS page cache — the property the parallel query engine
(:mod:`repro.engine.parallel`) relies on to scale readers without
multiplying resident memory.

The store is strictly read-only: :meth:`write` and :meth:`free` raise
:class:`~repro.storage.errors.ReadOnlyStoreError`.  Mutating a tree opened
this way fails loudly at the node layer too (frozen
:class:`~repro.core.nodes.DataNode`).
"""

from __future__ import annotations

import mmap
import os

from repro.storage.errors import PageCorruptionError, ReadOnlyStoreError
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, unframe_page
from repro.storage.pagestore import PageStore

VERIFY_MODES = ("fsck", "sweep", "none")

_ZERO_PAGE_CACHE: dict[int, bytes] = {}


def _zero_page(page_size: int) -> bytes:
    page = _ZERO_PAGE_CACHE.get(page_size)
    if page is None:
        page = _ZERO_PAGE_CACHE[page_size] = b"\x00" * page_size
    return page


class MmapPageStore(PageStore):
    """Read-only :class:`PageStore` serving memoryview slices of an mmap.

    Parameters
    ----------
    path:
        A saved tree file (or any file of framed pages).
    page_size:
        Must match the file's page size; ``HybridTree.open`` passes the
        superblock's value.
    stats:
        Shared I/O accountant; reads are charged exactly like
        :class:`~repro.storage.pagestore.FilePageStore` reads, so the
        paper's access accounting is unchanged by the faster transport.
    verify:
        ``"fsck"`` | ``"sweep"`` | ``"none"`` — the at-open integrity
        policy described in the module docstring.
    free_ids:
        Pages exempt from the ``"sweep"`` audit (zero-filled holes).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        stats: IOStats | None = None,
        verify: str = "none",
        free_ids: tuple[int, ...] = (),
    ):
        super().__init__(page_size, stats)
        if verify not in VERIFY_MODES:
            raise ValueError(f"verify must be one of {VERIFY_MODES}")
        self.path = os.fspath(path)
        self._file = open(self.path, "rb")
        size = os.path.getsize(self.path)
        self._next_id = size // page_size
        if size:
            self._mmap: mmap.mmap | None = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
            self._view: memoryview | None = memoryview(self._mmap)
        else:
            self._mmap = None
            self._view = None
        self.verified = False
        if verify == "fsck":
            self._verify_fsck()
        elif verify == "sweep":
            self._verify_sweep(frozenset(free_ids))

    # ------------------------------------------------------------------
    # At-open verification
    # ------------------------------------------------------------------
    def _verify_fsck(self) -> None:
        """Full audit through :func:`repro.storage.recovery.verify`."""
        from repro.storage.recovery import verify as fsck_verify

        report = fsck_verify(self.path)
        if not report.ok:
            self.close()
            raise PageCorruptionError(
                f"{self.path}: mmap open refused, fsck found "
                f"{len(report.errors)} problem(s): " + "; ".join(report.errors[:5])
            )
        self.verified = True

    def _verify_sweep(self, free_ids: frozenset[int]) -> None:
        """CRC-check every mapped page frame once (holes exempt)."""
        for page_id in range(self._next_id):
            if page_id in free_ids:
                continue
            page = self._slice(page_id)
            try:
                unframe_page(page, page_id)
            except PageCorruptionError:
                self.close()
                raise
        self.verified = True

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------
    def _slice(self, page_id: int) -> memoryview | bytes:
        start = page_id * self.page_size
        end = start + self.page_size
        if self._view is None or start >= len(self._view):
            return _zero_page(self.page_size)
        if end > len(self._view):
            # A trailing partial page (never produced by save(); defensive):
            # zero-pad into a private copy, matching FilePageStore.ljust.
            return bytes(self._view[start:]).ljust(self.page_size, b"\x00")
        return self._view[start:end]

    def read(
        self,
        page_id: int,
        kind: AccessKind = AccessKind.RANDOM_READ,
        charge: bool = True,
    ) -> memoryview | bytes:
        """Return a read-only buffer view of the page (no copy).

        The view stays valid until :meth:`close`; consumers that outlive
        the store must copy (``bytes(view)``).
        """
        self._validate_id(page_id)
        if charge:
            self.stats.record(kind)
        return self._slice(page_id)

    def write(
        self,
        page_id: int,
        data: bytes,
        kind: AccessKind = AccessKind.RANDOM_WRITE,
        charge: bool = True,
    ) -> None:
        raise ReadOnlyStoreError(
            f"MmapPageStore({self.path!r}) is read-only; "
            "reopen without mmap to mutate the tree"
        )

    def free(self, page_id: int) -> None:
        raise ReadOnlyStoreError(
            f"MmapPageStore({self.path!r}) is read-only; cannot free pages"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the file.

        Zero-copy node views still referencing the mapping keep it alive:
        the map is released when the last view is garbage-collected (the
        ``BufferError`` mmap would raise is deliberately absorbed so a
        tree handle can always be closed).
        """
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._mmap is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Exported node views pin the mapping; the OS reclaims it
                # once they die.  Dropping our reference is enough here.
                pass
            self._mmap = None
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "MmapPageStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
