"""Byte-level node codecs: packing hybrid-tree nodes into 4096-byte pages.

Every encoded page is *framed*: the 32-byte header of
:func:`repro.storage.page.frame_page` (magic, format version, kind, level,
entry count, payload length, whole-page CRC32, reserved LSN) followed by
the node payload.  ``decode`` verifies the frame before touching the
payload, so a torn write or bit flip anywhere in the page surfaces as a
typed :class:`~repro.storage.errors.PageCorruptionError` instead of
silently decoding garbage.

Payload layouts (little-endian):

Data node payload (header kind=1, level=0, entry_count=count)::

    u8  kind (=1)
    u16 count
    u16 dims
    count * dims * f32   vectors
    count * u32          oids

Index node payload (header kind=2, level=level, entry_count=fanout)::

    u8  kind (=2)
    u16 level
    then the intranode kd-tree in preorder:
        internal:  u8 tag (=1), u16 dim, f32 lsp, f32 rsp, <left>, <right>
        leaf:      u8 tag (=0), u32 child page id

The preorder encoding needs no offsets (11 bytes per internal, 5 per leaf),
comfortably inside the 14/4-byte entry budget the capacity model of
:mod:`repro.storage.page` charges — and that capacity model already
reserves the 32 header bytes — so every node the capacity model admits is
guaranteed to fit its page, asserted in ``encode``.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.kdnodes import KDInternal, KDLeaf, KDNode
from repro.core.nodes import DataNode, IndexNode
from repro.storage.page import (
    PAGE_KIND_DATA,
    PAGE_KIND_INDEX,
    frame_page,
    unframe_page,
)

_KIND_DATA = 1
_KIND_INDEX = 2

_DATA_HEADER = struct.Struct("<BHH")
_INDEX_HEADER = struct.Struct("<BH")
_KD_INTERNAL = struct.Struct("<BHff")
_KD_LEAF = struct.Struct("<BI")


class HybridNodeCodec:
    """Encode/decode hybrid-tree nodes (implements
    :class:`repro.storage.nodemanager.NodeCodec`)."""

    def __init__(self, dims: int, data_capacity: int, page_size: int = 4096):
        self.dims = dims
        self.data_capacity = data_capacity
        self.page_size = page_size

    # ------------------------------------------------------------------
    def encode(self, node: DataNode | IndexNode) -> bytes:
        """Serialize ``node`` into a full framed, CRC-protected page image."""
        if isinstance(node, DataNode):
            payload = self._encode_data(node)
            kind, level, entries = PAGE_KIND_DATA, 0, node.count
        elif isinstance(node, IndexNode):
            payload = self._encode_index(node)
            kind, level, entries = PAGE_KIND_INDEX, node.level, node.fanout
        else:
            raise TypeError(f"cannot encode {type(node).__name__}")
        if len(payload) > self.page_size - 32:
            raise ValueError(
                f"encoded node ({len(payload)} bytes + 32 header) exceeds "
                f"page size {self.page_size}"
            )
        return frame_page(payload, self.page_size, kind, level, entries)

    def decode(self, page: bytes) -> DataNode | IndexNode:
        """Verify the page frame and decode its payload.

        Raises :class:`PageCorruptionError` if the frame check fails and
        ``ValueError`` if an intact frame holds an inconsistent payload.
        """
        header, data = unframe_page(page)
        if header.kind == PAGE_KIND_DATA and data[0] == _KIND_DATA:
            return self._decode_data(data)
        if header.kind == PAGE_KIND_INDEX and data[0] == _KIND_INDEX:
            return self._decode_index(data)
        raise ValueError(f"unknown node kind {header.kind}")

    # ------------------------------------------------------------------
    def _encode_data(self, node: DataNode) -> bytes:
        header = _DATA_HEADER.pack(_KIND_DATA, node.count, node.dims)
        vectors = np.ascontiguousarray(node.points(), dtype="<f4").tobytes()
        oids = np.ascontiguousarray(node.live_oids(), dtype="<u4").tobytes()
        return header + vectors + oids

    def _decode_data(self, data: bytes) -> DataNode:
        _, count, dims = _DATA_HEADER.unpack_from(data, 0)
        if dims != self.dims:
            raise ValueError(f"page dims {dims} != codec dims {self.dims}")
        node = DataNode(dims, self.data_capacity)
        offset = _DATA_HEADER.size
        vec_bytes = count * dims * 4
        vectors = np.frombuffer(data, dtype="<f4", count=count * dims, offset=offset)
        oids = np.frombuffer(data, dtype="<u4", count=count, offset=offset + vec_bytes)
        node.vectors[:count] = vectors.reshape(count, dims)
        node.oids[:count] = oids
        node.count = count
        return node

    # ------------------------------------------------------------------
    def _encode_index(self, node: IndexNode) -> bytes:
        parts = [_INDEX_HEADER.pack(_KIND_INDEX, node.level)]

        def pack(kd: KDNode) -> None:
            if isinstance(kd, KDLeaf):
                parts.append(_KD_LEAF.pack(0, kd.child_id))
                return
            parts.append(_KD_INTERNAL.pack(1, kd.dim, kd.lsp, kd.rsp))
            pack(kd.left)
            pack(kd.right)

        pack(node.kd_root)
        return b"".join(parts)

    def _decode_index(self, data: bytes) -> IndexNode:
        _, level = _INDEX_HEADER.unpack_from(data, 0)
        offset = _INDEX_HEADER.size

        def unpack() -> KDNode:
            nonlocal offset
            tag = data[offset]
            if tag == 0:
                _, child_id = _KD_LEAF.unpack_from(data, offset)
                offset += _KD_LEAF.size
                return KDLeaf(child_id)
            _, dim, lsp, rsp = _KD_INTERNAL.unpack_from(data, offset)
            offset += _KD_INTERNAL.size
            left = unpack()
            right = unpack()
            return KDInternal(dim, lsp, rsp, left, right)

        return IndexNode(unpack(), level)
