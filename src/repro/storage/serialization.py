"""Byte-level node codecs: packing hybrid-tree nodes into 4096-byte pages.

Every encoded page is *framed*: the 32-byte header of
:func:`repro.storage.page.frame_page` (magic, format version, kind, level,
entry count, payload length, whole-page CRC32, reserved LSN) followed by
the node payload.  ``decode`` verifies the frame before touching the
payload, so a torn write or bit flip anywhere in the page surfaces as a
typed :class:`~repro.storage.errors.PageCorruptionError` instead of
silently decoding garbage.

Payload layouts (little-endian):

Data node payload (header kind=1, level=0, entry_count=count)::

    u8  kind (=1)
    u16 count
    u16 dims
    count * dims * f32   vectors
    count * u32          oids

Index node payload (header kind=2, level=level, entry_count=fanout)::

    u8  kind (=2)
    u16 level
    then the intranode kd-tree in preorder:
        internal:  u8 tag (=1), u16 dim, f32 lsp, f32 rsp, <left>, <right>
        leaf:      u8 tag (=0), u32 child page id

The preorder encoding needs no offsets (11 bytes per internal, 5 per leaf),
comfortably inside the 14/4-byte entry budget the capacity model of
:mod:`repro.storage.page` charges — and that capacity model already
reserves the 32 header bytes — so every node the capacity model admits is
guaranteed to fit its page, asserted in ``encode``.  Both kd walks use an
explicit stack, not recursion: a degenerate intranode kd-tree on a large
page (e.g. ~5900 internals at 64 KiB) would otherwise blow Python's
recursion limit on the query-path fault-in.

Two decode modes (``copy`` constructor flag):

- ``copy=True`` (default): data-node vectors/oids are copied into private
  mutable arrays — the mode every writable tree runs in.
- ``copy=False``: vectors/oids become read-only ``np.frombuffer`` views
  over the page buffer itself and the node arrives *frozen*
  (:class:`~repro.core.nodes.DataNode.from_views`).  Over an mmapped page
  (:class:`~repro.storage.mmapstore.MmapPageStore`) this makes fault-in
  allocation-free: no vector bytes are copied between the OS page cache
  and the query kernels.

``verify_checksums=False`` additionally skips the per-decode CRC sweep —
only valid when the backing store verified the whole file at open time.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.kdnodes import KDInternal, KDLeaf, KDNode
from repro.core.nodes import DataNode, IndexNode
from repro.storage.page import (
    PAGE_KIND_DATA,
    PAGE_KIND_INDEX,
    frame_page,
    unframe_page,
)

_KIND_DATA = 1
_KIND_INDEX = 2

_DATA_HEADER = struct.Struct("<BHH")
_INDEX_HEADER = struct.Struct("<BH")
_KD_INTERNAL = struct.Struct("<BHff")
_KD_LEAF = struct.Struct("<BI")


class HybridNodeCodec:
    """Encode/decode hybrid-tree nodes (implements
    :class:`repro.storage.nodemanager.NodeCodec`).

    ``copy`` and ``verify_checksums`` select the zero-copy mmap read path
    described in the module docstring; the defaults reproduce the original
    copying, always-verified behaviour bit for bit.
    """

    def __init__(
        self,
        dims: int,
        data_capacity: int,
        page_size: int = 4096,
        *,
        copy: bool = True,
        verify_checksums: bool = True,
    ):
        self.dims = dims
        self.data_capacity = data_capacity
        self.page_size = page_size
        self.copy = copy
        self.verify_checksums = verify_checksums

    # ------------------------------------------------------------------
    def encode(self, node: DataNode | IndexNode) -> bytes:
        """Serialize ``node`` into a full framed, CRC-protected page image."""
        if isinstance(node, DataNode):
            payload = self._encode_data(node)
            kind, level, entries = PAGE_KIND_DATA, 0, node.count
        elif isinstance(node, IndexNode):
            payload = self._encode_index(node)
            kind, level, entries = PAGE_KIND_INDEX, node.level, node.fanout
        else:
            raise TypeError(f"cannot encode {type(node).__name__}")
        if len(payload) > self.page_size - 32:
            raise ValueError(
                f"encoded node ({len(payload)} bytes + 32 header) exceeds "
                f"page size {self.page_size}"
            )
        return frame_page(payload, self.page_size, kind, level, entries)

    def decode(self, page: bytes | memoryview) -> DataNode | IndexNode:
        """Verify the page frame and decode its payload.

        Raises :class:`PageCorruptionError` if the frame check fails and
        ``ValueError`` if an intact frame holds an inconsistent payload.
        """
        header, data = unframe_page(page, verify_crc=self.verify_checksums)
        if header.kind == PAGE_KIND_DATA and data[0] == _KIND_DATA:
            return self._decode_data(data)
        if header.kind == PAGE_KIND_INDEX and data[0] == _KIND_INDEX:
            return self._decode_index(data)
        raise ValueError(f"unknown node kind {header.kind}")

    # ------------------------------------------------------------------
    def _encode_data(self, node: DataNode) -> bytes:
        header = _DATA_HEADER.pack(_KIND_DATA, node.count, node.dims)
        vectors = np.ascontiguousarray(node.points(), dtype="<f4").tobytes()
        oids = np.ascontiguousarray(node.live_oids(), dtype="<u4").tobytes()
        return header + vectors + oids

    def _decode_data(self, data: bytes | memoryview) -> DataNode:
        _, count, dims = _DATA_HEADER.unpack_from(data, 0)
        if dims != self.dims:
            raise ValueError(f"page dims {dims} != codec dims {self.dims}")
        # A CRC-valid page can still be inconsistent with *this* codec's
        # capacity model (a file produced under different parameters, or a
        # future format revision): reject it with a typed error before the
        # array math turns it into a cryptic broadcast failure.
        if count > self.data_capacity:
            raise ValueError(
                f"data page holds {count} entries, exceeding this codec's "
                f"capacity of {self.data_capacity} ({dims} dims, "
                f"{self.page_size}-byte pages)"
            )
        offset = _DATA_HEADER.size
        vec_bytes = count * dims * 4
        expected = offset + vec_bytes + count * 4
        if len(data) != expected:
            raise ValueError(
                f"data page payload is {len(data)} bytes, expected {expected} "
                f"for {count} entries of {dims} dims"
            )
        vectors = np.frombuffer(data, dtype="<f4", count=count * dims, offset=offset)
        oids = np.frombuffer(data, dtype="<u4", count=count, offset=offset + vec_bytes)
        if not self.copy:
            return DataNode.from_views(
                vectors.reshape(count, dims), oids, capacity=self.data_capacity
            )
        node = DataNode(dims, self.data_capacity)
        node.vectors[:count] = vectors.reshape(count, dims)
        node.oids[:count] = oids
        node.count = count
        return node

    # ------------------------------------------------------------------
    def _encode_index(self, node: IndexNode) -> bytes:
        parts = [_INDEX_HEADER.pack(_KIND_INDEX, node.level)]
        stack: list[KDNode] = [node.kd_root]
        while stack:
            kd = stack.pop()
            if isinstance(kd, KDLeaf):
                parts.append(_KD_LEAF.pack(0, kd.child_id))
                continue
            parts.append(_KD_INTERNAL.pack(1, kd.dim, kd.lsp, kd.rsp))
            # Preorder: left subtree is emitted next, so it is pushed last.
            stack.append(kd.right)
            stack.append(kd.left)
        return b"".join(parts)

    def _decode_index(self, data: bytes | memoryview) -> IndexNode:
        _, level = _INDEX_HEADER.unpack_from(data, 0)
        offset = _INDEX_HEADER.size
        size = len(data)
        # Rebuild the preorder stream bottom-up with an explicit stack of
        # open internal splits: [dim, lsp, rsp, left-subtree-or-None].  A
        # completed subtree fills its parent's left slot or, if that is
        # already taken, closes the parent (both children known).
        pending: list[list] = []
        root: KDNode | None = None
        while root is None:
            if offset >= size:
                raise ValueError("index page payload truncated mid kd-tree")
            if data[offset] == 0:
                _, child_id = _KD_LEAF.unpack_from(data, offset)
                offset += _KD_LEAF.size
                done: KDNode = KDLeaf(child_id)
                while True:
                    if not pending:
                        root = done
                        break
                    frame = pending[-1]
                    if frame[3] is None:
                        frame[3] = done
                        break
                    pending.pop()
                    done = KDInternal(frame[0], frame[1], frame[2], frame[3], done)
            else:
                _, dim, lsp, rsp = _KD_INTERNAL.unpack_from(data, offset)
                offset += _KD_INTERNAL.size
                pending.append([dim, lsp, rsp, None])
        return IndexNode(root, level)
