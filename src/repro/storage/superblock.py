"""The saved-tree commit record: blob pages plus a trailing superblock.

A saved hybrid tree is ONE file (no sidecars), laid out as::

    [0, page_count)          node pages, at their stable allocator ids
                             (freed pages are zero-filled holes)
    [page_count, ...)        blob pages: named byte streams chunked into
                             framed pages (the ELS table, the free list,
                             the data-space bounds — all in one .npz blob)
    last page                the superblock: a framed JSON manifest with
                             the root page id, page count, tree parameters,
                             blob locations and a checksum-of-checksums
                             over all node pages

Because everything lives in one file, ``HybridTree.save`` publishes a new
tree with a single atomic ``os.replace`` — there is no window in which the
pages, the ELS table and the catalog can disagree, which is exactly the
crash-consistency hole the old three-sidecar format had.  The superblock is
written last and the file is fsynced before the rename, so a crash at any
write boundary leaves either the complete old file or the complete new one.

``read_superblock`` discovers the page size by parsing the last page: the
frame's whole-page CRC only validates at the true page size, and the JSON
manifest records the size again for a consistency cross-check.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.storage.errors import PageCorruptionError
from repro.storage.page import (
    PAGE_HEADER_SIZE,
    PAGE_KIND_BLOB,
    PAGE_KIND_SUPERBLOCK,
    frame_page,
    unframe_page,
)

SUPERBLOCK_FORMAT = 1

_CANDIDATE_PAGE_SIZES = (4096, 512, 1024, 2048, 8192, 16384, 32768, 65536)


def checksum_of_checksums(crcs: list[int]) -> int:
    """Fold the per-page CRC32s (in page-id order) into one u32."""
    packed = struct.pack(f"<{len(crcs)}I", *crcs) if crcs else b""
    return zlib.crc32(packed) & 0xFFFFFFFF


def append_tail(store, manifest: dict, blobs: dict[str, bytes]) -> None:
    """Write ``blobs`` as framed pages after the node pages, then the
    superblock as the final page.

    ``store`` must be a page store whose allocator currently ends at the
    last node page (``save`` guarantees this); blob pages and the
    superblock take the ids after it.  ``manifest`` is extended in place
    with the blob locations.
    """
    page_size = store.page_size
    chunk = page_size - PAGE_HEADER_SIZE
    locations: dict[str, dict[str, int]] = {}
    for name in sorted(blobs):
        blob = blobs[name]
        start = store._next_id
        pages = 0
        for off in range(0, len(blob), chunk) or [0]:
            pid = store._next_id
            store.ensure_allocated(pid)
            store.write(
                pid,
                frame_page(blob[off : off + chunk], page_size, PAGE_KIND_BLOB),
                charge=False,
            )
            pages += 1
        locations[name] = {"start": start, "pages": pages, "bytes": len(blob)}
    manifest["blobs"] = locations
    payload = json.dumps(manifest, sort_keys=True).encode()
    pid = store._next_id
    store.ensure_allocated(pid)
    store.write(pid, frame_page(payload, page_size, PAGE_KIND_SUPERBLOCK), charge=False)


def read_superblock(path: str | os.PathLike) -> tuple[dict, int]:
    """Locate, verify and parse the superblock of a saved tree file.

    Returns ``(manifest, page_size)``.  Raises ``FileNotFoundError`` if the
    file is absent and :class:`PageCorruptionError` if no page size yields
    a valid superblock as the last page (truncated file, torn superblock,
    or a pre-superblock-format file).
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    reasons: list[str] = []
    with open(path, "rb") as f:
        for page_size in _CANDIDATE_PAGE_SIZES:
            if size < page_size or size % page_size:
                continue
            f.seek(size - page_size)
            page = f.read(page_size)
            try:
                header, payload = unframe_page(page, size // page_size - 1)
            except PageCorruptionError as exc:
                reasons.append(f"page_size {page_size}: {exc.reason}")
                continue
            if header.kind != PAGE_KIND_SUPERBLOCK:
                reasons.append(f"page_size {page_size}: last page kind {header.kind}")
                continue
            manifest = json.loads(payload.decode())
            if manifest.get("page_size") != page_size:
                reasons.append(
                    f"page_size {page_size}: manifest says {manifest.get('page_size')}"
                )
                continue
            return manifest, page_size
    raise PageCorruptionError(
        "no valid superblock found (truncated, torn, or not a saved tree): "
        + ("; ".join(reasons) if reasons else "file size matches no page size")
    )


def read_blob(path: str | os.PathLike, manifest: dict, name: str, page_size: int) -> bytes:
    """Reassemble the named blob from its framed pages."""
    loc = manifest["blobs"][name]
    parts: list[bytes] = []
    with open(path, "rb") as f:
        for pid in range(loc["start"], loc["start"] + loc["pages"]):
            f.seek(pid * page_size)
            header, payload = unframe_page(
                f.read(page_size).ljust(page_size, b"\x00"), pid
            )
            if header.kind != PAGE_KIND_BLOB:
                raise PageCorruptionError(
                    f"expected blob page, found kind {header.kind}", pid
                )
            parts.append(payload)
    blob = b"".join(parts)
    if len(blob) != loc["bytes"]:
        raise PageCorruptionError(
            f"blob {name!r}: reassembled {len(blob)} bytes, manifest says {loc['bytes']}"
        )
    return blob
