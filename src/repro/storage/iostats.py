"""I/O accounting: the simulated disk's access counters.

The paper measures "average number of disk accesses required to execute a
query" and normalizes it against a linear scan, charging sequential accesses
at one tenth the cost of random accesses ("sequential disk accesses are about
10 times faster compared to random accesses", Section 4).  ``IOStats`` is the
single place those conventions live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AccessKind(Enum):
    """How a page was touched, for cost-weighting purposes."""

    RANDOM_READ = "random_read"
    RANDOM_WRITE = "random_write"
    SEQUENTIAL_READ = "sequential_read"
    SEQUENTIAL_WRITE = "sequential_write"


SEQUENTIAL_SPEEDUP = 10.0
"""Random access cost / sequential access cost (Section 4 of the paper)."""


@dataclass
class IOStats:
    """Counters for page accesses, split by kind.

    Every index structure routes node visits through a shared ``IOStats`` via
    its :class:`~repro.storage.nodemanager.NodeManager`; the evaluation
    harness snapshots these counters around each query.
    """

    random_reads: int = 0
    random_writes: int = 0
    sequential_reads: int = 0
    sequential_writes: int = 0
    _checkpoints: list[tuple[int, int, int, int]] = field(default_factory=list, repr=False)

    def record(self, kind: AccessKind, pages: int = 1) -> None:
        """Record ``pages`` accesses of the given ``kind``."""
        if pages < 0:
            raise ValueError("pages must be non-negative")
        if kind is AccessKind.RANDOM_READ:
            self.random_reads += pages
        elif kind is AccessKind.RANDOM_WRITE:
            self.random_writes += pages
        elif kind is AccessKind.SEQUENTIAL_READ:
            self.sequential_reads += pages
        else:
            self.sequential_writes += pages

    @property
    def total_accesses(self) -> int:
        """Raw page accesses regardless of kind."""
        return (
            self.random_reads
            + self.random_writes
            + self.sequential_reads
            + self.sequential_writes
        )

    @property
    def random_accesses(self) -> int:
        return self.random_reads + self.random_writes

    @property
    def sequential_accesses(self) -> int:
        return self.sequential_reads + self.sequential_writes

    def weighted_cost(self) -> float:
        """Accesses in random-access units (sequential charged at 1/10)."""
        return self.random_accesses + self.sequential_accesses / SEQUENTIAL_SPEEDUP

    def reset(self) -> None:
        """Zero all counters and drop checkpoints."""
        self.random_reads = 0
        self.random_writes = 0
        self.sequential_reads = 0
        self.sequential_writes = 0
        self._checkpoints.clear()

    def checkpoint(self) -> None:
        """Push the current counter values; pair with :meth:`since_checkpoint`."""
        self._checkpoints.append(
            (self.random_reads, self.random_writes, self.sequential_reads, self.sequential_writes)
        )

    def since_checkpoint(self) -> "IOStats":
        """Pop the latest checkpoint and return the delta as a new ``IOStats``."""
        if not self._checkpoints:
            raise RuntimeError("since_checkpoint() called without a matching checkpoint()")
        rr, rw, sr, sw = self._checkpoints.pop()
        return IOStats(
            random_reads=self.random_reads - rr,
            random_writes=self.random_writes - rw,
            sequential_reads=self.sequential_reads - sr,
            sequential_writes=self.sequential_writes - sw,
        )
