"""Paged storage substrate.

The hybrid-tree paper reports *disk accesses per query* on 4096-byte pages as
its primary performance metric.  This subpackage provides the simulated disk
that makes those numbers meaningful in a pure-Python reproduction:

- :mod:`repro.storage.page` -- page-size constants and byte-budget helpers.
- :mod:`repro.storage.iostats` -- the I/O accountant distinguishing random
  from sequential page accesses (the paper charges sequential accesses at one
  tenth of a random access).
- :mod:`repro.storage.pagestore` -- page allocators: an in-memory store used
  by the benchmarks and a real file-backed store used to test persistence.
- :mod:`repro.storage.buffer` -- an LRU buffer pool.
- :mod:`repro.storage.nodemanager` -- the node cache every index runs through;
  it charges one page access per node visit and, when file-backed, round-trips
  nodes through ``struct``-packed pages.
- :mod:`repro.storage.serialization` -- byte-level node codecs.
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_HEADER_SIZE,
    PageLayout,
    data_node_capacity,
    kdtree_node_capacity,
    rtree_node_capacity,
    srtree_node_capacity,
    sstree_node_capacity,
)
from repro.storage.pagestore import FilePageStore, InMemoryPageStore, PageStore

__all__ = [
    "AccessKind",
    "DEFAULT_PAGE_SIZE",
    "FilePageStore",
    "InMemoryPageStore",
    "IOStats",
    "LRUBufferPool",
    "NodeManager",
    "PAGE_HEADER_SIZE",
    "PageLayout",
    "PageStore",
    "data_node_capacity",
    "kdtree_node_capacity",
    "rtree_node_capacity",
    "srtree_node_capacity",
    "sstree_node_capacity",
]
