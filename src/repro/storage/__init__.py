"""Paged storage substrate.

The hybrid-tree paper reports *disk accesses per query* on 4096-byte pages as
its primary performance metric.  This subpackage provides the simulated disk
that makes those numbers meaningful in a pure-Python reproduction:

- :mod:`repro.storage.page` -- page-size constants and byte-budget helpers.
- :mod:`repro.storage.iostats` -- the I/O accountant distinguishing random
  from sequential page accesses (the paper charges sequential accesses at one
  tenth of a random access).
- :mod:`repro.storage.pagestore` -- page allocators: an in-memory store used
  by the benchmarks and a real file-backed store used to test persistence.
- :mod:`repro.storage.mmapstore` -- read-only zero-copy store over a saved
  tree file (mmap views, verify-once-at-open CRC).
- :mod:`repro.storage.buffer` -- an LRU buffer pool.
- :mod:`repro.storage.nodemanager` -- the node cache every index runs through;
  it charges one page access per node visit and, when file-backed, round-trips
  nodes through ``struct``-packed pages.
- :mod:`repro.storage.serialization` -- byte-level node codecs; every page
  is framed with a header and whole-page CRC32 (:mod:`repro.storage.page`).
- :mod:`repro.storage.errors` -- the typed storage exception hierarchy
  (corruption, transient faults, simulated crashes).
- :mod:`repro.storage.faults` -- a seeded fault-injecting store decorator.
- :mod:`repro.storage.superblock` -- the single-file saved-tree commit
  record (blob pages + trailing superblock).
- :mod:`repro.storage.recovery` -- fsck (:func:`verify`) and data-page
  salvage for saved tree files.
- :mod:`repro.storage.wal` -- the write-ahead log: CRC-framed, LSN-stamped
  mutation records with group-commit fsync, checkpointing, and replay.
"""

from repro.storage.buffer import LRUBufferPool
from repro.storage.errors import (
    CrashError,
    PageCorruptionError,
    ReadOnlyStoreError,
    RecoveryError,
    StorageError,
    TransientStorageError,
)
from repro.storage.faults import FaultInjectingPageStore
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PAGE_HEADER_SIZE,
    PageHeader,
    PageLayout,
    data_node_capacity,
    frame_page,
    kdtree_node_capacity,
    rtree_node_capacity,
    srtree_node_capacity,
    sstree_node_capacity,
    unframe_page,
)
from repro.storage.mmapstore import MmapPageStore
from repro.storage.pagestore import (
    FilePageStore,
    InMemoryPageStore,
    OverlayPageStore,
    PageStore,
    SnapshotPageStore,
    VersionedOverlayStore,
)
from repro.storage.wal import WriteAheadLog

__all__ = [
    "AccessKind",
    "CrashError",
    "DEFAULT_PAGE_SIZE",
    "FaultInjectingPageStore",
    "FilePageStore",
    "InMemoryPageStore",
    "IOStats",
    "LRUBufferPool",
    "MmapPageStore",
    "NodeManager",
    "OverlayPageStore",
    "PAGE_HEADER_SIZE",
    "PageCorruptionError",
    "PageHeader",
    "PageLayout",
    "PageStore",
    "ReadOnlyStoreError",
    "RecoveryError",
    "SnapshotPageStore",
    "StorageError",
    "TransientStorageError",
    "VersionedOverlayStore",
    "WriteAheadLog",
    "data_node_capacity",
    "frame_page",
    "kdtree_node_capacity",
    "rtree_node_capacity",
    "srtree_node_capacity",
    "sstree_node_capacity",
    "unframe_page",
]
