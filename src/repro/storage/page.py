"""Page-size constants and byte-budget capacity calculations.

The paper's central structural claim (Table 1) is that the fanout of a
kd-tree-organised node is *independent of dimensionality* while the fanout of
bounding-region nodes shrinks linearly with the number of dimensions.  Both
follow directly from the byte cost of one child entry under a fixed page
budget, so we make those byte costs explicit here and derive every node
capacity from them.  All index structures in this repository size their nodes
through this module; nothing hard-codes a fanout.

Byte layout conventions (little-endian, matching
:mod:`repro.storage.serialization`):

- feature coordinates are ``float32`` (4 bytes), as is standard for feature
  vectors;
- object identifiers and page identifiers are ``uint32`` (4 bytes);
- a kd-tree internal node stores the split dimension (``uint16``), the two
  split positions lsp and rsp (``float32`` each), and two intra-node child
  offsets (``uint16`` each): 14 bytes total;
- a kd-tree leaf stores the child page id: 4 bytes.  Encoded-live-space codes
  are *not* charged against the page (Section 3.4 of the paper keeps them in
  memory; their footprint is reported separately by ``ELSTable.memory_bytes``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.storage.errors import PageCorruptionError

DEFAULT_PAGE_SIZE = 4096
"""Page size in bytes used throughout the paper's evaluation (Section 4)."""

PAGE_HEADER_SIZE = 32
"""Per-page header, as actually written by :func:`frame_page`:
magic (u32), format version (u16), kind (u8), level (u8), entry count
(u32), payload length (u32), CRC32 (u32), LSN (u64, reserved for a future
write-ahead log, written as 0), 4 bytes padding."""

PAGE_MAGIC = 0x48594254  # "HYBT"
PAGE_FORMAT_VERSION = 1

PAGE_KIND_DATA = 1
PAGE_KIND_INDEX = 2
PAGE_KIND_BLOB = 3
"""Sidecar byte stream spilled across pages (ELS table, free list)."""
PAGE_KIND_SUPERBLOCK = 4
"""The commit record: always the last page of a saved tree file."""

_HEADER = struct.Struct("<IHBBIIIQ4x")
assert _HEADER.size == PAGE_HEADER_SIZE


@dataclass(frozen=True)
class PageHeader:
    """Decoded per-page header (see :data:`PAGE_HEADER_SIZE` for layout)."""

    kind: int
    level: int
    entry_count: int
    payload_length: int
    crc: int
    lsn: int = 0
    version: int = PAGE_FORMAT_VERSION


def _page_crc(header_no_crc: bytes, rest: bytes) -> int:
    """CRC32 over the whole page with the CRC field itself zeroed."""
    return zlib.crc32(rest, zlib.crc32(header_no_crc)) & 0xFFFFFFFF


def frame_page(
    payload: bytes,
    page_size: int,
    kind: int,
    level: int = 0,
    entry_count: int = 0,
    lsn: int = 0,
) -> bytes:
    """Wrap ``payload`` into a full self-checking page image.

    The CRC covers *every* byte of the page (header with the CRC field
    zeroed, payload, and zero padding), so any single-bit flip anywhere in
    the stored page — including the header and the unused tail — is
    detected by :func:`unframe_page`.
    """
    if len(payload) > page_size - PAGE_HEADER_SIZE:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds page budget "
            f"{page_size - PAGE_HEADER_SIZE}"
        )
    body = payload.ljust(page_size - PAGE_HEADER_SIZE, b"\x00")
    bare = _HEADER.pack(
        PAGE_MAGIC, PAGE_FORMAT_VERSION, kind, level, entry_count, len(payload), 0, lsn
    )
    crc = _page_crc(bare, body)
    header = _HEADER.pack(
        PAGE_MAGIC, PAGE_FORMAT_VERSION, kind, level, entry_count, len(payload), crc, lsn
    )
    return header + body


def unframe_page(
    page: bytes | memoryview,
    page_id: int | None = None,
    verify_crc: bool = True,
) -> tuple[PageHeader, bytes | memoryview]:
    """Parse and verify a framed page; the inverse of :func:`frame_page`.

    Raises :class:`PageCorruptionError` on bad magic, unknown format
    version, an out-of-range payload length, or a CRC mismatch.

    Accepts any bytes-like buffer and returns the payload as a slice of the
    same type — passing a ``memoryview`` (e.g. over an mmapped page) yields
    a zero-copy payload view.  ``verify_crc=False`` skips only the checksum
    comparison (magic, version and payload bounds are always checked): the
    mode for stores that ran a whole-file CRC sweep at open time
    (:class:`~repro.storage.mmapstore.MmapPageStore`) and must not pay the
    checksum on every steady-state read.
    """
    if len(page) < PAGE_HEADER_SIZE:
        raise PageCorruptionError(
            f"page truncated to {len(page)} bytes", page_id
        )
    magic, version, kind, level, entry_count, payload_len, crc, lsn = (
        _HEADER.unpack_from(page, 0)
    )
    if magic != PAGE_MAGIC:
        raise PageCorruptionError(f"bad magic 0x{magic:08x}", page_id)
    if version != PAGE_FORMAT_VERSION:
        raise PageCorruptionError(f"unsupported format version {version}", page_id)
    if payload_len > len(page) - PAGE_HEADER_SIZE:
        raise PageCorruptionError(
            f"payload length {payload_len} exceeds page", page_id
        )
    if verify_crc:
        # Verify over the page's *actual* header bytes (only the CRC field
        # zeroed), not a re-packed header: re-packing would regenerate the
        # pad bytes as zeros and let a flip there go unnoticed.  The CRC is
        # chained over slices so buffer views need no concatenation copy.
        actual = zlib.crc32(page[:16])
        actual = zlib.crc32(b"\x00\x00\x00\x00", actual)
        actual = zlib.crc32(page[20:PAGE_HEADER_SIZE], actual)
        actual = zlib.crc32(page[PAGE_HEADER_SIZE:], actual) & 0xFFFFFFFF
        if actual != crc:
            raise PageCorruptionError("CRC32 mismatch", page_id)
    header = PageHeader(kind, level, entry_count, payload_len, crc, lsn, version)
    return header, page[PAGE_HEADER_SIZE : PAGE_HEADER_SIZE + payload_len]

FLOAT_SIZE = 4
OID_SIZE = 4
PAGE_ID_SIZE = 4

KD_INTERNAL_SIZE = 2 + FLOAT_SIZE + FLOAT_SIZE + 2 + 2
"""Split dim (u16) + lsp (f32) + rsp (f32) + two intranode offsets (u16)."""

KD_LEAF_SIZE = PAGE_ID_SIZE
"""A kd-tree leaf is just the child page pointer."""


@dataclass(frozen=True)
class PageLayout:
    """Byte budget of a page: total size and the space usable for entries."""

    page_size: int = DEFAULT_PAGE_SIZE
    header_size: int = PAGE_HEADER_SIZE

    def __post_init__(self) -> None:
        if self.page_size <= self.header_size:
            raise ValueError(
                f"page_size ({self.page_size}) must exceed header_size ({self.header_size})"
            )

    @property
    def usable(self) -> int:
        """Bytes available to entries after the header."""
        return self.page_size - self.header_size


DATA_PAYLOAD_HEADER_SIZE = 5
"""Bytes the serialized data-node payload spends before the entries
(``u8 kind + u16 count + u16 dims``, see :mod:`repro.storage.serialization`).
The capacity model must reserve them: an exactly-full data node is a legal,
reachable state (inserts fill to capacity before splitting), and without
this reservation its encoding exceeded the page by exactly these bytes."""


def data_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum number of (vector, oid) entries a data page can hold.

    One entry costs ``dims * 4 + 4`` bytes, after reserving the serialized
    payload's own header (:data:`DATA_PAYLOAD_HEADER_SIZE`).  Identical for
    every index structure: data pages always store raw feature vectors.
    """
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + OID_SIZE
    capacity = (layout.usable - DATA_PAYLOAD_HEADER_SIZE) // entry
    if capacity < 2:
        raise ValueError(
            f"page of {layout.page_size} bytes cannot hold 2 entries of {dims} dims"
        )
    return capacity


def kdtree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum number of children of a kd-tree-organised index node.

    A node with ``c`` children stores ``c - 1`` kd internal nodes and ``c``
    kd leaves, so the budget constraint is
    ``(c - 1) * KD_INTERNAL_SIZE + c * KD_LEAF_SIZE <= usable``.

    The result does not depend on ``dims`` — the paper's headline property.
    ``dims`` is accepted (and ignored) so that all capacity functions share a
    signature.
    """
    del dims  # fanout is dimension-independent by construction
    layout = layout or PageLayout()
    capacity = (layout.usable + KD_INTERNAL_SIZE) // (KD_INTERNAL_SIZE + KD_LEAF_SIZE)
    return max(capacity, 2)


def rtree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum children of an R-tree node: entry = bounding box + pointer.

    One entry costs ``2 * dims * 4 + 4`` bytes (low and high corner per
    dimension), so fanout decreases linearly with dimensionality.
    """
    layout = layout or PageLayout()
    entry = 2 * dims * FLOAT_SIZE + PAGE_ID_SIZE
    return max(layout.usable // entry, 2)


def sstree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum children of an SS-tree node: entry = centroid + radius + ptr.

    One entry costs ``dims * 4 + 4 + 4`` bytes.
    """
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + FLOAT_SIZE + PAGE_ID_SIZE
    return max(layout.usable // entry, 2)


def srtree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum children of an SR-tree node: entry = sphere + rect + ptr.

    Katayama & Satoh store both a bounding sphere (centroid + radius) and a
    bounding rectangle per entry: ``dims*4 + 4 + 2*dims*4 + 4`` bytes.  This
    is why the SR-tree has the lowest fanout of all structures at high
    dimensionality (e.g. 5 children at 64-d on 4K pages).
    """
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + FLOAT_SIZE + 2 * dims * FLOAT_SIZE + PAGE_ID_SIZE
    return max(layout.usable // entry, 2)


def sequential_scan_pages(count: int, dims: int, layout: PageLayout | None = None) -> int:
    """Number of pages a linear scan of ``count`` ``dims``-d vectors reads.

    This is the paper's denominator for the normalized I/O cost:
    ``ceil(num_tuples * tuple_size / page_size)`` with densely packed pages.
    """
    layout = layout or PageLayout()
    per_page = data_node_capacity(dims, layout)
    return -(-count // per_page)  # ceil division
