"""Page-size constants and byte-budget capacity calculations.

The paper's central structural claim (Table 1) is that the fanout of a
kd-tree-organised node is *independent of dimensionality* while the fanout of
bounding-region nodes shrinks linearly with the number of dimensions.  Both
follow directly from the byte cost of one child entry under a fixed page
budget, so we make those byte costs explicit here and derive every node
capacity from them.  All index structures in this repository size their nodes
through this module; nothing hard-codes a fanout.

Byte layout conventions (little-endian, matching
:mod:`repro.storage.serialization`):

- feature coordinates are ``float32`` (4 bytes), as is standard for feature
  vectors;
- object identifiers and page identifiers are ``uint32`` (4 bytes);
- a kd-tree internal node stores the split dimension (``uint16``), the two
  split positions lsp and rsp (``float32`` each), and two intra-node child
  offsets (``uint16`` each): 14 bytes total;
- a kd-tree leaf stores the child page id: 4 bytes.  Encoded-live-space codes
  are *not* charged against the page (Section 3.4 of the paper keeps them in
  memory; their footprint is reported separately by ``ELSTable.memory_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_PAGE_SIZE = 4096
"""Page size in bytes used throughout the paper's evaluation (Section 4)."""

PAGE_HEADER_SIZE = 32
"""Per-page header: node kind, level, entry count, free-space pointer, LSN."""

FLOAT_SIZE = 4
OID_SIZE = 4
PAGE_ID_SIZE = 4

KD_INTERNAL_SIZE = 2 + FLOAT_SIZE + FLOAT_SIZE + 2 + 2
"""Split dim (u16) + lsp (f32) + rsp (f32) + two intranode offsets (u16)."""

KD_LEAF_SIZE = PAGE_ID_SIZE
"""A kd-tree leaf is just the child page pointer."""


@dataclass(frozen=True)
class PageLayout:
    """Byte budget of a page: total size and the space usable for entries."""

    page_size: int = DEFAULT_PAGE_SIZE
    header_size: int = PAGE_HEADER_SIZE

    def __post_init__(self) -> None:
        if self.page_size <= self.header_size:
            raise ValueError(
                f"page_size ({self.page_size}) must exceed header_size ({self.header_size})"
            )

    @property
    def usable(self) -> int:
        """Bytes available to entries after the header."""
        return self.page_size - self.header_size


def data_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum number of (vector, oid) entries a data page can hold.

    One entry costs ``dims * 4 + 4`` bytes.  Identical for every index
    structure: data pages always store raw feature vectors.
    """
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + OID_SIZE
    capacity = layout.usable // entry
    if capacity < 2:
        raise ValueError(
            f"page of {layout.page_size} bytes cannot hold 2 entries of {dims} dims"
        )
    return capacity


def kdtree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum number of children of a kd-tree-organised index node.

    A node with ``c`` children stores ``c - 1`` kd internal nodes and ``c``
    kd leaves, so the budget constraint is
    ``(c - 1) * KD_INTERNAL_SIZE + c * KD_LEAF_SIZE <= usable``.

    The result does not depend on ``dims`` — the paper's headline property.
    ``dims`` is accepted (and ignored) so that all capacity functions share a
    signature.
    """
    del dims  # fanout is dimension-independent by construction
    layout = layout or PageLayout()
    capacity = (layout.usable + KD_INTERNAL_SIZE) // (KD_INTERNAL_SIZE + KD_LEAF_SIZE)
    return max(capacity, 2)


def rtree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum children of an R-tree node: entry = bounding box + pointer.

    One entry costs ``2 * dims * 4 + 4`` bytes (low and high corner per
    dimension), so fanout decreases linearly with dimensionality.
    """
    layout = layout or PageLayout()
    entry = 2 * dims * FLOAT_SIZE + PAGE_ID_SIZE
    return max(layout.usable // entry, 2)


def sstree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum children of an SS-tree node: entry = centroid + radius + ptr.

    One entry costs ``dims * 4 + 4 + 4`` bytes.
    """
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + FLOAT_SIZE + PAGE_ID_SIZE
    return max(layout.usable // entry, 2)


def srtree_node_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Maximum children of an SR-tree node: entry = sphere + rect + ptr.

    Katayama & Satoh store both a bounding sphere (centroid + radius) and a
    bounding rectangle per entry: ``dims*4 + 4 + 2*dims*4 + 4`` bytes.  This
    is why the SR-tree has the lowest fanout of all structures at high
    dimensionality (e.g. 5 children at 64-d on 4K pages).
    """
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + FLOAT_SIZE + 2 * dims * FLOAT_SIZE + PAGE_ID_SIZE
    return max(layout.usable // entry, 2)


def sequential_scan_pages(count: int, dims: int, layout: PageLayout | None = None) -> int:
    """Number of pages a linear scan of ``count`` ``dims``-d vectors reads.

    This is the paper's denominator for the normalized I/O cost:
    ``ceil(num_tuples * tuple_size / page_size)`` with densely packed pages.
    """
    layout = layout or PageLayout()
    per_page = data_node_capacity(dims, layout)
    return -(-count // per_page)  # ceil division
