"""An LRU buffer pool over a :class:`~repro.storage.pagestore.PageStore`.

The paper reports *cold* per-query disk accesses, so the benchmark harness
runs without a buffer pool.  The pool exists because a production index would
never run without one: it lets users measure warm-cache behaviour and it backs
the ``buffer_pages`` option of the public index classes.  Hits are served from
memory and not charged to the underlying store's ``IOStats``; misses and dirty
evictions are.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.storage.iostats import AccessKind
from repro.storage.pagestore import PageStore


class LRUBufferPool:
    """Fixed-capacity write-back page cache with least-recently-used eviction."""

    def __init__(self, store: PageStore, capacity: int):
        if capacity <= 0:
            raise ValueError("buffer pool capacity must be positive")
        self.store = store
        self.capacity = capacity
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    def read(self, page_id: int) -> bytes:
        """Return page contents, faulting it in from the store on a miss."""
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        data = self.store.read(page_id)
        self._admit(page_id, data)
        return data

    def write(self, page_id: int, data: bytes) -> None:
        """Buffer a write; it reaches the store on eviction or :meth:`flush`."""
        if len(data) > self.store.page_size:
            raise ValueError(f"page overflow: {len(data)} > {self.store.page_size} bytes")
        if page_id in self._frames:
            self._frames.move_to_end(page_id)
            self._frames[page_id] = data
        else:
            self._admit(page_id, data)
        self._dirty.add(page_id)

    def _admit(self, page_id: int, data: bytes) -> None:
        while len(self._frames) >= self.capacity:
            victim, victim_data = self._frames.popitem(last=False)
            if victim in self._dirty:
                try:
                    self.store.write(victim, victim_data)
                except Exception:
                    # Write-back failed: the frame holds the only copy of
                    # the page, so losing it here would silently drop the
                    # user's data.  Re-admit the victim (at the MRU end, so
                    # the retry picks a different victim next) still marked
                    # dirty, and surface the fault to the caller.
                    self._frames[victim] = victim_data
                    raise
                self._dirty.discard(victim)
        self._frames[page_id] = data

    def flush(self) -> None:
        """Write back every dirty frame (frames stay resident)."""
        for page_id in sorted(self._dirty):
            self.store.write(page_id, self._frames[page_id], AccessKind.SEQUENTIAL_WRITE)
        self._dirty.clear()

    def invalidate(self, page_id: int) -> None:
        """Drop a frame without writing it back (used after ``free``)."""
        self._frames.pop(page_id, None)
        self._dirty.discard(page_id)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._frames)
