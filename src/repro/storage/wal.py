"""Write-ahead logging over the CRC-framed page format.

A WAL-enabled tree (``HybridTree.open(path, wal=True)``) appends every
mutation to a sidecar log at ``<path>.wal`` *before* the pages change in
memory-visible storage, and fsyncs with group commit.  The saved tree file
stays the checkpoint: replaying the log over it reconstructs the committed
state after a crash at any point, and :meth:`~repro.core.hybridtree.HybridTree.checkpoint`
folds the log into a fresh superblock through the existing atomic
tmp+rename save.

On-disk layout — an append-only stream of CRC-framed, LSN-stamped records::

    [HEADER record]  JSON: wal format, page size, base-file generation
    [PAGE   record]* full framed page image for one page id
    [COMMIT record]  JSON transaction metadata (ELS deltas, bounds, count,
                     root/height, allocator state) — the commit point
    [PAGE ...] [COMMIT ...] ...

Every record carries a 32-byte header (magic, type, LSN, page id, payload
length) and a CRC32 over header+payload, so torn tails and bit flips are
detected exactly like torn pages in the main file.  Recovery semantics are
*old-or-new at transaction granularity*: replay applies complete
transactions in order and discards everything at and after the first
record that fails to verify — a kill at any byte boundary recovers the
state after the last wholly-durable commit.

The HEADER record pins the log to one generation of the base file.  A
checkpoint publishes the new superblock first (atomic rename, generation
+1) and resets the log second; if the process dies between the two steps,
the stale log's generation no longer matches and replay ignores it — the
new checkpoint already contains everything the log did.

Group commit: :meth:`WriteAheadLog.commit` durably flushes every record
appended so far.  Concurrent committers coalesce — the first becomes the
fsync leader for everything appended up to that instant, the rest wait on
the flushed LSN — so ``k`` threads committing together cost one fsync,
not ``k`` (``sync_count`` vs ``commit_count`` expose the ratio).
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field

from repro.storage.errors import PageCorruptionError

WAL_MAGIC = 0x4C415748  # "HWAL"
WAL_FORMAT = 1

REC_HEADER = 0
"""First record of every log: JSON ``{"format", "page_size", "base_generation"}``."""
REC_PAGE = 1
"""A full framed page image; ``page_id`` names its slot in the tree file."""
REC_COMMIT = 2
"""Transaction commit point; payload is the JSON metadata delta."""

_RECORD = struct.Struct("<IBxxxQqII")  # magic, type, lsn, page_id, len, crc
RECORD_HEADER_SIZE = _RECORD.size
assert RECORD_HEADER_SIZE == 32


def _record_crc(bare_header: bytes, payload: bytes) -> int:
    return zlib.crc32(payload, zlib.crc32(bare_header)) & 0xFFFFFFFF


def frame_record(rec_type: int, lsn: int, payload: bytes, page_id: int = -1) -> bytes:
    """Wrap ``payload`` into a self-checking WAL record (header + CRC32)."""
    bare = _RECORD.pack(WAL_MAGIC, rec_type, lsn, page_id, len(payload), 0)
    crc = _record_crc(bare, payload)
    header = _RECORD.pack(WAL_MAGIC, rec_type, lsn, page_id, len(payload), crc)
    return header + payload


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record (see the module docstring for the stream)."""

    type: int
    lsn: int
    page_id: int
    payload: bytes
    offset: int
    """Byte offset of the record header in the log file."""

    @property
    def end_offset(self) -> int:
        return self.offset + RECORD_HEADER_SIZE + len(self.payload)


@dataclass
class WalScan:
    """Everything :func:`scan_wal` learned about a log file."""

    path: str
    header: dict | None = None
    records: list[WalRecord] = field(default_factory=list)
    """Records of complete transactions only, in LSN order (header excluded)."""
    transactions: int = 0
    last_lsn: int = 0
    committed_bytes: int = 0
    """Log prefix length covered by complete transactions (replay horizon)."""
    truncated_reason: str | None = None
    """Why scanning stopped early (torn tail, CRC mismatch), or None."""
    discarded_records: int = 0
    """Intact records after the last commit (an in-flight transaction)."""


def scan_wal(path: str | os.PathLike) -> WalScan:
    """Read and verify a log file, stopping at the first torn/corrupt record.

    Never raises on corruption: a bad record simply ends the usable stream
    (``truncated_reason`` says why), and any intact records after the last
    COMMIT are reported as discarded — exactly what replay will do.
    """
    path = os.fspath(path)
    scan = WalScan(path=path)
    with open(path, "rb") as f:
        data = f.read()
    offset = 0
    pending: list[WalRecord] = []
    while offset < len(data):
        if offset + RECORD_HEADER_SIZE > len(data):
            scan.truncated_reason = f"torn record header at byte {offset}"
            break
        magic, rec_type, lsn, page_id, length, crc = _RECORD.unpack_from(data, offset)
        if magic != WAL_MAGIC:
            scan.truncated_reason = f"bad magic 0x{magic:08x} at byte {offset}"
            break
        end = offset + RECORD_HEADER_SIZE + length
        if end > len(data):
            scan.truncated_reason = f"torn record payload at byte {offset}"
            break
        payload = data[offset + RECORD_HEADER_SIZE : end]
        bare = _RECORD.pack(magic, rec_type, lsn, page_id, length, 0)
        if _record_crc(bare, payload) != crc:
            scan.truncated_reason = f"record CRC32 mismatch at byte {offset}"
            break
        record = WalRecord(rec_type, lsn, page_id, payload, offset)
        if rec_type == REC_HEADER:
            if scan.header is not None or offset != 0:
                scan.truncated_reason = f"stray header record at byte {offset}"
                break
            try:
                scan.header = json.loads(payload.decode())
            except ValueError:
                scan.truncated_reason = "undecodable header record"
                break
        elif scan.header is None:
            scan.truncated_reason = "log does not start with a header record"
            break
        elif rec_type == REC_PAGE:
            pending.append(record)
        elif rec_type == REC_COMMIT:
            pending.append(record)
            scan.records.extend(pending)
            pending.clear()
            scan.transactions += 1
            scan.last_lsn = lsn
            scan.committed_bytes = record.end_offset
        else:
            scan.truncated_reason = f"unknown record type {rec_type} at byte {offset}"
            break
        offset = record.end_offset
    scan.discarded_records = len(pending)
    if scan.header is not None and scan.committed_bytes == 0:
        # An intact header still marks a valid (empty) log.
        scan.committed_bytes = RECORD_HEADER_SIZE + len(
            json.dumps(scan.header, sort_keys=True).encode()
        )
    return scan


def committed_transactions(scan: WalScan):
    """Group a scan's records into ``[(page_records, commit_record), ...]``."""
    out = []
    pages: list[WalRecord] = []
    for record in scan.records:
        if record.type == REC_PAGE:
            pages.append(record)
        else:
            out.append((pages, record))
            pages = []
    return out


class WriteAheadLog:
    """Append-only, group-committed log of tree mutations.

    One writer appends (``append_page`` / ``append_commit``); any number of
    threads may call :meth:`commit` — flushes coalesce onto a single fsync
    leader.  The log is pinned to ``base_generation`` of the checkpoint it
    extends; :meth:`reset` re-pins it after the next checkpoint.
    """

    def __init__(self, path: str | os.PathLike, page_size: int, base_generation: int):
        self.path = os.fspath(path)
        self.page_size = page_size
        self.base_generation = int(base_generation)
        self.commit_count = 0
        self.sync_count = 0
        self._cond = threading.Condition()
        self._appended_lsn = 0
        self._flushed_lsn = 0
        self._flushing = False
        existing = scan_wal(self.path) if os.path.exists(self.path) else None
        if (
            existing is not None
            and existing.header is not None
            and int(existing.header.get("base_generation", -1)) == self.base_generation
            and existing.header.get("page_size") == page_size
        ):
            # Continue an existing log: drop any torn/uncommitted tail so
            # new records append right after the last durable commit.
            self._file = open(self.path, "r+b")
            self._file.truncate(existing.committed_bytes)
            self._file.seek(existing.committed_bytes)
            self._appended_lsn = self._flushed_lsn = existing.last_lsn
        else:
            self._file = open(self.path, "w+b")
            self._write_header()

    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        payload = json.dumps(
            {
                "format": WAL_FORMAT,
                "page_size": self.page_size,
                "base_generation": self.base_generation,
            },
            sort_keys=True,
        ).encode()
        self._file.write(frame_record(REC_HEADER, 0, payload))
        self._file.flush()
        os.fsync(self._file.fileno())

    @property
    def last_lsn(self) -> int:
        return self._appended_lsn

    @property
    def size_bytes(self) -> int:
        return os.path.getsize(self.path)

    # ------------------------------------------------------------------
    # Appending (single writer)
    # ------------------------------------------------------------------
    def append_page(self, page_id: int, page: bytes) -> int:
        """Log a full page image; returns the record's LSN (not yet durable)."""
        return self._append(REC_PAGE, bytes(page), page_id)

    def append_commit(self, meta: dict) -> int:
        """Log the commit record closing the current transaction."""
        payload = json.dumps(meta, sort_keys=True).encode()
        return self._append(REC_COMMIT, payload)

    def _append(self, rec_type: int, payload: bytes, page_id: int = -1) -> int:
        with self._cond:
            self._appended_lsn += 1
            lsn = self._appended_lsn
            self._file.write(frame_record(rec_type, lsn, payload, page_id))
        return lsn

    # ------------------------------------------------------------------
    # Group commit
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Make every record appended so far durable; returns the LSN covered.

        The first committer to arrive becomes the flush leader and fsyncs on
        behalf of everyone waiting; late arrivals whose LSN is already
        covered return without touching the disk at all.
        """
        with self._cond:
            self.commit_count += 1
            target = self._appended_lsn
            while self._flushed_lsn < target:
                if not self._flushing:
                    self._flushing = True
                    break
                self._cond.wait()
            else:
                return target
        # Leader, outside the lock: flush everything appended up to now.
        try:
            with self._cond:
                covered = self._appended_lsn
            self._file.flush()
            os.fsync(self._file.fileno())
            self.sync_count += 1
        finally:
            with self._cond:
                self._flushed_lsn = max(self._flushed_lsn, covered)
                self._flushing = False
                self._cond.notify_all()
        return target

    # ------------------------------------------------------------------
    # Checkpoint / lifecycle
    # ------------------------------------------------------------------
    def reset(self, base_generation: int, path: str | os.PathLike | None = None) -> None:
        """Empty the log and re-pin it to a fresh checkpoint generation.

        Called *after* the checkpoint's atomic rename published the new
        superblock; a crash before this call leaves a stale-generation log
        that replay ignores.  ``path`` moves the log (a save to a new
        location carries its WAL along).
        """
        with self._cond:
            if path is not None and os.fspath(path) != self.path:
                self._file.close()
                try:
                    os.remove(self.path)
                except OSError:
                    pass
                self.path = os.fspath(path)
                self._file = open(self.path, "w+b")
            self.base_generation = int(base_generation)
            self._file.seek(0)
            self._file.truncate(0)
            self._write_header()
            self._appended_lsn = 0
            self._flushed_lsn = 0

    def close(self) -> None:
        with self._cond:
            if not self._file.closed:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def wal_path_for(tree_path: str | os.PathLike) -> str:
    """The sidecar log location for a saved tree file."""
    return os.fspath(tree_path) + ".wal"


def usable_scan(tree_path: str | os.PathLike, generation: int) -> WalScan | None:
    """Scan the tree's sidecar log, if one exists and extends ``generation``.

    Returns ``None`` when there is no log, the log is unreadable, or it is
    pinned to a different base-file generation (a completed checkpoint made
    it stale) — in every such case the tree file alone is the truth.
    """
    path = wal_path_for(tree_path)
    if not os.path.exists(path):
        return None
    scan = scan_wal(path)
    if scan.header is None:
        return None
    if int(scan.header.get("base_generation", -1)) != int(generation):
        return None
    return scan


def apply_scan(scan: WalScan, store, page_size: int, verify_pages: bool = True) -> dict:
    """Replay a scan's complete transactions into ``store`` (uncharged
    writes), returning the final merged commit metadata.

    Page images are frame-verified before they are written (a record CRC
    already covers them; the page frame check additionally confirms the
    image is a well-formed page).  The returned dict is the union of all
    commit metadata in order, so the caller can apply the *final* count,
    root, bounds and allocator state, plus the accumulated ELS delta.
    """
    merged: dict = {"els": {}}
    for pages, commit in committed_transactions(scan):
        for record in pages:
            if len(record.payload) != page_size:
                raise PageCorruptionError(
                    f"WAL page image of {len(record.payload)} bytes "
                    f"(page size {page_size})",
                    record.page_id,
                )
            if verify_pages:
                from repro.storage.page import unframe_page

                unframe_page(record.payload, record.page_id)
            store.ensure_allocated(record.page_id)
            store.write(record.page_id, record.payload, charge=False)
        meta = json.loads(commit.payload.decode())
        els = merged["els"]
        els.update(meta.pop("els", {}))
        merged.update(meta)
        merged["els"] = els
    return merged
