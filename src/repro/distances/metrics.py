"""Metric implementations: Lp family, weighted/quadratic forms, user hooks.

Each metric provides three operations:

``distance(a, b)``
    Point-to-point distance.
``distance_batch(points, q)``
    Vectorized distances from every row of ``points`` to ``q`` — the inner
    loop of data-node scans, so it must be numpy-level fast.
``mindist_rect(q, low, high)``
    A lower bound on ``distance(q, x)`` over all ``x`` in the box.  For every
    metric here the bound is *tight* (attained by the box point closest to
    ``q``), which keeps branch-and-bound search exact.

The concrete metrics additionally implement ``mindist_rect_batch(queries,
low, high)`` — the row-wise form of ``mindist_rect`` for *many query points
against one box*, the primitive the batch query engine
(:mod:`repro.engine`) tests a fetched node against all alive queries with.
The batch form performs the same clip-and-reduce operations as the scalar
one, so the two are bitwise identical and batch search decisions match
single-query search exactly.  :func:`mindist_rect_many` dispatches to it
with a scalar fallback, so user metrics that only implement the three-method
protocol still work in batches.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Metric(Protocol):
    """What an index needs from a distance function in order to prune."""

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        ...

    def distance_batch(self, points: np.ndarray, q: np.ndarray) -> np.ndarray:
        ...

    def mindist_rect(self, q: np.ndarray, low: np.ndarray, high: np.ndarray) -> float:
        ...


class LpMetric:
    """The Minkowski ``L_p`` family, ``p >= 1`` or ``p = inf``.

    ``mindist_rect`` clamps the query into the box and measures the distance
    to the clamped point — exact for every ``L_p`` because the box is convex
    and the metric is coordinatewise monotone.
    """

    def __init__(self, p: float):
        if not (p >= 1):
            raise ValueError(f"Lp requires p >= 1, got {p}")
        self.p = float(p)

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
        if np.isinf(self.p):
            return float(diff.max())
        if self.p == 1.0:
            return float(diff.sum())
        if self.p == 2.0:
            return float(np.sqrt((diff * diff).sum()))
        return float((diff**self.p).sum() ** (1.0 / self.p))

    def distance_batch(self, points: np.ndarray, q: np.ndarray) -> np.ndarray:
        diff = np.abs(points - q)
        if np.isinf(self.p):
            return diff.max(axis=1)
        if self.p == 1.0:
            return diff.sum(axis=1)
        if self.p == 2.0:
            return np.sqrt((diff * diff).sum(axis=1))
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    def mindist_rect(self, q: np.ndarray, low: np.ndarray, high: np.ndarray) -> float:
        clamped = np.clip(q, low, high)
        return self.distance(q, clamped)

    def mindist_rect_batch(
        self, queries: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """Row-wise :meth:`mindist_rect` for many query points to one box."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.shape[0] == 0:
            return np.empty(0)
        diff = np.abs(queries - np.clip(queries, low, high))
        if np.isinf(self.p):
            return diff.max(axis=1)
        if self.p == 1.0:
            return diff.sum(axis=1)
        if self.p == 2.0:
            return np.sqrt((diff * diff).sum(axis=1))
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    def __repr__(self) -> str:
        return f"LpMetric(p={self.p})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LpMetric) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("LpMetric", self.p))


L1 = LpMetric(1.0)
"""Manhattan distance — the metric of the paper's Figure 7(c,d), following
the MARS similarity work [Ortega et al. 1997]."""

L2 = LpMetric(2.0)
"""Euclidean distance."""

LINF = LpMetric(float("inf"))
"""Chebyshev distance; a cube range query is an L-inf ball query."""


class WeightedEuclidean:
    """``sqrt(sum_i w_i (a_i - b_i)^2)`` with non-negative weights.

    Re-weighting dimensions per query is the basic relevance-feedback move
    (MARS/MindReader); the hybrid tree supports it because pruning only needs
    the box lower bound below.
    """

    def __init__(self, weights: np.ndarray):
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.ndim != 1 or np.any(self.weights < 0):
            raise ValueError("weights must be a 1-d non-negative array")

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(np.sqrt((self.weights * diff * diff).sum()))

    def distance_batch(self, points: np.ndarray, q: np.ndarray) -> np.ndarray:
        diff = points - q
        return np.sqrt((self.weights * diff * diff).sum(axis=1))

    def mindist_rect(self, q: np.ndarray, low: np.ndarray, high: np.ndarray) -> float:
        clamped = np.clip(q, low, high)
        return self.distance(q, clamped)

    def mindist_rect_batch(
        self, queries: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """Row-wise :meth:`mindist_rect` for many query points to one box."""
        queries = np.asarray(queries, dtype=np.float64)
        if queries.shape[0] == 0:
            return np.empty(0)
        diff = queries - np.clip(queries, low, high)
        return np.sqrt((self.weights * diff * diff).sum(axis=1))

    def __repr__(self) -> str:
        return f"WeightedEuclidean(weights={self.weights.tolist()})"


class QuadraticFormMetric:
    """``sqrt((a-b)^T A (a-b))`` for a symmetric positive-definite ``A``.

    Quadratic-form distances arise from relevance feedback with correlated
    dimensions (MindReader [Ishikawa et al. 1998]).  The box lower bound uses
    the smallest eigenvalue: ``d_A(q, x) >= sqrt(lambda_min) * d_2(q, x)``,
    a valid (not tight) bound, so search stays exact but prunes less.
    """

    def __init__(self, matrix: np.ndarray):
        self.matrix = np.asarray(matrix, dtype=np.float64)
        if self.matrix.ndim != 2 or self.matrix.shape[0] != self.matrix.shape[1]:
            raise ValueError("matrix must be square")
        if not np.allclose(self.matrix, self.matrix.T, atol=1e-10):
            raise ValueError("matrix must be symmetric")
        eigvals = np.linalg.eigvalsh(self.matrix)
        if eigvals[0] <= 0:
            raise ValueError("matrix must be positive definite")
        self._sqrt_lambda_min = float(np.sqrt(eigvals[0]))

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        return float(np.sqrt(diff @ self.matrix @ diff))

    def distance_batch(self, points: np.ndarray, q: np.ndarray) -> np.ndarray:
        diff = points - q
        return np.sqrt(np.einsum("ij,jk,ik->i", diff, self.matrix, diff))

    def mindist_rect(self, q: np.ndarray, low: np.ndarray, high: np.ndarray) -> float:
        clamped = np.clip(q, low, high)
        l2 = float(np.linalg.norm(np.asarray(q, dtype=np.float64) - clamped))
        return self._sqrt_lambda_min * l2

    def mindist_rect_batch(
        self, queries: np.ndarray, low: np.ndarray, high: np.ndarray
    ) -> np.ndarray:
        """Row-wise :meth:`mindist_rect`.  ``np.linalg.norm`` reduces a 1-d
        vector through BLAS ``dot``, whose summation order differs from an
        axis reduction, so this loops per row to stay bitwise identical to
        the scalar bound."""
        return np.array([self.mindist_rect(q, low, high) for q in queries])

    def __repr__(self) -> str:
        return f"QuadraticFormMetric(dims={self.matrix.shape[0]})"


class UserMetric:
    """Wrap an arbitrary user distance function for query-time use.

    ``mindist_rect`` defaults to the clamped-point evaluation, which is a
    correct lower bound whenever the function is coordinatewise monotone in
    ``|a_i - b_i|`` (true for every similarity measure used in MARS).  For
    functions without that property, supply an explicit ``rect_lower_bound``;
    passing a constant-zero bound degrades pruning but never correctness.
    """

    def __init__(
        self,
        fn: Callable[[np.ndarray, np.ndarray], float],
        rect_lower_bound: Callable[[np.ndarray, np.ndarray, np.ndarray], float] | None = None,
    ):
        self.fn = fn
        self._rect_lower_bound = rect_lower_bound

    def distance(self, a: np.ndarray, b: np.ndarray) -> float:
        return float(self.fn(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)))

    def distance_batch(self, points: np.ndarray, q: np.ndarray) -> np.ndarray:
        return np.array([self.distance(row, q) for row in points])

    def mindist_rect(self, q: np.ndarray, low: np.ndarray, high: np.ndarray) -> float:
        if self._rect_lower_bound is not None:
            return float(self._rect_lower_bound(q, low, high))
        clamped = np.clip(q, low, high)
        return self.distance(q, clamped)

    def __repr__(self) -> str:
        return f"UserMetric({getattr(self.fn, '__name__', 'fn')})"


def mindist_rect_many(
    metric: Metric, queries: np.ndarray, low: np.ndarray, high: np.ndarray
) -> np.ndarray:
    """Lower-bound distances from many query points to one box.

    Dispatches to the metric's vectorized ``mindist_rect_batch`` when it has
    one and otherwise falls back to a per-query loop, so any object
    satisfying the three-method :class:`Metric` protocol — user metrics
    included — can drive the batch query engine.
    """
    batch = getattr(metric, "mindist_rect_batch", None)
    if batch is not None:
        return np.asarray(batch(queries, low, high), dtype=np.float64)
    return np.array(
        [metric.mindist_rect(q, low, high) for q in queries], dtype=np.float64
    )
