"""Distance functions with box/sphere lower bounds.

The hybrid tree's selling point over distance-based structures (SS-tree,
M-tree) is that, being feature-based, it answers queries under *any* distance
function supplied at query time — including a different function per query, as
relevance-feedback loops require (paper Sections 1, 3.5).  A metric here is an
object that can (a) measure point-to-point distances and (b) lower-bound the
distance from a query point to an axis-aligned box, which is all a
feature-based index needs to prune.
"""

from repro.distances.metrics import (
    L1,
    L2,
    LINF,
    LpMetric,
    Metric,
    QuadraticFormMetric,
    UserMetric,
    WeightedEuclidean,
    mindist_rect_many,
)

__all__ = [
    "L1",
    "L2",
    "LINF",
    "LpMetric",
    "Metric",
    "QuadraticFormMetric",
    "UserMetric",
    "WeightedEuclidean",
    "mindist_rect_many",
]
