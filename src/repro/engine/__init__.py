"""High-throughput batch query engine for the hybrid tree.

One traversal serves many queries: nodes are fetched once per batch and
tested against all still-alive queries with vectorized predicates, and
:class:`QuerySession` pins the hot directory levels so a warm serving
process stops re-paying for them.  Results are bit-identical to the
single-query API; see :mod:`repro.engine.batch` for the contract and
:mod:`repro.engine.metrics` for the per-query latency / page-access
accounting both execution paths share.
"""

from repro.engine.batch import (
    QuerySession,
    distance_range_many,
    knn_many,
    range_search_many,
)
from repro.engine.metrics import BatchMetrics, LoopRecorder, ascii_histogram
from repro.engine.parallel import WORKER_MODES, ParallelQueryEngine

__all__ = [
    "BatchMetrics",
    "LoopRecorder",
    "ParallelQueryEngine",
    "QuerySession",
    "WORKER_MODES",
    "ascii_histogram",
    "distance_range_many",
    "knn_many",
    "range_search_many",
]
