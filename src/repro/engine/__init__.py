"""High-throughput batch query engine for every index structure.

One traversal serves many queries: nodes are fetched once per batch and
tested against all still-alive queries with vectorized predicates, and
:class:`QuerySession` pins the hot directory levels so a warm serving
process stops re-paying for them.  Results are bit-identical to the
single-query API.  The traversal itself lives in the structure-agnostic
:mod:`repro.engine.kernel` — any index implementing the small ``trav_*``
protocol (the hybrid tree and all paged baselines do) runs on the same
batch, parallel, and mmap machinery with the same accounting; see
:mod:`repro.engine.batch` for the hybrid-tree entry points and
:mod:`repro.engine.metrics` for the per-query latency / page-access
accounting all execution paths share.
"""

from repro.engine.batch import (
    QuerySession,
    distance_range_many,
    knn_many,
    range_search_many,
)
from repro.engine.kernel import (
    ChildBound,
    RectBound,
    kernel_distance_range_many,
    kernel_knn_many,
    kernel_range_search_many,
)
from repro.engine.metrics import BatchMetrics, LoopRecorder, ascii_histogram
from repro.engine.parallel import WORKER_MODES, ParallelQueryEngine
from repro.engine.soa import (
    SOASnapshot,
    active_snapshot,
    compile_snapshot,
    soa_distance_range_many,
    soa_knn_many,
    soa_range_search_many,
)

__all__ = [
    "BatchMetrics",
    "ChildBound",
    "LoopRecorder",
    "ParallelQueryEngine",
    "QuerySession",
    "RectBound",
    "SOASnapshot",
    "WORKER_MODES",
    "active_snapshot",
    "ascii_histogram",
    "compile_snapshot",
    "distance_range_many",
    "kernel_distance_range_many",
    "kernel_knn_many",
    "kernel_range_search_many",
    "knn_many",
    "range_search_many",
    "soa_distance_range_many",
    "soa_knn_many",
    "soa_range_search_many",
]
