"""Shared-traversal batch execution of many queries over one hybrid tree.

The single-query methods in :class:`~repro.core.hybridtree.HybridTree`
re-descend from the root for every query, re-charging the same directory
pages each time.  For a serving workload of hundreds of queries that
redundancy dominates: the upper levels are fetched once *per query* instead
of once *per batch*.  This module executes a whole batch in one traversal
(since the kernel refactor, through the structure-agnostic
:mod:`repro.engine.kernel`, which the hybrid tree joins via its ``trav_*``
protocol methods — these wrappers keep the historical hybrid-tree entry
points and labels):

- queries descend together as an *alive set* (a numpy index array);
- each tree node is fetched from the :class:`NodeManager` once per batch —
  one charged page read — and tested against all alive queries with the
  vectorized ``Rect`` / metric batch predicates;
- a query leaves the alive set as soon as the node's quantized live-space
  box can no longer contribute to it, exactly the single-query pruning
  rule evaluated row-wise.

Results are **bit-identical** to looping the single-query methods: data
nodes are scanned with the same per-query numpy kernels in the same
traversal order, the batch bound predicates perform the same clip-and-reduce
float operations as their scalar forms, and k-NN selection uses the same
deterministic ``(distance, oid)`` total order.  (The one exception is
approximate k-NN with ``approximation_factor > 0``, where pruning is
heuristic and any traversal order is admissible.)

Every batch entry point accepts ``timeout=`` (seconds, or a
:class:`~repro.resilience.Deadline` carrying a :class:`CancelToken`) and
``on_timeout`` — ``"raise"`` surfaces a typed
:class:`~repro.resilience.QueryTimeoutError`, ``"partial"`` returns a
:class:`~repro.resilience.PartialResult` envelope with the hits gathered
before the budget expired and a per-query completion mask.  Metrics stay
honest either way: pages touched before the deadline fired are billed.

:class:`QuerySession` adds buffer management on top: it pins the hot upper
levels of the directory once (charging each page a single read), so every
query executed inside the session revisits the directory for free — the
steady-state accounting of a warm serving process rather than the paper's
cold per-query numbers.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.nodes import IndexNode
from repro.distances import L2, Metric
from repro.engine.kernel import (
    _as_query_matrix,  # noqa: F401  (re-export: parallel.py imports it here)
)
from repro.engine.soa.kernel import (
    dispatch_distance_range_many,
    dispatch_knn_many,
    dispatch_range_search_many,
)
from repro.geometry.rect import Rect
from repro.resilience import QueryAdmissionController

__all__ = [
    "range_search_many",
    "distance_range_many",
    "knn_many",
    "QuerySession",
]


# ----------------------------------------------------------------------
# Box range queries
# ----------------------------------------------------------------------
def range_search_many(
    tree,
    queries: Sequence[Rect],
    return_metrics: bool = False,
    timeout=None,
    on_timeout: str = "raise",
):
    """Execute many box range queries in one traversal.

    Returns one oid list per query (bit-identical to
    ``[tree.range_search(q) for q in queries]``); with
    ``return_metrics=True`` also a :class:`BatchMetrics`.  Runs on the
    vectorized SOA kernel when the tree has a compiled snapshot attached
    (:mod:`repro.engine.soa`), on the object-walk kernel otherwise —
    results are identical either way.
    """
    return dispatch_range_search_many(
        tree, queries, return_metrics, "range-batch", timeout, on_timeout
    )


# ----------------------------------------------------------------------
# Distance range queries
# ----------------------------------------------------------------------
def distance_range_many(
    tree,
    centers,
    radii,
    metric: Metric = L2,
    return_metrics: bool = False,
    timeout=None,
    on_timeout: str = "raise",
):
    """Execute many distance-range queries (one shared metric) in one pass.

    ``radii`` may be a scalar or one radius per query.  Bit-identical to
    looping ``tree.distance_range``.
    """
    return dispatch_distance_range_many(
        tree, centers, radii, metric, return_metrics, "distance-batch",
        timeout, on_timeout,
    )


# ----------------------------------------------------------------------
# k-nearest-neighbour queries
# ----------------------------------------------------------------------
def knn_many(
    tree,
    centers,
    k: int,
    metric: Metric = L2,
    approximation_factor: float = 0.0,
    return_metrics: bool = False,
    timeout=None,
    on_timeout: str = "raise",
):
    """Execute many k-NN queries in one shared branch-and-bound traversal.

    Children are visited in order of their best lower bound over the alive
    set (a batch analogue of best-first), and each query prunes with its own
    current kth distance under the deterministic ``(distance, oid)`` order —
    so for ``approximation_factor == 0`` the result is exactly what
    ``tree.knn`` returns for every query.
    """
    return dispatch_knn_many(
        tree, centers, k, metric, approximation_factor, return_metrics,
        "knn-batch", timeout, on_timeout,
    )


# ----------------------------------------------------------------------
# Sessions: pinned hot directory + the batch API in one place
# ----------------------------------------------------------------------
class QuerySession:
    """A query context that keeps the tree's hot upper levels resident.

    On entry the top ``pin_levels`` levels of the directory are faulted in
    and pinned through :meth:`NodeManager.pin` — each page charged exactly
    once — after which every query served by the session traverses the
    pinned directory for free.  Use as a context manager::

        with QuerySession(tree, pin_levels=2) as session:
            hits = session.knn_many(batch, k=10)

    Closing the session unpins everything, returning the buffer to the
    paper's cold accounting.

    With ``workers > 1`` the batch methods run on a
    :class:`~repro.engine.parallel.ParallelQueryEngine` instead: the
    session reopens ``tree.source_path`` once per worker (``mode`` selects
    threads or fork/spawn processes) and merges partition results
    deterministically.  This requires a tree that came from
    ``save``/``open`` *and has no unsaved changes* — workers read the
    file, so in-memory mutations would silently be invisible to them;
    the constructor refuses rather than risking that.  Single-query
    methods and the pinned directory still use ``tree`` itself.

    ``timeout`` sets a default wall-clock budget (seconds) applied to every
    batch call that doesn't pass its own, with ``on_timeout`` selecting
    raise-vs-partial semantics; ``admission`` attaches a
    :class:`~repro.resilience.QueryAdmissionController` that rejects
    over-budget batches with a typed ``AdmissionError`` before any work
    starts.
    """

    def __init__(
        self,
        tree,
        pin_levels: int = 2,
        charge_pins: bool = True,
        workers: int = 1,
        mode: str = "thread",
        timeout=None,
        on_timeout: str = "raise",
        admission: QueryAdmissionController | None = None,
    ):
        if pin_levels < 0:
            raise ValueError("pin_levels must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.tree = tree
        self.timeout = timeout
        self.on_timeout = on_timeout
        self.admission = admission
        self._parallel = None
        if workers > 1:
            from repro.engine.parallel import ParallelQueryEngine

            if tree.source_path is None:
                raise ValueError(
                    "workers > 1 requires a saved tree (save() or open() "
                    "first): worker handles reopen the tree from its file"
                )
            if tree.modified_since_save and getattr(tree, "wal", None) is None:
                # WAL-enabled trees are exempt: every committed mutation is
                # durable in the sidecar log, so workers can reconstruct
                # the live tree's committed state without a save().
                raise ValueError(
                    "tree has unsaved in-memory changes; save() before "
                    "opening a parallel session so workers see them"
                )
            if getattr(tree, "wal", None) is not None and mode == "thread":
                # Thread workers on a WAL tree query pinned snapshot views
                # of the live store — no file reopen, no log replay, and
                # the snapshot stays consistent under concurrent writes.
                source = tree
            else:
                # Process workers (or plain saved trees) reopen the file;
                # a WAL tree's committed log is replayed on each open.
                source = tree.source_path
            self._parallel = ParallelQueryEngine(
                source, workers=workers, mode=mode, stats=tree.io,
                admission=admission,
            )
        self._pinned: list[int] = []
        frontier = [tree.root_id]
        for _ in range(min(pin_levels, tree.height)):
            next_frontier: list[int] = []
            for node_id in frontier:
                node = tree.nm.pin(node_id, charge=charge_pins)
                self._pinned.append(node_id)
                if isinstance(node, IndexNode):
                    next_frontier.extend(node.child_ids())
            frontier = next_frontier

    # -- lifecycle -----------------------------------------------------
    @property
    def pinned_pages(self) -> int:
        return len(self._pinned)

    @property
    def workers(self) -> int:
        return self._parallel.workers if self._parallel is not None else 1

    def close(self) -> None:
        # Idempotent: a second close() finds nothing pinned and no engine.
        for node_id in self._pinned:
            self.tree.nm.unpin(node_id)
        self._pinned.clear()
        if self._parallel is not None:
            parallel, self._parallel = self._parallel, None
            parallel.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries -------------------------------------------------------
    def _resolve(self, timeout, on_timeout):
        if timeout is None:
            timeout = self.timeout
        if on_timeout is None:
            on_timeout = self.on_timeout
        return timeout, on_timeout

    def _admit(self, n_queries: int):
        if self.admission is None or self._parallel is not None:
            # Parallel engines run their own admission (same controller,
            # handed over in the constructor) — don't double-count.
            return _NULL_TICKET
        return self.admission.admit(n_queries, self.tree.dims)

    def range_search_many(
        self, queries, return_metrics: bool = False,
        timeout=None, on_timeout: str | None = None,
    ):
        timeout, on_timeout = self._resolve(timeout, on_timeout)
        if self._parallel is not None:
            return self._parallel.range_search_many(
                queries, return_metrics, timeout=timeout, on_timeout=on_timeout
            )
        queries = list(queries)
        with self._admit(len(queries)):
            return range_search_many(
                self.tree, queries, return_metrics, timeout, on_timeout
            )

    def distance_range_many(
        self, centers, radii, metric: Metric = L2, return_metrics: bool = False,
        timeout=None, on_timeout: str | None = None,
    ):
        timeout, on_timeout = self._resolve(timeout, on_timeout)
        if self._parallel is not None:
            return self._parallel.distance_range_many(
                centers, radii, metric, return_metrics,
                timeout=timeout, on_timeout=on_timeout,
            )
        qs = _as_query_matrix(centers, self.tree.dims)
        with self._admit(qs.shape[0]):
            return distance_range_many(
                self.tree, qs, radii, metric, return_metrics, timeout, on_timeout
            )

    def knn_many(
        self,
        centers,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
        timeout=None,
        on_timeout: str | None = None,
    ):
        timeout, on_timeout = self._resolve(timeout, on_timeout)
        if self._parallel is not None:
            return self._parallel.knn_many(
                centers, k, metric, approximation_factor, return_metrics,
                timeout=timeout, on_timeout=on_timeout,
            )
        qs = _as_query_matrix(centers, self.tree.dims)
        with self._admit(qs.shape[0]):
            return knn_many(
                self.tree, qs, k, metric, approximation_factor, return_metrics,
                timeout, on_timeout,
            )

    def range_search(self, query: Rect) -> list[int]:
        return self.tree.range_search(query)

    def distance_range(self, center, radius: float, metric: Metric = L2):
        return self.tree.distance_range(center, radius, metric)

    def knn(self, center, k: int, metric: Metric = L2, **kwargs):
        return self.tree.knn(center, k, metric, **kwargs)


class _NullTicket:
    """Stand-in admission ticket when no controller is attached."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return None

    def release(self) -> None:
        return None


_NULL_TICKET = _NullTicket()
