"""Shared-traversal batch execution of many queries over one hybrid tree.

The single-query methods in :class:`~repro.core.hybridtree.HybridTree`
re-descend from the root for every query, re-charging the same directory
pages each time.  For a serving workload of hundreds of queries that
redundancy dominates: the upper levels are fetched once *per query* instead
of once *per batch*.  This module executes a whole batch in one traversal:

- queries descend together as an *alive set* (a numpy index array);
- each tree node is fetched from the :class:`NodeManager` once per batch —
  one charged page read — and tested against all alive queries with the
  vectorized ``Rect`` / metric batch predicates;
- a query leaves the alive set as soon as the node's quantized live-space
  box can no longer contribute to it, exactly the single-query pruning
  rule evaluated row-wise.

Results are **bit-identical** to looping the single-query methods: data
nodes are scanned with the same per-query numpy kernels in the same
traversal order, the batch bound predicates perform the same clip-and-reduce
float operations as their scalar forms, and k-NN selection uses the same
deterministic ``(distance, oid)`` total order.  (The one exception is
approximate k-NN with ``approximation_factor > 0``, where pruning is
heuristic and any traversal order is admissible.)

:class:`QuerySession` adds buffer management on top: it pins the hot upper
levels of the directory once (charging each page a single read), so every
query executed inside the session revisits the directory for free — the
steady-state accounting of a warm serving process rather than the paper's
cold per-query numbers.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Sequence

import numpy as np

from repro.core.kdnodes import KDLeaf, KDNode
from repro.core.nodes import DataNode, IndexNode
from repro.distances import L2, Metric, mindist_rect_many
from repro.engine.metrics import BatchMetrics
from repro.geometry.rect import Rect
from repro.storage.errors import PageCorruptionError

__all__ = [
    "range_search_many",
    "distance_range_many",
    "knn_many",
    "QuerySession",
]


def _as_query_matrix(centers, dims: int) -> np.ndarray:
    """Canonicalise a batch of query points exactly like
    ``HybridTree._check_vector`` does per point (float32 precision)."""
    qs = np.asarray(centers, dtype=np.float32).astype(np.float64)
    if qs.ndim == 1:
        qs = qs[None, :]
    if qs.ndim != 2 or qs.shape[1] != dims:
        raise ValueError(
            f"expected (n, {dims}) query points, got shape {qs.shape}"
        )
    if not np.all(np.isfinite(qs)):
        raise ValueError("query vectors must be finite")
    return qs


def _finish(results, visits, tree, start, reads0, return_metrics, label):
    if not return_metrics:
        return results
    wall = time.perf_counter() - start
    metrics = BatchMetrics.from_batch_run(
        label=label,
        node_visits=visits,
        charged_reads=tree.io.random_reads - reads0,
        wall_seconds=wall,
    )
    return results, metrics


# ----------------------------------------------------------------------
# Box range queries
# ----------------------------------------------------------------------
def range_search_many(
    tree, queries: Sequence[Rect], return_metrics: bool = False
):
    """Execute many box range queries in one traversal.

    Returns one oid list per query (bit-identical to
    ``[tree.range_search(q) for q in queries]``); with
    ``return_metrics=True`` also a :class:`BatchMetrics`.
    """
    start = time.perf_counter()
    reads0 = tree.io.random_reads
    n = len(queries)
    if n == 0:
        return _finish([], np.empty(0), tree, start, reads0, return_metrics, "range-batch")
    for q in queries:
        if q.dims != tree.dims:
            raise ValueError("query dimensionality mismatch")
    lows = np.stack([q.low for q in queries])
    highs = np.stack([q.high for q in queries])
    results: list[list[np.ndarray]] = [[] for _ in range(n)]
    visits = np.zeros(n, dtype=np.int64)

    def visit(node_id: int, region: Rect, alive: np.ndarray) -> None:
        node = tree.nm.get(node_id)
        visits[alive] += 1
        if isinstance(node, DataNode):
            if node.count:
                inside = Rect.boxes_contain_points_mask(
                    lows[alive], highs[alive], node.points()
                )
                oids = node.live_oids()
                for row, qi in zip(inside, alive):
                    if row.any():
                        results[qi].append(oids[row])
            return
        walk(node.kd_root, region, alive)

    def walk(kd: KDNode, region: Rect, alive: np.ndarray) -> None:
        if isinstance(kd, KDLeaf):
            live = tree.els.effective_rect(kd.child_id, region)
            sub = alive[live.intersects_boxes_mask(lows[alive], highs[alive])]
            if sub.size:
                visit(kd.child_id, region, sub)
            return
        left = alive[lows[alive, kd.dim] <= kd.lsp]
        if left.size:
            walk(kd.left, region.clip_below(kd.dim, kd.lsp), left)
        right = alive[highs[alive, kd.dim] >= kd.rsp]
        if right.size:
            walk(kd.right, region.clip_above(kd.dim, kd.rsp), right)

    try:
        visit(tree.root_id, tree.bounds, np.arange(n))
    except PageCorruptionError as exc:
        # Same policy as the single-query path: ``on_corruption="scan"``
        # answers the whole batch from one sequential scan.
        vectors, oids = tree._degrade(exc)
        inside = Rect.boxes_contain_points_mask(lows, highs, vectors)
        out = [[int(o) for o in oids[row]] for row in inside]
    else:
        out = [[int(o) for arr in per_query for o in arr] for per_query in results]
    return _finish(out, visits, tree, start, reads0, return_metrics, "range-batch")


# ----------------------------------------------------------------------
# Distance range queries
# ----------------------------------------------------------------------
def distance_range_many(
    tree,
    centers,
    radii,
    metric: Metric = L2,
    return_metrics: bool = False,
):
    """Execute many distance-range queries (one shared metric) in one pass.

    ``radii`` may be a scalar or one radius per query.  Bit-identical to
    looping ``tree.distance_range``.
    """
    start = time.perf_counter()
    reads0 = tree.io.random_reads
    qs = _as_query_matrix(centers, tree.dims)
    n = qs.shape[0]
    radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (n,))
    if np.any(radii < 0):
        raise ValueError("radius must be non-negative")
    out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    visits = np.zeros(n, dtype=np.int64)

    def visit(node_id: int, region: Rect, alive: np.ndarray) -> None:
        node = tree.nm.get(node_id)
        visits[alive] += 1
        if isinstance(node, DataNode):
            if node.count:
                points64 = node.points().astype(np.float64)
                oids = node.live_oids()
                for qi in alive:
                    dists = metric.distance_batch(points64, qs[qi])
                    for i in np.flatnonzero(dists <= radii[qi]):
                        out[qi].append((int(oids[i]), float(dists[i])))
            return
        walk(node.kd_root, region, alive)

    def walk(kd: KDNode, region: Rect, alive: np.ndarray) -> None:
        if isinstance(kd, KDLeaf):
            live = tree.els.effective_rect(kd.child_id, region)
            bounds = mindist_rect_many(metric, qs[alive], live.low, live.high)
            sub = alive[bounds <= radii[alive]]
            if sub.size:
                visit(kd.child_id, region, sub)
            return
        left_region = region.clip_below(kd.dim, kd.lsp)
        bounds = mindist_rect_many(
            metric, qs[alive], left_region.low, left_region.high
        )
        left = alive[bounds <= radii[alive]]
        if left.size:
            walk(kd.left, left_region, left)
        right_region = region.clip_above(kd.dim, kd.rsp)
        bounds = mindist_rect_many(
            metric, qs[alive], right_region.low, right_region.high
        )
        right = alive[bounds <= radii[alive]]
        if right.size:
            walk(kd.right, right_region, right)

    try:
        visit(tree.root_id, tree.bounds, np.arange(n))
    except PageCorruptionError as exc:
        vectors, oids = tree._degrade(exc)
        points64 = vectors.astype(np.float64)
        out = []
        for qi in range(n):
            dists = metric.distance_batch(points64, qs[qi])
            out.append(
                [
                    (int(oids[i]), float(dists[i]))
                    for i in np.flatnonzero(dists <= radii[qi])
                ]
            )
    return _finish(out, visits, tree, start, reads0, return_metrics, "distance-batch")


# ----------------------------------------------------------------------
# k-nearest-neighbour queries
# ----------------------------------------------------------------------
def knn_many(
    tree,
    centers,
    k: int,
    metric: Metric = L2,
    approximation_factor: float = 0.0,
    return_metrics: bool = False,
):
    """Execute many k-NN queries in one shared branch-and-bound traversal.

    Children are visited in order of their best lower bound over the alive
    set (a batch analogue of best-first), and each query prunes with its own
    current kth distance under the deterministic ``(distance, oid)`` order —
    so for ``approximation_factor == 0`` the result is exactly what
    ``tree.knn`` returns for every query.
    """
    start = time.perf_counter()
    reads0 = tree.io.random_reads
    if k < 1:
        raise ValueError("k must be >= 1")
    if approximation_factor < 0:
        raise ValueError("approximation_factor must be >= 0")
    qs = _as_query_matrix(centers, tree.dims)
    n = qs.shape[0]
    shrink = 1.0 / (1.0 + approximation_factor)
    # One max-heap of the best k per query, keyed (-distance, -oid) as in
    # the single-query path; kth[i] caches query i's current kth distance.
    heaps: list[list[tuple[float, int]]] = [[] for _ in range(n)]
    kth = np.full(n, np.inf)
    visits = np.zeros(n, dtype=np.int64)

    def visit(node_id: int, region: Rect, alive: np.ndarray) -> None:
        node = tree.nm.get(node_id)
        visits[alive] += 1
        if isinstance(node, DataNode):
            if not node.count:
                return
            points64 = node.points().astype(np.float64)
            oids = node.live_oids()
            for qi in alive:
                dists = metric.distance_batch(points64, qs[qi])
                best = heaps[qi]
                for i, dist in enumerate(dists):
                    dist = float(dist)
                    oid = int(oids[i])
                    if len(best) < k:
                        heapq.heappush(best, (-dist, -oid))
                    elif (dist, oid) < (-best[0][0], -best[0][1]):
                        heapq.heapreplace(best, (-dist, -oid))
                if len(best) >= k:
                    kth[qi] = -best[0][0]
            return
        scored = []
        for child_id, child_region in node.children_with_regions(region):
            live = tree.els.effective_rect(child_id, child_region)
            bounds = mindist_rect_many(metric, qs[alive], live.low, live.high)
            scored.append((float(bounds.min()), child_id, child_region, bounds))
        scored.sort(key=lambda entry: entry[0])
        for _, child_id, child_region, bounds in scored:
            # Re-filter against the *current* kth: earlier siblings may have
            # tightened it since the bounds were computed.
            sub = alive[bounds <= kth[alive] * shrink]
            if sub.size:
                visit(child_id, child_region, sub)

    try:
        visit(tree.root_id, tree.bounds, np.arange(n))
    except PageCorruptionError as exc:
        vectors, oids = tree._degrade(exc)
        points64 = vectors.astype(np.float64)
        out = []
        for qi in range(n):
            dists = metric.distance_batch(points64, qs[qi])
            order = np.lexsort((oids, dists))[:k]
            out.append([(int(oids[i]), float(dists[i])) for i in order])
    else:
        out = [
            sorted(
                ((-neg_oid, -neg_dist) for neg_dist, neg_oid in best),
                key=lambda t: (t[1], t[0]),
            )
            for best in heaps
        ]
    return _finish(out, visits, tree, start, reads0, return_metrics, "knn-batch")


# ----------------------------------------------------------------------
# Sessions: pinned hot directory + the batch API in one place
# ----------------------------------------------------------------------
class QuerySession:
    """A query context that keeps the tree's hot upper levels resident.

    On entry the top ``pin_levels`` levels of the directory are faulted in
    and pinned through :meth:`NodeManager.pin` — each page charged exactly
    once — after which every query served by the session traverses the
    pinned directory for free.  Use as a context manager::

        with QuerySession(tree, pin_levels=2) as session:
            hits = session.knn_many(batch, k=10)

    Closing the session unpins everything, returning the buffer to the
    paper's cold accounting.

    With ``workers > 1`` the batch methods run on a
    :class:`~repro.engine.parallel.ParallelQueryEngine` instead: the
    session reopens ``tree.source_path`` once per worker (``mode`` selects
    threads or fork/spawn processes) and merges partition results
    deterministically.  This requires a tree that came from
    ``save``/``open`` *and has no unsaved changes* — workers read the
    file, so in-memory mutations would silently be invisible to them;
    the constructor refuses rather than risking that.  Single-query
    methods and the pinned directory still use ``tree`` itself.
    """

    def __init__(
        self,
        tree,
        pin_levels: int = 2,
        charge_pins: bool = True,
        workers: int = 1,
        mode: str = "thread",
    ):
        if pin_levels < 0:
            raise ValueError("pin_levels must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.tree = tree
        self._parallel = None
        if workers > 1:
            from repro.engine.parallel import ParallelQueryEngine

            if tree.source_path is None:
                raise ValueError(
                    "workers > 1 requires a saved tree (save() or open() "
                    "first): worker handles reopen the tree from its file"
                )
            if tree.modified_since_save:
                raise ValueError(
                    "tree has unsaved in-memory changes; save() before "
                    "opening a parallel session so workers see them"
                )
            self._parallel = ParallelQueryEngine(
                tree.source_path, workers=workers, mode=mode, stats=tree.io
            )
        self._pinned: list[int] = []
        frontier = [tree.root_id]
        for _ in range(min(pin_levels, tree.height)):
            next_frontier: list[int] = []
            for node_id in frontier:
                node = tree.nm.pin(node_id, charge=charge_pins)
                self._pinned.append(node_id)
                if isinstance(node, IndexNode):
                    next_frontier.extend(node.child_ids())
            frontier = next_frontier

    # -- lifecycle -----------------------------------------------------
    @property
    def pinned_pages(self) -> int:
        return len(self._pinned)

    @property
    def workers(self) -> int:
        return self._parallel.workers if self._parallel is not None else 1

    def close(self) -> None:
        for node_id in self._pinned:
            self.tree.nm.unpin(node_id)
        self._pinned.clear()
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries -------------------------------------------------------
    def range_search_many(self, queries, return_metrics: bool = False):
        if self._parallel is not None:
            return self._parallel.range_search_many(queries, return_metrics)
        return range_search_many(self.tree, queries, return_metrics)

    def distance_range_many(
        self, centers, radii, metric: Metric = L2, return_metrics: bool = False
    ):
        if self._parallel is not None:
            return self._parallel.distance_range_many(
                centers, radii, metric, return_metrics
            )
        return distance_range_many(self.tree, centers, radii, metric, return_metrics)

    def knn_many(
        self,
        centers,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
    ):
        if self._parallel is not None:
            return self._parallel.knn_many(
                centers, k, metric, approximation_factor, return_metrics
            )
        return knn_many(
            self.tree, centers, k, metric, approximation_factor, return_metrics
        )

    def range_search(self, query: Rect) -> list[int]:
        return self.tree.range_search(query)

    def distance_range(self, center, radius: float, metric: Metric = L2):
        return self.tree.distance_range(center, radius, metric)

    def knn(self, center, k: int, metric: Metric = L2, **kwargs):
        return self.tree.knn(center, k, metric, **kwargs)
