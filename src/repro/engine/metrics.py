"""Per-query latency and page-access accounting for batch query runs.

The paper reports *average* disk accesses per query; a serving system cares
about the *distribution* — tail latencies and worst-case page bills.  This
module is the lightweight (numpy-only) recorder both execution paths share:

- the single-query loop measures every query exactly (``perf_counter`` +
  an ``IOStats`` checkpoint around each call);
- the shared-traversal engine fetches each node once for many queries, so
  per-query charged reads no longer exist; it records instead how many
  nodes were visited *on behalf of* each query (the query's page working
  set) and attributes the batch wall time proportionally to those visits.

Either way the result is a :class:`BatchMetrics`: per-query latency and
page-access vectors plus the batch totals, with percentile summaries and
ascii histograms for the CLI (``repro bench-batch``), the eval harness and
the engine benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def ascii_histogram(
    values: np.ndarray, bins: int = 10, width: int = 40, unit: str = ""
) -> str:
    """Render a fixed-width ascii histogram of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return "(no samples)"
    counts, edges = np.histogram(values, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(1 if count else 0, round(width * int(count) / peak))
        lines.append(
            f"  [{edges[i]:>10.4g}, {edges[i + 1]:>10.4g}{unit}) "
            f"{bar:<{width}} {int(count)}"
        )
    return "\n".join(lines)


@dataclass
class BatchMetrics:
    """Measurements of one workload execution, one entry per query.

    ``latencies`` are seconds; ``pages`` is the per-query page-access count
    (charged reads in loop mode, attributed node visits in batch mode);
    ``charged_reads`` and ``wall_seconds`` are the batch totals actually
    observed — in batch mode ``charged_reads`` is far below
    ``pages.sum()`` because shared node fetches are charged once.
    """

    label: str
    latencies: np.ndarray
    pages: np.ndarray
    charged_reads: int
    wall_seconds: float
    attributed: bool = field(default=False)

    @classmethod
    def from_batch_run(
        cls,
        label: str,
        node_visits: np.ndarray,
        charged_reads: int,
        wall_seconds: float,
    ) -> "BatchMetrics":
        """Metrics for a shared-traversal run: latency is attributed to each
        query proportionally to the nodes visited on its behalf."""
        visits = np.asarray(node_visits, dtype=np.float64)
        total = visits.sum()
        if total > 0:
            latencies = wall_seconds * visits / total
        else:
            latencies = np.full(visits.shape, wall_seconds / max(visits.size, 1))
        return cls(
            label=label,
            latencies=latencies,
            pages=visits,
            charged_reads=int(charged_reads),
            wall_seconds=float(wall_seconds),
            attributed=True,
        )

    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        return int(self.latencies.size)

    @property
    def queries_per_second(self) -> float:
        return self.num_queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def percentile(self, q: float, what: str = "latency") -> float:
        values = self.latencies if what == "latency" else self.pages
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, q))

    def latency_histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        return np.histogram(self.latencies, bins=bins)

    def pages_histogram(self, bins: int = 10) -> tuple[np.ndarray, np.ndarray]:
        return np.histogram(self.pages, bins=bins)

    def summary(self) -> dict:
        """A flat row for table rendering."""
        return {
            "label": self.label,
            "queries": self.num_queries,
            "wall_s": round(self.wall_seconds, 4),
            "qps": round(self.queries_per_second, 1),
            "charged_reads": self.charged_reads,
            "reads/query": round(self.charged_reads / max(self.num_queries, 1), 2),
            "lat_p50_ms": round(self.percentile(50) * 1e3, 4),
            "lat_p95_ms": round(self.percentile(95) * 1e3, 4),
            "lat_max_ms": round(self.percentile(100) * 1e3, 4),
            "pages_p50": round(self.percentile(50, "pages"), 1),
            "pages_p95": round(self.percentile(95, "pages"), 1),
            "pages_max": round(self.percentile(100, "pages"), 1),
        }

    def render(self, bins: int = 10) -> str:
        """Summary plus latency/page histograms, ready to print."""
        s = self.summary()
        kind = "attributed" if self.attributed else "measured"
        head = (
            f"{self.label}: {s['queries']} queries in {s['wall_s']}s "
            f"({s['qps']} q/s), {s['charged_reads']} charged page reads "
            f"({s['reads/query']}/query)"
        )
        return "\n".join(
            [
                head,
                f"per-query latency ({kind}, ms): "
                f"p50={s['lat_p50_ms']} p95={s['lat_p95_ms']} max={s['lat_max_ms']}",
                ascii_histogram(self.latencies * 1e3, bins=bins, unit=" ms"),
                f"per-query page accesses: p50={s['pages_p50']} "
                f"p95={s['pages_p95']} max={s['pages_max']}",
                ascii_histogram(self.pages, bins=bins),
            ]
        )


class LoopRecorder:
    """Collects exact per-query measurements for single-query loops.

    Usage: ``with recorder.query():`` around each call; the recorder
    snapshots the index's ``IOStats`` and ``perf_counter`` per query and
    assembles a :class:`BatchMetrics` at the end.
    """

    def __init__(self, label: str, io_stats) -> None:
        self.label = label
        self.io = io_stats
        self._latencies: list[float] = []
        self._pages: list[float] = []
        self._start_reads: int | None = None
        self._start_time = 0.0
        self._wall_start: float | None = None

    def start_query(self) -> None:
        import time

        if self._wall_start is None:
            self._wall_start = time.perf_counter()
        self.io.checkpoint()
        self._start_time = time.perf_counter()

    def end_query(self) -> None:
        import time

        self._latencies.append(time.perf_counter() - self._start_time)
        self._pages.append(self.io.since_checkpoint().weighted_cost())

    def finish(self, charged_reads: int | None = None) -> BatchMetrics:
        import time

        wall = (
            time.perf_counter() - self._wall_start
            if self._wall_start is not None
            else float(np.sum(self._latencies))
        )
        pages = np.asarray(self._pages, dtype=np.float64)
        return BatchMetrics(
            label=self.label,
            latencies=np.asarray(self._latencies, dtype=np.float64),
            pages=pages,
            charged_reads=(
                int(charged_reads)
                if charged_reads is not None
                else int(round(pages.sum()))
            ),
            wall_seconds=wall,
            attributed=False,
        )
