"""Structure-agnostic traversal kernel: one batch engine for every index.

The shared-traversal batch engine used to be hard-wired to the hybrid tree
(:mod:`repro.engine.batch`), while every baseline answered batched and
parallel workloads through a measured per-query loop — so cross-structure
benchmarks compared an optimized engine against an unoptimized one.  This
module extracts the traversal into three generic functions written against a
small **traversable-index protocol**; the hybrid tree and all paged
baselines implement it, and single-query, batched, and N-worker parallel
execution flow through this one code path with the same ``IOStats`` /
``BatchMetrics`` accounting.

The protocol (duck-typed; see INTERNALS section 9 for the contract):

``index.dims``
    Feature-space dimensionality.
``index.io``
    The :class:`~repro.storage.iostats.IOStats` accountant queries charge.
``index.trav_root() -> (ref, ctx)``
    Root node reference plus an opaque traversal context (e.g. the node's
    bounding region) threaded down through ``trav_children``.
``index.trav_node(ref, charge=True) -> node``
    Fetch a node, charging through the structure's own ``NodeManager`` (so
    supernodes charge multiple pages, bounded caches stay honest, etc.).
``index.trav_is_leaf(node) -> bool``
``index.trav_leaf_points(node) -> (points_f32, oids)``
    The data page's live entries (row-aligned arrays).
``index.trav_children(node, ctx) -> [(child_ref, child_ctx, bound)]``
    Child enumeration in the structure's canonical visit order; ``bound``
    is a :class:`ChildBound` for vectorized pruning.

Optional protocol members:

``trav_dedup`` (class attr, default False)
    True for structures whose directory references a child from several
    places (the hB-tree's path postings): the kernel then charges each page
    once per batch and scans each (leaf, query) pair once, matching the
    structure's single-query de-duplication semantics.
``trav_supports_box`` (class attr, default True)
    False for purely distance-based structures (M-tree): box queries raise
    ``TypeError`` instead of traversing.
``trav_check_metric(metric)``
    Raise if the structure cannot answer queries under ``metric`` (SS-tree
    spheres are Euclidean-only; the M-tree is committed to its build-time
    metric).
``trav_degrade(exc) -> (vectors, oids)``
    Corruption fallback: answer the whole batch from a sequential scan
    (hybrid tree ``on_corruption="scan"``).  Absent, page corruption
    propagates.

Results are **bit-identical** to the structures' pre-kernel recursive query
methods: leaves are scanned with the same per-query numpy kernels in the
same visit order, the batch bound predicates perform the same float
operations row-wise as their scalar forms, and k-NN selection uses the
deterministic ``(distance, oid)`` total order everywhere.

Every kernel accepts a :class:`repro.resilience.Deadline` and checks it at
node-visit granularity: an expired budget raises
:class:`~repro.resilience.QueryTimeoutError` (or, under
``on_timeout="partial"``, returns a
:class:`~repro.resilience.PartialResult` carrying the hits accumulated
before the deadline fired, with honest metrics for the work actually
done).  The deadline is also installed as the ambient
:func:`~repro.resilience.deadline_scope`, so the layers below — the
``NodeManager`` retry loop, the degraded sequential scan — spend from the
same budget.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.distances import L2, Metric, mindist_rect_many
from repro.engine.metrics import BatchMetrics
from repro.geometry.rect import Rect
from repro.resilience import (
    Deadline,
    PartialResult,
    QueryTimeoutError,
    deadline_scope,
)
from repro.storage.errors import PageCorruptionError

__all__ = [
    "ChildBound",
    "RectBound",
    "kernel_range_search_many",
    "kernel_distance_range_many",
    "kernel_knn_many",
]


def _as_query_matrix(centers, dims: int) -> np.ndarray:
    """Canonicalise a batch of query points exactly like
    ``check_vector`` does per point (float32 precision)."""
    qs = np.asarray(centers, dtype=np.float32).astype(np.float64)
    if qs.ndim == 1:
        qs = qs[None, :]
    if qs.ndim != 2 or qs.shape[1] != dims:
        raise ValueError(
            f"expected (n, {dims}) query points, got shape {qs.shape}"
        )
    if not np.all(np.isfinite(qs)):
        raise ValueError("query vectors must be finite")
    return qs


# ----------------------------------------------------------------------
# Child bounds: the pruning predicates, one object per child edge
# ----------------------------------------------------------------------
class ChildBound:
    """Vectorized pruning predicates for one child of an index node.

    Structures provide a subclass per region geometry; the kernel evaluates
    the predicate for all alive queries at once.  Each row of the inputs is
    one query; each method returns one value per row.
    """

    __slots__ = ()

    def box_mask(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Rows whose query box can contain points of this child."""
        raise TypeError(
            f"{type(self).__name__} has no box geometry; the structure "
            "should set trav_supports_box = False"
        )

    def mindist(self, qs: np.ndarray, metric: Metric) -> np.ndarray:
        """Lower bound on the distance from each query point to the child."""
        raise NotImplementedError

    def distance_mask(self, qs: np.ndarray, radii: np.ndarray, metric: Metric) -> np.ndarray:
        """Rows whose distance-range query can reach this child."""
        return self.mindist(qs, metric) <= radii


class RectBound(ChildBound):
    """The common case: a child bounded by an axis-aligned rectangle."""

    __slots__ = ("rect",)

    def __init__(self, rect: Rect):
        self.rect = rect

    def box_mask(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return self.rect.intersects_boxes_mask(lows, highs)

    def mindist(self, qs: np.ndarray, metric: Metric) -> np.ndarray:
        return mindist_rect_many(metric, qs, self.rect.low, self.rect.high)


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------
def _reads(io) -> int:
    return io.random_reads + io.sequential_reads


def check_on_timeout(on_timeout: str) -> None:
    """Validate the ``on_timeout`` policy argument at the API boundary."""
    if on_timeout not in ("raise", "partial"):
        raise ValueError('on_timeout must be "raise" or "partial"')


def _wrap_partial(out, err: QueryTimeoutError | None, n: int):
    """Under ``on_timeout="partial"``, envelope a timed-out batch's output.

    Kernel-granularity timeouts are conservative: the traversal stopped
    mid-flight, so *no* query can be certified complete even though the
    accumulated hits per query are real.
    """
    if err is None:
        return out
    return PartialResult(out, np.zeros(n, dtype=bool), err)


def _finish(results, visits, index, start, reads0, return_metrics, label):
    if not return_metrics:
        return results
    wall = time.perf_counter() - start
    metrics = BatchMetrics.from_batch_run(
        label=label,
        node_visits=visits,
        charged_reads=_reads(index.io) - reads0,
        wall_seconds=wall,
    )
    return results, metrics


def _make_fetch(index, charged: set):
    """Node fetch honouring the structure's de-duplication contract."""
    if not getattr(index, "trav_dedup", False):
        return index.trav_node

    def fetch(ref):
        node = index.trav_node(ref, charge=ref not in charged)
        charged.add(ref)
        return node

    return fetch


def _dedup_filter(index, scanned: dict, ref, alive: np.ndarray, n: int) -> np.ndarray:
    """For dedup structures: drop queries that already scanned this leaf."""
    if not getattr(index, "trav_dedup", False):
        return alive
    done = scanned.get(ref)
    if done is None:
        done = np.zeros(n, dtype=bool)
        scanned[ref] = done
    alive = alive[~done[alive]]
    done[alive] = True
    return alive


# ----------------------------------------------------------------------
# Box range queries
# ----------------------------------------------------------------------
def kernel_range_search_many(
    index,
    queries,
    return_metrics: bool = False,
    label: str = "range-batch",
    deadline: Deadline | None = None,
    on_timeout: str = "raise",
):
    """Execute many box range queries in one structure-agnostic traversal.

    Returns one oid list per query (bit-identical to looping the index's
    single-query ``range_search``); with ``return_metrics=True`` also a
    :class:`BatchMetrics`.  ``deadline`` bounds the traversal; on expiry
    the call raises :class:`QueryTimeoutError` or — under
    ``on_timeout="partial"`` — returns a :class:`PartialResult`.
    """
    start = time.perf_counter()
    check_on_timeout(on_timeout)
    reads0 = _reads(index.io)
    if not getattr(index, "trav_supports_box", True):
        raise TypeError(
            "this index is distance-based: it has no coordinate geometry "
            "to answer bounding-box (window) queries — use a feature-based "
            "index such as the hybrid tree"
        )
    queries = list(queries)
    n = len(queries)
    if n == 0:
        return _finish([], np.empty(0), index, start, reads0, return_metrics, label)
    for q in queries:
        if q.dims != index.dims:
            raise ValueError("query dimensionality mismatch")
    lows = np.stack([q.low for q in queries])
    highs = np.stack([q.high for q in queries])
    results: list[list[np.ndarray]] = [[] for _ in range(n)]
    visits = np.zeros(n, dtype=np.int64)
    charged: set = set()
    scanned: dict = {}
    fetch = _make_fetch(index, charged)

    def visit(ref, ctx, alive: np.ndarray) -> None:
        if deadline is not None:
            deadline.check()
        node = fetch(ref)
        visits[alive] += 1
        if index.trav_is_leaf(node):
            alive = _dedup_filter(index, scanned, ref, alive, n)
            if not alive.size:
                return
            pts, oids = index.trav_leaf_points(node)
            if len(pts):
                inside = Rect.boxes_contain_points_mask(
                    lows[alive], highs[alive], pts
                )
                for row, qi in zip(inside, alive):
                    if row.any():
                        results[qi].append(oids[row])
            return
        for child_ref, child_ctx, bound in index.trav_children(node, ctx):
            sub = alive[bound.box_mask(lows[alive], highs[alive])]
            if sub.size:
                visit(child_ref, child_ctx, sub)

    root_ref, root_ctx = index.trav_root()
    degrade = getattr(index, "trav_degrade", None)
    err = None
    scan_out = None
    try:
        with deadline_scope(deadline):
            try:
                visit(root_ref, root_ctx, np.arange(n))
            except PageCorruptionError as exc:
                # Same policy as the single-query path: ``on_corruption=
                # "scan"`` answers the whole batch from one sequential scan
                # (still under the deadline — see ``_scan_entries``).
                if degrade is None:
                    raise
                vectors, oids = degrade(exc)
                inside = Rect.boxes_contain_points_mask(lows, highs, vectors)
                scan_out = [[int(o) for o in oids[row]] for row in inside]
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc
    if scan_out is not None:
        out = scan_out
    else:
        out = [[int(o) for arr in per_query for o in arr] for per_query in results]
    return _finish(
        _wrap_partial(out, err, n), visits, index, start, reads0, return_metrics, label
    )


# ----------------------------------------------------------------------
# Distance range queries
# ----------------------------------------------------------------------
def kernel_distance_range_many(
    index,
    centers,
    radii,
    metric: Metric = L2,
    return_metrics: bool = False,
    label: str = "distance-batch",
    deadline: Deadline | None = None,
    on_timeout: str = "raise",
):
    """Execute many distance-range queries (one shared metric) in one pass.

    ``radii`` may be a scalar or one radius per query.  Bit-identical to
    looping the index's single-query ``distance_range``.  ``deadline`` /
    ``on_timeout`` behave as in :func:`kernel_range_search_many`.
    """
    start = time.perf_counter()
    check_on_timeout(on_timeout)
    reads0 = _reads(index.io)
    check = getattr(index, "trav_check_metric", None)
    if check is not None:
        check(metric)
    qs = _as_query_matrix(centers, index.dims)
    n = qs.shape[0]
    radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (n,))
    if np.any(radii < 0):
        raise ValueError("radius must be non-negative")
    out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    visits = np.zeros(n, dtype=np.int64)
    charged: set = set()
    scanned: dict = {}
    fetch = _make_fetch(index, charged)

    def visit(ref, ctx, alive: np.ndarray) -> None:
        if deadline is not None:
            deadline.check()
        node = fetch(ref)
        visits[alive] += 1
        if index.trav_is_leaf(node):
            alive = _dedup_filter(index, scanned, ref, alive, n)
            if not alive.size:
                return
            pts, oids = index.trav_leaf_points(node)
            if len(pts):
                points64 = pts.astype(np.float64)
                for qi in alive:
                    dists = metric.distance_batch(points64, qs[qi])
                    for i in np.flatnonzero(dists <= radii[qi]):
                        out[qi].append((int(oids[i]), float(dists[i])))
            return
        for child_ref, child_ctx, bound in index.trav_children(node, ctx):
            sub = alive[bound.distance_mask(qs[alive], radii[alive], metric)]
            if sub.size:
                visit(child_ref, child_ctx, sub)

    root_ref, root_ctx = index.trav_root()
    degrade = getattr(index, "trav_degrade", None)
    err = None
    try:
        with deadline_scope(deadline):
            try:
                visit(root_ref, root_ctx, np.arange(n))
            except PageCorruptionError as exc:
                if degrade is None:
                    raise
                vectors, oids = degrade(exc)
                points64 = vectors.astype(np.float64)
                out = []
                for qi in range(n):
                    dists = metric.distance_batch(points64, qs[qi])
                    out.append(
                        [
                            (int(oids[i]), float(dists[i]))
                            for i in np.flatnonzero(dists <= radii[qi])
                        ]
                    )
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc
        while len(out) < n:  # degraded scan interrupted mid-rebuild
            out.append([])
    return _finish(
        _wrap_partial(out, err, n), visits, index, start, reads0, return_metrics, label
    )


# ----------------------------------------------------------------------
# k-nearest-neighbour queries
# ----------------------------------------------------------------------
def kernel_knn_many(
    index,
    centers,
    k: int,
    metric: Metric = L2,
    approximation_factor: float = 0.0,
    return_metrics: bool = False,
    label: str = "knn-batch",
    deadline: Deadline | None = None,
    on_timeout: str = "raise",
):
    """Execute many k-NN queries in one shared branch-and-bound traversal.

    Children are visited in order of their best lower bound over the alive
    set (a batch analogue of best-first), and each query prunes with its own
    current kth distance under the deterministic ``(distance, oid)`` order —
    so for ``approximation_factor == 0`` every query's result is the exact
    k smallest entries under that total order.  ``deadline`` / ``on_timeout``
    behave as in :func:`kernel_range_search_many`; a partial k-NN result
    holds each query's best candidates found so far.
    """
    start = time.perf_counter()
    check_on_timeout(on_timeout)
    reads0 = _reads(index.io)
    if k < 1:
        raise ValueError("k must be >= 1")
    if approximation_factor < 0:
        raise ValueError("approximation_factor must be >= 0")
    check = getattr(index, "trav_check_metric", None)
    if check is not None:
        check(metric)
    qs = _as_query_matrix(centers, index.dims)
    n = qs.shape[0]
    shrink = 1.0 / (1.0 + approximation_factor)
    # One max-heap of the best k per query, keyed (-distance, -oid) as in
    # the single-query paths; kth[i] caches query i's current kth distance.
    heaps: list[list[tuple[float, int]]] = [[] for _ in range(n)]
    kth = np.full(n, np.inf)
    visits = np.zeros(n, dtype=np.int64)
    charged: set = set()
    scanned: dict = {}
    fetch = _make_fetch(index, charged)

    def visit(ref, ctx, alive: np.ndarray) -> None:
        if deadline is not None:
            deadline.check()
        node = fetch(ref)
        visits[alive] += 1
        if index.trav_is_leaf(node):
            alive = _dedup_filter(index, scanned, ref, alive, n)
            if not alive.size:
                return
            pts, oids = index.trav_leaf_points(node)
            if not len(pts):
                return
            points64 = pts.astype(np.float64)
            for qi in alive:
                dists = metric.distance_batch(points64, qs[qi])
                best = heaps[qi]
                for i, dist in enumerate(dists):
                    dist = float(dist)
                    oid = int(oids[i])
                    if len(best) < k:
                        heapq.heappush(best, (-dist, -oid))
                    elif (dist, oid) < (-best[0][0], -best[0][1]):
                        heapq.heapreplace(best, (-dist, -oid))
                if len(best) >= k:
                    kth[qi] = -best[0][0]
            return
        scored = []
        for child_ref, child_ctx, bound in index.trav_children(node, ctx):
            bounds = bound.mindist(qs[alive], metric)
            scored.append((float(bounds.min()), child_ref, child_ctx, bounds))
        scored.sort(key=lambda entry: entry[0])
        for _, child_ref, child_ctx, bounds in scored:
            # Re-filter against the *current* kth: earlier siblings may have
            # tightened it since the bounds were computed.
            sub = alive[bounds <= kth[alive] * shrink]
            if sub.size:
                visit(child_ref, child_ctx, sub)

    root_ref, root_ctx = index.trav_root()
    degrade = getattr(index, "trav_degrade", None)
    err = None
    scan_out = None
    try:
        with deadline_scope(deadline):
            try:
                visit(root_ref, root_ctx, np.arange(n))
            except PageCorruptionError as exc:
                if degrade is None:
                    raise
                vectors, oids = degrade(exc)
                points64 = vectors.astype(np.float64)
                scan_out = []
                for qi in range(n):
                    dists = metric.distance_batch(points64, qs[qi])
                    order = np.lexsort((oids, dists))[:k]
                    scan_out.append(
                        [(int(oids[i]), float(dists[i])) for i in order]
                    )
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc
        if scan_out is not None:
            while len(scan_out) < n:  # degraded scan interrupted mid-rebuild
                scan_out.append([])
    if scan_out is not None:
        out = scan_out
    else:
        out = [
            sorted(
                ((-neg_oid, -neg_dist) for neg_dist, neg_oid in best),
                key=lambda t: (t[1], t[0]),
            )
            for best in heaps
        ]
    return _finish(
        _wrap_partial(out, err, n), visits, index, start, reads0, return_metrics, label
    )
