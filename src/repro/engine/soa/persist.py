"""Serialize a :class:`SOASnapshot` to a flat, mmap-friendly byte section.

Framing (all integers little-endian)::

    offset 0   4 bytes   magic b"SOA1"
    offset 4   4 bytes   header length H (uint32)
    offset 8   H bytes   header JSON (utf-8)
    ...        padding   zero bytes up to the first 64-byte boundary
    ...        arrays    each array's raw bytes, 64-byte aligned

The header JSON records the snapshot scalars (``kind``, ``dims``,
``dedup``, ``supports_box``) and one descriptor per array —
``{name, dtype, shape, offset}`` with ``offset`` relative to the start of
the section.  Alignment to 64 bytes keeps every array cacheline-aligned
when the section itself starts on a page boundary, which it does in the
single-file format (``HybridTree.save`` writes it as whole pages).

:func:`deserialize_snapshot` builds the arrays with ``np.frombuffer``
directly over the supplied buffer — zero-copy when the buffer is an
``mmap`` view, so parallel query workers share one physical copy of the
snapshot.  Integrity is the caller's job: the single-file format stores a
CRC32 of the section in the superblock manifest and verifies it before
deserializing (a mismatch degrades to the object-walk kernel rather than
failing the open).

Only ``array_only`` snapshots (rect-bounded kinds) can be persisted: the
sphere-bounded kinds evaluate pruning through live ``ChildBound`` objects,
which have no array form (see :mod:`repro.engine.soa.snapshot`).
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.engine.soa.snapshot import SOASnapshot

__all__ = ["SNAPSHOT_SECTION_VERSION", "serialize_snapshot", "deserialize_snapshot"]

SNAPSHOT_SECTION_VERSION = 1

_MAGIC = b"SOA1"
_ALIGN = 64

#: Arrays persisted in this order; optional ones are skipped when None.
_ARRAY_FIELDS = (
    "node_ref",
    "node_is_leaf",
    "node_pages",
    "child_start",
    "leaf_start",
    "leaf_end",
    "edge_child",
    "box_low",
    "box_high",
    "dist_low",
    "dist_high",
    "points",
    "oids",
)


class SnapshotFormatError(ValueError):
    """The byte section is not a well-formed snapshot."""


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def serialize_snapshot(snap: SOASnapshot) -> bytes:
    """Pack ``snap`` into one contiguous byte section."""
    if not snap.array_only:
        raise ValueError(
            f"snapshot kind {snap.kind!r} needs live bound objects and "
            "cannot be persisted; only rect-bounded kinds serialize"
        )
    descriptors = []
    blobs = []
    for name in _ARRAY_FIELDS:
        arr = getattr(snap, name)
        if arr is None:
            continue
        arr = np.ascontiguousarray(arr)
        descriptors.append(
            {
                "name": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                # Offset patched below, once the header size is known.
                "offset": 0,
            }
        )
        blobs.append(arr.tobytes())

    # Two passes: descriptor offsets change the header length, which
    # changes the offsets.  Padding the header to alignment first makes the
    # layout insensitive to the exact digit counts in the offsets — one
    # re-encode always converges.
    header = {
        "version": SNAPSHOT_SECTION_VERSION,
        "kind": snap.kind,
        "dims": snap.dims,
        "dedup": snap.dedup,
        "supports_box": snap.supports_box,
        "arrays": descriptors,
    }
    for _ in range(4):
        encoded = json.dumps(header, separators=(",", ":")).encode()
        pos = _align(len(_MAGIC) + 4 + len(encoded))
        changed = False
        for desc, blob in zip(descriptors, blobs):
            if desc["offset"] != pos:
                desc["offset"] = pos
                changed = True
            pos = _align(pos + len(blob))
        if not changed:
            break
    else:  # pragma: no cover - offsets always converge in two passes
        raise AssertionError("snapshot header layout did not converge")

    out = bytearray()
    out += _MAGIC
    out += struct.pack("<I", len(encoded))
    out += encoded
    for desc, blob in zip(descriptors, blobs):
        out += b"\x00" * (desc["offset"] - len(out))
        out += blob
    return bytes(out)


def deserialize_snapshot(buf) -> SOASnapshot:
    """Rebuild a snapshot over ``buf`` (bytes / memoryview) without copying.

    The returned arrays alias ``buf``; keep the underlying mapping alive
    for the snapshot's lifetime.  Raises :class:`SnapshotFormatError` on
    structural problems (bad magic, truncated section, unknown version).
    """
    view = memoryview(buf)
    if len(view) < 8 or bytes(view[:4]) != _MAGIC:
        raise SnapshotFormatError("bad snapshot magic")
    (header_len,) = struct.unpack("<I", view[4:8])
    if 8 + header_len > len(view):
        raise SnapshotFormatError("truncated snapshot header")
    try:
        header = json.loads(bytes(view[8 : 8 + header_len]))
    except ValueError as exc:
        raise SnapshotFormatError(f"unparseable snapshot header: {exc}") from exc
    if header.get("version") != SNAPSHOT_SECTION_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot version {header.get('version')!r}"
        )

    arrays: dict[str, np.ndarray] = {}
    for desc in header["arrays"]:
        dtype = np.dtype(desc["dtype"])
        shape = tuple(desc["shape"])
        count = int(np.prod(shape)) if shape else 1
        end = desc["offset"] + count * dtype.itemsize
        if end > len(view):
            raise SnapshotFormatError(
                f"array {desc['name']!r} extends past the section end"
            )
        arr = np.frombuffer(view, dtype=dtype, count=count, offset=desc["offset"])
        arrays[desc["name"]] = arr.reshape(shape)

    required = (
        "node_ref",
        "node_is_leaf",
        "node_pages",
        "child_start",
        "leaf_start",
        "leaf_end",
        "edge_child",
        "points",
        "oids",
    )
    missing = [name for name in required if name not in arrays]
    if missing:
        raise SnapshotFormatError(f"snapshot section missing arrays: {missing}")

    return SOASnapshot(
        kind=header["kind"],
        dims=int(header["dims"]),
        dedup=bool(header["dedup"]),
        supports_box=bool(header["supports_box"]),
        node_ref=arrays["node_ref"],
        node_is_leaf=arrays["node_is_leaf"],
        node_pages=arrays["node_pages"],
        child_start=arrays["child_start"],
        leaf_start=arrays["leaf_start"],
        leaf_end=arrays["leaf_end"],
        edge_child=arrays["edge_child"],
        box_low=arrays.get("box_low"),
        box_high=arrays.get("box_high"),
        dist_low=arrays.get("dist_low"),
        dist_high=arrays.get("dist_high"),
        points=arrays["points"],
        oids=arrays["oids"],
    )
