"""Vectorized traversal over a compiled :class:`SOASnapshot`.

Three entry points mirror :mod:`repro.engine.kernel` — same signatures
(plus the snapshot), same results, same accounting:

- ``soa_range_search_many`` / ``soa_distance_range_many`` run a
  *level-synchronous frontier*: the set of live ``(node, query)`` pairs is
  expanded to ``(edge, query)`` pairs with CSR arithmetic and pruned with
  one vectorized predicate per level, instead of one Python call per node
  per child.  Leaf hits are then replayed in DFS pre-order (occurrence id
  order), which reproduces the object walk's output order exactly.
- ``soa_knn_many`` keeps the object kernel's *sequential* branch-and-bound
  schedule (an explicit stack popping children best-bound-first, each pop
  re-filtered against the current kth distances) because k-NN pruning
  depends on the order leaves are scanned in — but computes every node's
  child-bound matrix in one array op and replaces the per-point Python
  heap with a ``(distance, oid)`` lexsort merge that selects the identical
  k smallest.

Bit-identity rules (asserted by ``tests/test_soa_conformance.py``):

- rect bounds evaluate the same elementwise clip-and-reduce formulas as
  ``mindist_rect_batch`` — row-wise reductions over ``axis=1`` of a 2-d
  array are independent of how many rows ride along, so per-pair batches
  match the object kernel's per-edge batches float for float;
- metrics without a mirrored batch form (quadratic form, user metrics)
  and all sphere geometry fall back to *per-edge grouped* calls of the
  exact same ``ChildBound`` / ``mindist_rect_many`` code the object
  kernel runs;
- leaf scans call ``metric.distance_batch`` on float64 slices with the
  same values and layout as the object kernel's per-leaf
  ``pts.astype(np.float64)``;
- each page is charged once per batch (supernodes charge their page
  count), and dedup structures scan each ``(page, query)`` pair once, at
  the query's first occurrence in DFS order.
"""

from __future__ import annotations

import time

import numpy as np

from repro.distances import L2, LpMetric, Metric, WeightedEuclidean, mindist_rect_many
from repro.engine.kernel import (
    _as_query_matrix,
    _finish,
    _reads,
    _wrap_partial,
    check_on_timeout,
)
from repro.resilience import Deadline, QueryTimeoutError
from repro.storage.iostats import AccessKind

__all__ = [
    "soa_range_search_many",
    "soa_distance_range_many",
    "soa_knn_many",
    "dispatch_range_search_many",
    "dispatch_distance_range_many",
    "dispatch_knn_many",
]


# ----------------------------------------------------------------------
# Dispatch: snapshot attached -> vectorized path, else object walk
# ----------------------------------------------------------------------
def dispatch_range_search_many(
    index,
    queries,
    return_metrics: bool = False,
    label: str = "range-batch",
    timeout=None,
    on_timeout: str = "raise",
):
    from repro.engine.soa.snapshot import active_snapshot

    deadline = Deadline.coerce(timeout)
    snap = active_snapshot(index)
    if snap is not None:
        return soa_range_search_many(
            index, snap, queries, return_metrics, label, deadline, on_timeout
        )
    from repro.engine.kernel import kernel_range_search_many

    return kernel_range_search_many(
        index, queries, return_metrics, label, deadline, on_timeout
    )


def dispatch_distance_range_many(
    index,
    centers,
    radii,
    metric: Metric = L2,
    return_metrics: bool = False,
    label: str = "distance-batch",
    timeout=None,
    on_timeout: str = "raise",
):
    from repro.engine.soa.snapshot import active_snapshot

    deadline = Deadline.coerce(timeout)
    snap = active_snapshot(index)
    if snap is not None:
        return soa_distance_range_many(
            index, snap, centers, radii, metric, return_metrics, label,
            deadline, on_timeout,
        )
    from repro.engine.kernel import kernel_distance_range_many

    return kernel_distance_range_many(
        index, centers, radii, metric, return_metrics, label, deadline, on_timeout
    )


def dispatch_knn_many(
    index,
    centers,
    k: int,
    metric: Metric = L2,
    approximation_factor: float = 0.0,
    return_metrics: bool = False,
    label: str = "knn-batch",
    timeout=None,
    on_timeout: str = "raise",
):
    from repro.engine.soa.snapshot import active_snapshot

    deadline = Deadline.coerce(timeout)
    snap = active_snapshot(index)
    if snap is not None:
        return soa_knn_many(
            index, snap, centers, k, metric, approximation_factor, return_metrics,
            label, deadline, on_timeout,
        )
    from repro.engine.kernel import kernel_knn_many

    return kernel_knn_many(
        index, centers, k, metric, approximation_factor, return_metrics, label,
        deadline, on_timeout,
    )


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------
def _concat_ranges(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]-1, 0..counts[1]-1, ...]`` without a Python loop."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)


def _charge_visited(index, snap, visited: np.ndarray) -> None:
    """One random read per distinct page visited this batch (supernodes
    charge their page count) — the object kernel's once-per-batch fetch."""
    occ = np.flatnonzero(visited)
    if not occ.size:
        return
    refs = snap.node_ref[occ]
    _, first = np.unique(refs, return_index=True)
    pages = int(snap.node_pages[occ][first].sum())
    if pages:
        index.io.record(AccessKind.RANDOM_READ, pages)


def _bisect_windows(
    scol: np.ndarray,
    starts: np.ndarray,
    sizes: np.ndarray,
    low_vals: np.ndarray,
    high_vals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-pair ``[lo, hi)`` rank windows in each leaf's sorted column.

    Vectorized bisection replicating ``np.searchsorted(seg, low, "left")``
    and ``np.searchsorted(seg, high, "right")`` for every (leaf, query)
    pair at once — the same exact float64 comparisons, finished in
    ``ceil(log2(max leaf size + 1))`` rounds of array ops instead of one
    Python-level call per leaf.  ``sizes`` must be >= 1.
    """
    npairs = len(starts)
    base = np.concatenate((starts, starts))
    size2 = np.concatenate((sizes, sizes))
    needles = np.concatenate((low_vals, high_vals))
    is_right = np.zeros(2 * npairs, dtype=bool)
    is_right[npairs:] = True
    lo = np.zeros(2 * npairs, dtype=np.int64)
    hi = size2.astype(np.int64)
    steps = int(np.ceil(np.log2(int(sizes.max()) + 1))) if npairs else 0
    for _ in range(steps):
        mid = (lo + hi) >> 1
        v = scol[base + np.minimum(mid, size2 - 1)]
        go = np.where(is_right, v <= needles, v < needles)
        upd = lo < hi
        lo = np.where(upd & go, mid + 1, lo)
        hi = np.where(upd & ~go, mid, hi)
    return lo[:npairs], lo[npairs:]


def _conservative_query_f32(
    lows: np.ndarray, highs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Query boxes widened to the nearest enclosing float32 box.

    Lows round down and highs round up, so a float32 comparison against
    float32 data never rejects a row the exact float64 comparison keeps —
    the prefilter side of the prefilter-then-exact-check pattern.
    """
    lo = lows.astype(np.float32)
    lo = np.where(
        lo.astype(np.float64) > lows, np.nextafter(lo, np.float32(-np.inf)), lo
    )
    hi = highs.astype(np.float32)
    hi = np.where(
        hi.astype(np.float64) < highs, np.nextafter(hi, np.float32(np.inf)), hi
    )
    return lo, hi


def _per_edge_eval(edges: np.ndarray, fill, fn) -> np.ndarray:
    """Evaluate ``fn(edge_id, row_positions)`` once per distinct edge.

    Rows are regrouped with a stable sort, so each edge sees its queries in
    the original (ascending) order — the exact rows the object kernel
    passes that edge's ``ChildBound``.
    """
    out = np.empty(len(edges), dtype=fill)
    order = np.argsort(edges, kind="stable")
    sorted_edges = edges[order]
    starts = np.flatnonzero(np.diff(sorted_edges)) + 1
    for seg in np.split(order, starts):
        out[seg] = fn(int(edges[seg[0]]), seg)
    return out


class _PairBounds:
    """Pruning predicates over ``(edge, query)`` pair arrays.

    Chooses, per snapshot kind and metric, between fully vectorized pair
    math and per-edge grouped calls of the original bound objects — the
    two regimes described in the module docstring.
    """

    def __init__(self, snap, metric: Metric | None = None):
        self.snap = snap
        self.metric = metric
        self._rectlike = snap.kind in ("rect", "rect2")
        # Lp / weighted-Euclidean mindist_rect_batch is pure elementwise
        # clip-and-reduce, safe to evaluate with per-row boxes.
        self._vec_metric = isinstance(metric, (LpMetric, WeightedEuclidean))

    # -- box intersection ----------------------------------------------
    def box_mask(
        self,
        e: np.ndarray,
        q: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        q32: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        snap = self.snap
        if self._rectlike:
            if q32 is not None:
                # Conservative float32 prefilter (query lows rounded down,
                # highs up; box bounds the other way), then the exact
                # float64 test — row-wise Rect.intersects_boxes_mask — on
                # the few pairs the prefilter keeps.  Containment has no
                # arithmetic, so the final mask is bit-identical.
                lo32, hi32 = q32
                bl32, bh32 = snap.boxes32()
                cand = np.flatnonzero(
                    np.all((lo32[q] <= bh32[e]) & (bl32[e] <= hi32[q]), axis=1)
                )
                ec, qc = e[cand], q[cand]
                exact = np.all(
                    (lows[qc] <= snap.box_high[ec]) & (snap.box_low[ec] <= highs[qc]),
                    axis=1,
                )
                out = np.zeros(len(e), dtype=bool)
                out[cand[exact]] = True
                return out
            # Row-wise Rect.intersects_boxes_mask.
            return np.all(
                (lows[q] <= snap.box_high[e]) & (snap.box_low[e] <= highs[q]),
                axis=1,
            )
        bounds = snap.edge_bounds
        return _per_edge_eval(
            e, bool, lambda eid, seg: bounds[eid].box_mask(lows[q[seg]], highs[q[seg]])
        )

    # -- metric lower bounds -------------------------------------------
    def _rect_mindist(
        self, low: np.ndarray, high: np.ndarray, e: np.ndarray, qrows: np.ndarray
    ) -> np.ndarray:
        metric = self.metric
        # Mirrors LpMetric/WeightedEuclidean.mindist_rect_batch elementwise.
        clipped = np.clip(qrows, low[e], high[e])
        if isinstance(metric, WeightedEuclidean):
            diff = qrows - clipped
            return np.sqrt((metric.weights * diff * diff).sum(axis=1))
        diff = np.abs(qrows - clipped)
        if np.isinf(metric.p):
            return diff.max(axis=1)
        if metric.p == 1.0:
            return diff.sum(axis=1)
        if metric.p == 2.0:
            return np.sqrt((diff * diff).sum(axis=1))
        return (diff ** metric.p).sum(axis=1) ** (1.0 / metric.p)

    def mindist(self, e: np.ndarray, q: np.ndarray, qs: np.ndarray) -> np.ndarray:
        snap, metric = self.snap, self.metric
        if self._rectlike:
            low = snap.dist_low if snap.kind == "rect2" else snap.box_low
            high = snap.dist_high if snap.kind == "rect2" else snap.box_high
            if self._vec_metric:
                return self._rect_mindist(low, high, e, qs[q])
            return _per_edge_eval(
                e,
                np.float64,
                lambda eid, seg: mindist_rect_many(metric, qs[q[seg]], low[eid], high[eid]),
            )
        bounds = snap.edge_bounds
        return _per_edge_eval(
            e, np.float64, lambda eid, seg: bounds[eid].mindist(qs[q[seg]], metric)
        )

    def distance_mask(
        self, e: np.ndarray, q: np.ndarray, qs: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        if self._rectlike:
            return self.mindist(e, q, qs) <= radii[q]
        bounds = self.snap.edge_bounds
        metric = self.metric
        return _per_edge_eval(
            e,
            bool,
            lambda eid, seg: bounds[eid].distance_mask(
                qs[q[seg]], radii[q[seg]], metric
            ),
        )


# ----------------------------------------------------------------------
# Level-synchronous frontier (range / distance queries)
# ----------------------------------------------------------------------
def _run_frontier(snap, n: int, visits: np.ndarray, pair_pred, deadline=None,
                  visited: np.ndarray | None = None):
    """Descend all queries at once; returns the reached leaf pairs.

    ``pair_pred(e, q) -> bool mask`` decides which ``(edge, query)`` pairs
    survive.  Leaf pairs come back deduplicated (for dedup structures, the
    query's first occurrence in DFS order — the occurrence the object
    kernel scans) and sorted by ``(occurrence, query)``.  ``deadline`` is
    checked once per frontier round — each round is one batched level of
    array work, the natural cooperative-cancellation grain here.  The
    caller may supply the ``visited`` page-mask so a mid-frontier timeout
    still bills the pages actually touched.
    """
    nodes = np.zeros(n, dtype=np.int64)
    qs_idx = np.arange(n, dtype=np.int64)
    if visited is None:
        visited = np.zeros(snap.n_nodes, dtype=bool)
    leaf_occ_parts: list[np.ndarray] = []
    leaf_q_parts: list[np.ndarray] = []
    cs = snap.child_start
    while nodes.size:
        if deadline is not None:
            deadline.check()
        visits += np.bincount(qs_idx, minlength=n)
        visited[nodes] = True
        is_leaf = snap.node_is_leaf[nodes]
        if is_leaf.any():
            leaf_occ_parts.append(nodes[is_leaf])
            leaf_q_parts.append(qs_idx[is_leaf])
        inner = ~is_leaf
        nodes, qs_idx = nodes[inner], qs_idx[inner]
        if not nodes.size:
            break
        # The pairs arrive lexsorted by (node, query) without sorting:
        # the root level is trivially sorted, and each expansion emits,
        # per parent in ascending order, its edges in CSR order — whose
        # child occurrence ids ascend (DFS pre-order numbers subtrees
        # contiguously) and, across same-level parents, occupy disjoint
        # ascending id ranges.  Boolean filtering preserves the order, so
        # group boundaries fall out of a single diff.
        grp_start = np.concatenate(
            ([0], np.flatnonzero(np.diff(nodes)) + 1)
        ).astype(np.int64)
        uniq = nodes[grp_start]
        grp_len = np.diff(np.concatenate((grp_start, [len(nodes)])))
        n_edges = cs[uniq + 1] - cs[uniq]
        totals = n_edges * grp_len
        idx = _concat_ranges(totals)
        grp = np.repeat(np.arange(len(uniq), dtype=np.int64), totals)
        # Edge-major within each group: every edge sees the node's full
        # (ascending) alive set, like the object kernel's per-child call.
        e = cs[uniq][grp] + idx // grp_len[grp]
        q = qs_idx[grp_start[grp] + idx % grp_len[grp]]
        keep = pair_pred(e, q)
        nodes, qs_idx = snap.edge_child[e[keep]], q[keep]

    if leaf_occ_parts:
        occ = np.concatenate(leaf_occ_parts)
        lq = np.concatenate(leaf_q_parts)
    else:
        occ = np.empty(0, dtype=np.int64)
        lq = np.empty(0, dtype=np.int64)
    if snap.dedup and occ.size:
        # Keep each (page, query)'s first occurrence in DFS pre-order.
        refs = snap.node_ref[occ]
        order = np.lexsort((occ, lq, refs))
        refs_s, lq_s = refs[order], lq[order]
        first = np.ones(len(order), dtype=bool)
        first[1:] = (refs_s[1:] != refs_s[:-1]) | (lq_s[1:] != lq_s[:-1])
        occ, lq = occ[order[first]], lq[order[first]]
    order = np.lexsort((lq, occ))
    return occ[order], lq[order], visited


def _leaf_groups(occ: np.ndarray, lq: np.ndarray):
    """Split ``(occurrence, query)`` pairs (sorted by occurrence) into
    per-occurrence groups — the replay of the object kernel's leaf visits
    in DFS order."""
    if not occ.size:
        return
    starts = np.flatnonzero(np.diff(occ)) + 1
    for seg in np.split(np.arange(len(occ)), starts):
        yield int(occ[seg[0]]), lq[seg]


def _pair_point_rows(snap, occ: np.ndarray, lq: np.ndarray, budget: int = 1 << 22):
    """Expand sorted ``(occurrence, query)`` leaf pairs into flat
    ``(point row, query)`` index arrays, in blocks of roughly ``budget``
    rows to bound peak memory.

    The flat order is ``(occurrence, query, point)`` — so for any single
    query, hits emerge in DFS-then-point order, exactly the object
    kernel's append order — and blocks follow that order too, so
    concatenating per-block hits preserves it.
    """
    sizes = snap.leaf_end[occ] - snap.leaf_start[occ]
    nz = sizes > 0
    occ, lq, sizes = occ[nz], lq[nz], sizes[nz]
    if not occ.size:
        return
    starts = snap.leaf_start[occ]
    csum = np.cumsum(sizes)
    lo = 0
    while lo < len(occ):
        base = int(csum[lo - 1]) if lo else 0
        hi = max(lo + 1, int(np.searchsorted(csum, base + budget, side="right")))
        blk = slice(lo, hi)
        pidx = np.repeat(starts[blk], sizes[blk]) + _concat_ranges(sizes[blk])
        yield pidx, np.repeat(lq[blk], sizes[blk])
        lo = hi


def _group_hits_by_query(hq: np.ndarray, parts: list[np.ndarray]):
    """Regroup flat hit arrays by query with one stable sort.

    Stability keeps each query's hits in their flat (DFS, point) order.
    Yields ``(query_index, per_query_slices_of_each_part)``.
    """
    order = np.argsort(hq, kind="stable")
    hq = hq[order]
    parts = [p[order] for p in parts]
    bounds = np.flatnonzero(np.diff(hq)) + 1
    firsts = np.concatenate((hq[:1], hq[bounds]))
    for qi, *segs in zip(firsts, *(np.split(p, bounds) for p in parts)):
        yield int(qi), segs


# ----------------------------------------------------------------------
# Box range queries
# ----------------------------------------------------------------------
def soa_range_search_many(
    index,
    snap,
    queries,
    return_metrics: bool = False,
    label: str = "range-batch",
    deadline: Deadline | None = None,
    on_timeout: str = "raise",
):
    """Vectorized form of :func:`repro.engine.kernel.kernel_range_search_many`."""
    start = time.perf_counter()
    check_on_timeout(on_timeout)
    reads0 = _reads(index.io)
    if not snap.supports_box:
        raise TypeError(
            "this index is distance-based: it has no coordinate geometry "
            "to answer bounding-box (window) queries — use a feature-based "
            "index such as the hybrid tree"
        )
    queries = list(queries)
    n = len(queries)
    if n == 0:
        return _finish([], np.empty(0), index, start, reads0, return_metrics, label)
    for q in queries:
        if q.dims != index.dims:
            raise ValueError("query dimensionality mismatch")
    lows = np.stack([q.low for q in queries])
    highs = np.stack([q.high for q in queries])
    visits = np.zeros(n, dtype=np.int64)
    pred = _PairBounds(snap)

    q32 = _conservative_query_f32(lows, highs) if pred._rectlike else None
    out: list[list[int]] = [[] for _ in range(n)]
    visited = np.zeros(snap.n_nodes, dtype=bool)
    err = None
    try:
        occ, lq, _ = _run_frontier(
            snap, n, visits,
            lambda e, q: pred.box_mask(e, q, lows, highs, q32), deadline, visited,
        )
        if deadline is not None:
            deadline.check()
        # Leaf scan in three exact stages (containment is pure comparison, so
        # any evaluation order yields the same hit set as the object kernel's
        # per-leaf ``Rect.boxes_contain_points_mask``):
        #  1. dim 0 by rank: each leaf keeps its points presorted on the first
        #     coordinate, so a query's window is two binary searches — most
        #     points are never touched;
        #  2. a conservative float32 prefilter over the remaining dims;
        #  3. the exact float64 comparisons on the prefilter's survivors.
        # Hits are restored to the object walk's output order — per query, by
        # leaf occurrence in DFS order, then point order — with one lexsort.
        perm, scol = snap.leaf_sort0()
        lo32, hi32 = q32 if q32 is not None else _conservative_query_f32(lows, highs)
        s_arr, e_arr = snap.leaf_start[occ], snap.leaf_end[occ]
        nz = e_arr > s_arr
        pocc, palive, s_arr, sizes = occ[nz], lq[nz], s_arr[nz], (e_arr - s_arr)[nz]
        if pocc.size:
            win_lo, win_hi = _bisect_windows(
                scol, s_arr, sizes, lows[palive, 0], highs[palive, 0]
            )
            m = win_hi - win_lo
            live = np.flatnonzero(m > 0)
            pos = np.repeat(s_arr[live] + win_lo[live], m[live]) + _concat_ranges(m[live])
            pidx = perm[pos]
            qrow = np.repeat(palive[live], m[live])
            hocc = np.repeat(pocc[live], m[live])
            rest32 = snap.points[pidx, 1:]
            keep = np.flatnonzero(
                np.all(
                    (rest32 >= lo32[qrow, 1:]) & (rest32 <= hi32[qrow, 1:]), axis=1
                )
            )
            pidx, qrow, hocc = pidx[keep], qrow[keep], hocc[keep]
            rest64 = snap.points64[pidx, 1:]
            exact = np.all(
                (rest64 >= lows[qrow, 1:]) & (rest64 <= highs[qrow, 1:]), axis=1
            )
            pidx, qrow, hocc = pidx[exact], qrow[exact], hocc[exact]
            order = np.lexsort((pidx, hocc, qrow))
            hq, ho = qrow[order], snap.oids[pidx[order]]
            bounds = np.flatnonzero(np.diff(hq)) + 1
            for qi, seg_o in zip(
                np.concatenate((hq[:1], hq[bounds])), np.split(ho, bounds)
            ):
                out[int(qi)] = seg_o.tolist()
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc
    _charge_visited(index, snap, visited)
    return _finish(
        _wrap_partial(out, err, n), visits, index, start, reads0, return_metrics, label
    )


# ----------------------------------------------------------------------
# Distance range queries
# ----------------------------------------------------------------------
def soa_distance_range_many(
    index,
    snap,
    centers,
    radii,
    metric: Metric = L2,
    return_metrics: bool = False,
    label: str = "distance-batch",
    deadline: Deadline | None = None,
    on_timeout: str = "raise",
):
    """Vectorized form of :func:`repro.engine.kernel.kernel_distance_range_many`."""
    start = time.perf_counter()
    check_on_timeout(on_timeout)
    reads0 = _reads(index.io)
    check = getattr(index, "trav_check_metric", None)
    if check is not None:
        check(metric)
    qs = _as_query_matrix(centers, index.dims)
    n = qs.shape[0]
    radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (n,))
    if np.any(radii < 0):
        raise ValueError("radius must be non-negative")
    visits = np.zeros(n, dtype=np.int64)
    pred = _PairBounds(snap, metric)

    out: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    visited = np.zeros(snap.n_nodes, dtype=bool)
    # Hit accumulators live outside the try so a mid-scan timeout can still
    # salvage the blocks already evaluated into the partial envelope.
    hit_q: list[np.ndarray] = []
    hit_o: list[np.ndarray] = []
    hit_d: list[np.ndarray] = []
    err = None
    try:
        occ, lq, _ = _run_frontier(
            snap, n, visits,
            lambda e, q: pred.distance_mask(e, q, qs, radii), deadline, visited,
        )
        if isinstance(metric, (LpMetric, WeightedEuclidean)):
            # These metrics' ``distance_batch`` is a row-wise abs/clip-free
            # difference plus an ``axis=1`` reduction — per-row results don't
            # depend on which other rows ride along, so one flat evaluation
            # over every (leaf, query, point) row is bit-identical to the
            # object kernel's per-leaf calls.
            for pidx, qrow in _pair_point_rows(snap, occ, lq):
                if deadline is not None:
                    deadline.check()
                diff = snap.points64[pidx] - qs[qrow]
                if isinstance(metric, WeightedEuclidean):
                    dists = np.sqrt((metric.weights * diff * diff).sum(axis=1))
                else:
                    diff = np.abs(diff)
                    if np.isinf(metric.p):
                        dists = diff.max(axis=1)
                    elif metric.p == 1.0:
                        dists = diff.sum(axis=1)
                    elif metric.p == 2.0:
                        dists = np.sqrt((diff * diff).sum(axis=1))
                    else:
                        dists = (diff ** metric.p).sum(axis=1) ** (1.0 / metric.p)
                hits = np.flatnonzero(dists <= radii[qrow])
                if hits.size:
                    hit_q.append(qrow[hits])
                    hit_o.append(snap.oids[pidx[hits]])
                    hit_d.append(dists[hits])
        else:
            # Quadratic-form / user metrics have no mirrored batch form:
            # replay the object kernel's per-leaf scans verbatim.
            for node, alive in _leaf_groups(occ, lq):
                if deadline is not None:
                    deadline.check()
                s, e = snap.leaf_start[node], snap.leaf_end[node]
                if e > s:
                    points64 = snap.points64[s:e]
                    oids = snap.oids[s:e]
                    for qi in alive:
                        dists = metric.distance_batch(points64, qs[qi])
                        for i in np.flatnonzero(dists <= radii[qi]):
                            out[qi].append((int(oids[i]), float(dists[i])))
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc
    if hit_q:
        for qi, (oid_seg, d_seg) in _group_hits_by_query(
            np.concatenate(hit_q),
            [np.concatenate(hit_o), np.concatenate(hit_d)],
        ):
            out[qi] = list(zip(oid_seg.tolist(), d_seg.tolist()))
    _charge_visited(index, snap, visited)
    return _finish(
        _wrap_partial(out, err, n), visits, index, start, reads0, return_metrics, label
    )


# ----------------------------------------------------------------------
# k-nearest-neighbour queries
# ----------------------------------------------------------------------
def soa_knn_many(
    index,
    snap,
    centers,
    k: int,
    metric: Metric = L2,
    approximation_factor: float = 0.0,
    return_metrics: bool = False,
    label: str = "knn-batch",
    deadline: Deadline | None = None,
    on_timeout: str = "raise",
):
    """Vectorized form of :func:`repro.engine.kernel.kernel_knn_many`.

    The explicit stack pops children in exactly the object kernel's
    recursion order, so every kth-distance re-filter sees the same state
    and the visit sequence — hence the exact result under the
    ``(distance, oid)`` total order — is identical.
    """
    start = time.perf_counter()
    check_on_timeout(on_timeout)
    reads0 = _reads(index.io)
    if k < 1:
        raise ValueError("k must be >= 1")
    if approximation_factor < 0:
        raise ValueError("approximation_factor must be >= 0")
    check = getattr(index, "trav_check_metric", None)
    if check is not None:
        check(metric)
    qs = _as_query_matrix(centers, index.dims)
    n = qs.shape[0]
    shrink = 1.0 / (1.0 + approximation_factor)
    pred = _PairBounds(snap, metric)

    best_d: list[np.ndarray] = [np.empty(0)] * n
    best_o: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    kth = np.full(n, np.inf)
    visits = np.zeros(n, dtype=np.int64)
    visited = np.zeros(snap.n_nodes, dtype=bool)
    scanned: dict[int, np.ndarray] = {}
    cs = snap.child_start

    # Stack entries: (node, alive, bounds-at-push); bounds None for the root.
    stack: list[tuple] = [(0, np.arange(n, dtype=np.int64), None)]

    err = None
    try:
        while stack:
            if deadline is not None:
                deadline.check()
            node, alive, bnds = stack.pop()
            if bnds is not None:
                # Re-filter against the *current* kth: earlier siblings may
                # have tightened it since the bounds were computed.
                alive = alive[bnds <= kth[alive] * shrink]
                if not alive.size:
                    continue
            visits[alive] += 1
            visited[node] = True
            s, e = snap.leaf_start[node], snap.leaf_end[node]
            if snap.node_is_leaf[node]:
                if snap.dedup:
                    ref = int(snap.node_ref[node])
                    done = scanned.get(ref)
                    if done is None:
                        done = scanned[ref] = np.zeros(n, dtype=bool)
                    alive = alive[~done[alive]]
                    if not alive.size:
                        continue
                    done[alive] = True
                if e <= s:
                    continue
                points64 = snap.points64[s:e]
                oids = snap.oids[s:e]
                if pred._vec_metric:
                    # One 3-d broadcast computes the leaf's distances for
                    # every alive query: the axis-2 reductions run per row
                    # exactly as ``distance_batch``'s axis-1 reductions do,
                    # so each row is bit-identical to the per-query call.
                    # ``kth`` is inf until a query's result set fills, so the
                    # candidate mask reproduces the object kernel's
                    # take-all-then-prefilter.
                    diff = points64[None, :, :] - qs[alive][:, None, :]
                    if isinstance(metric, WeightedEuclidean):
                        dmat = np.sqrt(
                            (metric.weights * diff * diff).sum(axis=2)
                        )
                    else:
                        diff = np.abs(diff)
                        if np.isinf(metric.p):
                            dmat = diff.max(axis=2)
                        elif metric.p == 1.0:
                            dmat = diff.sum(axis=2)
                        elif metric.p == 2.0:
                            dmat = np.sqrt((diff * diff).sum(axis=2))
                        else:
                            dmat = (diff ** metric.p).sum(axis=2) ** (
                                1.0 / metric.p
                            )
                    cand_mask = dmat <= kth[alive][:, None]
                    for row in np.flatnonzero(cand_mask.any(axis=1)):
                        qi = alive[row]
                        keep = cand_mask[row]
                        d_all = np.concatenate((best_d[qi], dmat[row][keep]))
                        o_all = np.concatenate((best_o[qi], oids[keep]))
                        top = np.lexsort((o_all, d_all))[:k]
                        best_d[qi], best_o[qi] = d_all[top], o_all[top]
                        if len(top) >= k:
                            kth[qi] = best_d[qi][-1]
                    continue
                for qi in alive:
                    dists = metric.distance_batch(points64, qs[qi])
                    if len(best_d[qi]) >= k:
                        # Candidates beyond the kth can never enter the top
                        # k (ties at kth still can, under the (dist, oid)
                        # order).
                        keep = dists <= kth[qi]
                        cand_d, cand_o = dists[keep], oids[keep]
                    else:
                        cand_d, cand_o = dists, oids
                    if not len(cand_d):
                        continue
                    d_all = np.concatenate((best_d[qi], cand_d))
                    o_all = np.concatenate((best_o[qi], cand_o))
                    top = np.lexsort((o_all, d_all))[:k]
                    best_d[qi], best_o[qi] = d_all[top], o_all[top]
                    if len(top) >= k:
                        kth[qi] = best_d[qi][-1]
                continue
            e0, e1 = int(cs[node]), int(cs[node + 1])
            if e0 == e1:
                continue
            edges = np.arange(e0, e1, dtype=np.int64)
            m = len(alive)
            pair_e = np.repeat(edges, m)
            pair_q = np.tile(alive, len(edges))
            bounds = pred.mindist(pair_e, pair_q, qs).reshape(len(edges), m)
            order = np.argsort(bounds.min(axis=1), kind="stable")
            for idx in order[::-1]:
                stack.append(
                    (int(snap.edge_child[edges[idx]]), alive, bounds[idx])
                )
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc

    _charge_visited(index, snap, visited)
    out = [
        [(int(o), float(d)) for o, d in zip(best_o[qi], best_d[qi])]
        for qi in range(n)
    ]
    return _finish(
        _wrap_partial(out, err, n), visits, index, start, reads0, return_metrics, label
    )
