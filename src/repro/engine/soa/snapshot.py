"""Compile a ``trav_*`` index into a flat struct-of-arrays snapshot.

:func:`compile_snapshot` performs one DFS pre-order walk over the traversal
protocol (:mod:`repro.engine.kernel`) and emits a :class:`SOASnapshot`:

- **node arrays**, one row per *occurrence* in the walk (for dedup
  structures like the hB-tree a shared page yields one row per kd-path
  posting, all carrying the same ``node_ref``);
- **CSR child offsets**: the edges of occurrence ``i`` are rows
  ``child_start[i] : child_start[i + 1]`` of the edge arrays, in the
  structure's canonical ``trav_children`` order;
- **per-edge bound rows** packed by geometry kind (rectangles for the
  hybrid/R/X/kd-B trees, path-rect + region pairs for the hB-tree,
  center + radius for the sphere-bounded SS/SR/M-trees);
- **concatenated leaf data**: all live leaf vectors in one ``float32``
  array and their oids beside it, each leaf occurrence holding a slice
  ``leaf_start[i] : leaf_end[i]`` (occurrences of the same page share one
  slice).

Occurrence ids are DFS pre-order ranks, so sorting leaf hits by occurrence
id reproduces the object-walk kernel's output order exactly — that is what
lets the vectorized kernel return bit-identical results without actually
recursing.

For the sphere-bounded structures the snapshot *also* keeps the original
:class:`~repro.engine.kernel.ChildBound` objects (``edge_bounds``): their
scalar sphere tests reduce a 1-d vector through BLAS ``dot``
(``np.linalg.norm``), whose summation order differs from an axis
reduction, so the kernel evaluates those bounds through the original
objects — grouped per edge — to stay bitwise identical to the object walk.
The packed center/radius arrays are still emitted for tooling and future
vectorized-lower-bound work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SOASnapshot", "active_snapshot", "compile_snapshot"]

#: Geometry kinds a snapshot's edges can carry.
BOUND_KINDS = ("rect", "rect2", "sphere", "rect_sphere", "router")

#: Kinds whose pruning predicates are pure array math over the packed
#: arrays — these snapshots can be persisted and reloaded without the
#: original index objects.  The sphere kinds need ``edge_bounds``.
ARRAY_ONLY_KINDS = ("rect", "rect2")


@dataclass
class SOASnapshot:
    """A compiled index: the directory and leaf data as contiguous arrays."""

    kind: str
    dims: int
    dedup: bool
    supports_box: bool
    # Node arrays (one row per DFS pre-order occurrence).
    node_ref: np.ndarray  # int64 (N,)   original page id (charging, dedup)
    node_is_leaf: np.ndarray  # bool (N,)
    node_pages: np.ndarray  # int32 (N,)  pages charged per visit (supernodes > 1)
    child_start: np.ndarray  # int64 (N+1,) CSR offsets into the edge arrays
    leaf_start: np.ndarray  # int64 (N,)  slice into points/oids (0:0 if internal)
    leaf_end: np.ndarray  # int64 (N,)
    # Edge arrays (one row per child edge).
    edge_child: np.ndarray  # int64 (E,)  target occurrence id
    box_low: np.ndarray | None = None  # float64 (E, d)  rect / path-rect lows
    box_high: np.ndarray | None = None  # float64 (E, d)
    dist_low: np.ndarray | None = None  # float64 (E, d)  rect2: region for mindist
    dist_high: np.ndarray | None = None  # float64 (E, d)
    center: np.ndarray | None = None  # float64 (E, d)  sphere / router centers
    radius: np.ndarray | None = None  # float64 (E,)
    # Concatenated leaf data.
    points: np.ndarray = field(default_factory=lambda: np.empty((0, 0), np.float32))
    oids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    # Original ChildBound objects, required by the sphere kinds (see module
    # docstring); never persisted.
    edge_bounds: list | None = None
    # Derived, built once per snapshot: the float64 copy every distance
    # scan uses (the object kernel's per-leaf ``pts.astype(np.float64)``).
    points64: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in BOUND_KINDS:
            raise ValueError(f"unknown bound kind {self.kind!r}")
        self.points64 = self.points.astype(np.float64)

    @property
    def n_nodes(self) -> int:
        return len(self.node_ref)

    @property
    def n_edges(self) -> int:
        return len(self.edge_child)

    @property
    def n_points(self) -> int:
        return len(self.oids)

    @property
    def array_only(self) -> bool:
        """True when the kernel needs no ``edge_bounds`` objects — the
        precondition for persisting the snapshot."""
        return self.kind in ARRAY_ONLY_KINDS

    def leaf_sort0(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-leaf sort of the points by dimension 0, built lazily.

        Returns ``(perm, scol)``: for every leaf slice ``[s, e)``,
        ``perm[s:e]`` holds the global point rows of that leaf ordered by
        their first coordinate and ``scol[s:e]`` the coordinates in that
        order (float64, the exact upcast the comparisons run in).  The
        kernel turns a query's dim-0 window into a rank interval with two
        binary searches instead of comparing every point.
        """
        cached = getattr(self, "_leaf_sort0", None)
        if cached is not None:
            return cached
        perm = np.arange(self.n_points, dtype=np.int64)
        scol = (
            np.ascontiguousarray(self.points64[:, 0])
            if self.points.shape[1]
            else np.empty(0)
        )
        ls = self.leaf_start[self.node_is_leaf]
        le = self.leaf_end[self.node_is_leaf]
        # Occurrences sharing a ref share the slice, so each distinct
        # start is sorted once.
        starts, first = np.unique(ls, return_index=True)
        for s, e in zip(starts, le[first]):
            seg = slice(int(s), int(e))
            order = np.argsort(self.points[seg, 0], kind="stable")
            perm[seg] = int(s) + order
            scol[seg] = scol[seg][order]
        self._leaf_sort0 = (perm, scol)
        return self._leaf_sort0

    def boxes32(self) -> tuple[np.ndarray, np.ndarray]:
        """Conservative float32 copies of the edge boxes, built lazily.

        Lows round down, highs round up, so a float32 intersection test
        never rejects a pair the exact float64 test accepts — the cheap
        prefilter in front of the exact check.
        """
        cached = getattr(self, "_boxes32", None)
        if cached is not None:
            return cached
        lo = self.box_low.astype(np.float32)
        rounded_up = lo.astype(np.float64) > self.box_low
        lo = np.where(rounded_up, np.nextafter(lo, np.float32(-np.inf)), lo)
        hi = self.box_high.astype(np.float32)
        rounded_down = hi.astype(np.float64) < self.box_high
        hi = np.where(rounded_down, np.nextafter(hi, np.float32(np.inf)), hi)
        self._boxes32 = (lo, hi)
        return self._boxes32


def active_snapshot(index) -> SOASnapshot | None:
    """The snapshot attached to ``index``, or None (absent / invalidated)."""
    return getattr(index, "_soa_snapshot", None)


def _classify_bound(bound) -> str:
    from repro.engine.kernel import RectBound

    if isinstance(bound, RectBound):
        return "rect"
    if hasattr(bound, "path_rect") and hasattr(bound, "region"):
        return "rect2"
    if hasattr(bound, "sphere"):
        return "sphere"
    entry = getattr(bound, "entry", None)
    if entry is not None and hasattr(entry, "router"):
        return "router"
    if entry is not None and hasattr(entry, "sphere") and hasattr(entry, "rect"):
        return "rect_sphere"
    raise TypeError(
        f"cannot compile {type(bound).__name__} into a struct-of-arrays "
        "snapshot: unknown bound geometry"
    )


def compile_snapshot(index) -> SOASnapshot:
    """Walk ``index`` through the ``trav_*`` protocol and pack it flat.

    The walk is iterative (no recursion limit), charges no I/O
    (``trav_node(ref, charge=False)``, like every maintenance traversal),
    and leaves the index untouched.  Raises ``TypeError`` for indexes that
    do not implement the traversal protocol (VA-file, sequential scan).
    """
    if not hasattr(index, "trav_root"):
        raise TypeError(
            f"{type(index).__name__} does not implement the trav_* protocol; "
            "only traversable indexes can be compiled"
        )
    dims = index.dims
    dedup = bool(getattr(index, "trav_dedup", False))
    supports_box = bool(getattr(index, "trav_supports_box", True))
    pages_of = getattr(index, "trav_node_pages", None)

    node_ref: list[int] = []
    node_is_leaf: list[bool] = []
    node_pages: list[int] = []
    child_start: list[int] = [0]
    leaf_start: list[int] = []
    leaf_end: list[int] = []
    edge_child: list[int] = []
    edge_bounds: list = []
    kind: str | None = None

    # Leaf slices are shared between occurrences of the same page.
    leaf_slices: dict[int, tuple[int, int]] = {}
    vec_parts: list[np.ndarray] = []
    oid_parts: list[np.ndarray] = []
    n_pts = 0

    root_ref, root_ctx = index.trav_root()
    # Stack entries: (ref, ctx, edge index to patch with this node's id).
    stack: list[tuple] = [(root_ref, root_ctx, None)]
    while stack:
        ref, ctx, patch = stack.pop()
        nid = len(node_ref)
        if patch is not None:
            edge_child[patch] = nid
        node = index.trav_node(ref, charge=False)
        node_ref.append(ref)
        node_pages.append(int(pages_of(ref)) if pages_of is not None else 1)
        if index.trav_is_leaf(node):
            node_is_leaf.append(True)
            slc = leaf_slices.get(ref)
            if slc is None:
                pts, oids = index.trav_leaf_points(node)
                if len(pts):
                    # Copy: leaf views may alias a node cache or an mmap.
                    vec_parts.append(np.array(pts, dtype=np.float32, copy=True))
                    oid_parts.append(np.array(oids, dtype=np.int64, copy=True))
                slc = (n_pts, n_pts + len(pts))
                n_pts += len(pts)
                leaf_slices[ref] = slc
            leaf_start.append(slc[0])
            leaf_end.append(slc[1])
            child_start.append(len(edge_child))
            continue
        node_is_leaf.append(False)
        leaf_start.append(0)
        leaf_end.append(0)
        children = index.trav_children(node, ctx)
        first_edge = len(edge_child)
        for _child_ref, _child_ctx, bound in children:
            bkind = _classify_bound(bound)
            if kind is None:
                kind = bkind
            elif kind != bkind:
                raise TypeError(
                    f"mixed bound kinds in one index: {kind} vs {bkind}"
                )
            edge_child.append(-1)
            edge_bounds.append(bound)
        child_start.append(len(edge_child))
        # Push in reverse so pops happen in trav_children order (DFS
        # pre-order, the object kernel's visit order).
        for offset in range(len(children) - 1, -1, -1):
            child_ref, child_ctx, _bound = children[offset]
            stack.append((child_ref, child_ctx, first_edge + offset))

    if kind is None:
        kind = "rect"  # a single-leaf tree has no edges; any kind fits

    box_low = box_high = dist_low = dist_high = center = radius = None
    n_edges = len(edge_child)
    if kind == "rect":
        box_low = np.empty((n_edges, dims))
        box_high = np.empty((n_edges, dims))
        for i, bound in enumerate(edge_bounds):
            box_low[i] = bound.rect.low
            box_high[i] = bound.rect.high
    elif kind == "rect2":
        box_low = np.empty((n_edges, dims))
        box_high = np.empty((n_edges, dims))
        dist_low = np.empty((n_edges, dims))
        dist_high = np.empty((n_edges, dims))
        for i, bound in enumerate(edge_bounds):
            box_low[i] = bound.path_rect.low
            box_high[i] = bound.path_rect.high
            dist_low[i] = bound.region.low
            dist_high[i] = bound.region.high
    else:
        center = np.empty((n_edges, dims))
        radius = np.empty(n_edges)
        for i, bound in enumerate(edge_bounds):
            if kind == "sphere":
                sphere = bound.sphere
            elif kind == "rect_sphere":
                sphere = bound.entry.sphere
            else:  # router
                sphere = None
            if sphere is not None:
                center[i] = sphere.center
                radius[i] = sphere.radius
            else:
                center[i] = bound.entry.router
                radius[i] = bound.entry.radius
        if kind == "rect_sphere":
            box_low = np.empty((n_edges, dims))
            box_high = np.empty((n_edges, dims))
            for i, bound in enumerate(edge_bounds):
                box_low[i] = bound.entry.rect.low
                box_high[i] = bound.entry.rect.high

    if vec_parts:
        points = np.concatenate(vec_parts, axis=0)
        oids = np.concatenate(oid_parts)
    else:
        points = np.empty((0, dims), dtype=np.float32)
        oids = np.empty(0, dtype=np.int64)

    return SOASnapshot(
        kind=kind,
        dims=dims,
        dedup=dedup,
        supports_box=supports_box,
        node_ref=np.asarray(node_ref, dtype=np.int64),
        node_is_leaf=np.asarray(node_is_leaf, dtype=bool),
        node_pages=np.asarray(node_pages, dtype=np.int32),
        child_start=np.asarray(child_start, dtype=np.int64),
        leaf_start=np.asarray(leaf_start, dtype=np.int64),
        leaf_end=np.asarray(leaf_end, dtype=np.int64),
        edge_child=np.asarray(edge_child, dtype=np.int64),
        box_low=box_low,
        box_high=box_high,
        dist_low=dist_low,
        dist_high=dist_high,
        center=center,
        radius=radius,
        points=points,
        oids=oids,
        edge_bounds=edge_bounds if kind not in ARRAY_ONLY_KINDS else None,
    )
