"""Struct-of-arrays snapshots: compile a ``trav_*`` index, vectorize the walk.

The object-walk kernel (:mod:`repro.engine.kernel`) pays interpreter costs
per node per batch: a Python ``trav_children`` call, one ``ChildBound``
object per child edge, one predicate call per edge.  For a compiled
snapshot all of that happens once: :func:`compile_snapshot` walks the index
in DFS pre-order and packs the directory into contiguous numpy arrays
(CSR child offsets, per-edge bound rows, concatenated leaf vectors and
oids), and the :mod:`repro.engine.soa.kernel` functions answer whole query
batches by pruning an entire frontier level with a handful of array ops.

Results are **bit-identical** to the object-walk kernel — same float
operations row-wise, same DFS output order, same ``(distance, oid)`` k-NN
total order, same hB-tree de-duplication semantics — which the conformance
suite (``tests/test_soa_conformance.py``) asserts with ``==``.

Snapshots are derived data: any mutation invalidates them
(``invalidate_snapshot``), after which queries fall back to the object
walk until the index is re-compiled.  For the hybrid tree,
``HybridTree.save`` persists the compiled snapshot as a checksummed raw
section of the single-file format and ``HybridTree.open(mmap=True)`` maps
the arrays back zero-copy (:mod:`repro.engine.soa.persist`).
"""

from repro.engine.soa.kernel import (
    dispatch_distance_range_many,
    dispatch_knn_many,
    dispatch_range_search_many,
    soa_distance_range_many,
    soa_knn_many,
    soa_range_search_many,
)
from repro.engine.soa.persist import (
    SNAPSHOT_SECTION_VERSION,
    deserialize_snapshot,
    serialize_snapshot,
)
from repro.engine.soa.snapshot import SOASnapshot, active_snapshot, compile_snapshot

__all__ = [
    "SNAPSHOT_SECTION_VERSION",
    "SOASnapshot",
    "active_snapshot",
    "compile_snapshot",
    "deserialize_snapshot",
    "dispatch_distance_range_many",
    "dispatch_knn_many",
    "dispatch_range_search_many",
    "serialize_snapshot",
    "soa_distance_range_many",
    "soa_knn_many",
    "soa_range_search_many",
]
