"""Multi-worker parallel execution of batch queries over any index.

The shared-traversal kernel (:mod:`repro.engine.kernel`) already amortises
page fetches across a batch; this module parallelises across *workers*.  A
query batch is split into ``workers`` contiguous partitions
(``np.array_split`` order), each worker runs the index's own batch methods
(``range_search_many`` / ``distance_range_many`` / ``knn_many``) over its
partition against its **own** read handle, and the partition outputs are
concatenated back — so the merged result list is positionally identical to
the serial call.

Worker isolation is what makes this safe without locks: nothing in the
query path is shared between workers except immutable data.

The ``source`` can be either of:

- a **saved hybrid-tree file** (``str`` / ``PathLike``): every worker opens
  its own :meth:`HybridTree.open` handle;
- a **live index object** (the hybrid tree or any baseline exposing the
  batch-query API): every worker gets a shallow *query view* of the index —
  same pages, same object cache, but a private :class:`IOStats` so the
  per-worker charges can be merged honestly.  Views never write, so
  thread-mode sharing is safe; process modes are rejected for live indexes
  because a view cannot be shipped to another process without copying the
  whole structure.

- ``mode="thread"``: each worker thread holds a private handle/view
  (private :class:`IOStats`).  Python threads interleave under the GIL, but
  the numpy predicate kernels release it, so scans overlap on multicore
  hosts.
- ``mode="fork"`` / ``"spawn"`` (saved-file sources only): worker
  *processes*, each reopening the tree in its initializer.  With
  ``mmap=True`` (the default) every worker maps the same file, so the OS
  page cache holds **one** copy of the data no matter how many workers run
  — resident memory does not multiply.

Determinism contract (tested in ``tests/test_mmap_parallel.py``):

- results of ``range_search_many`` / ``distance_range_many`` /
  ``knn_many`` are **bit-identical** to the serial batch call (and hence to
  the single-query loop) for every worker count and mode;
- per-query node-visit counts are partition-independent for range and
  distance queries (the alive-set predicates are evaluated row-wise);
  for k-NN they are not — the shared traversal orders children by the best
  bound *over the alive set*, so a query's visit attribution depends on
  its batch companions (the same caveat the serial batch engine documents
  versus the single-query loop);
- ``charged_reads`` is the sum over workers.  It exceeds the serial batch
  figure because every worker re-reads the directory levels for itself:
  parallelism buys wall time with duplicated (cheap, cached) page reads,
  and the accounting reports that honestly rather than pretending the
  batch sharing still spans partitions.

The merged :class:`BatchMetrics` attributes the *whole-call* wall time
(including partition/merge overhead) over the concatenated visit counts,
exactly as the serial engine attributes its own wall time.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.distances import L2, Metric
from repro.engine.batch import _as_query_matrix
from repro.engine.metrics import BatchMetrics
from repro.storage.iostats import IOStats

__all__ = ["ParallelQueryEngine", "WORKER_MODES"]

WORKER_MODES = ("thread", "fork", "spawn")

# Process workers keep their reopened tree in module state: the pool
# initializer populates it once per worker process and every task reuses
# it, so node caches stay warm across batches.
_WORKER_TREE = None


def _open_worker_tree(path: str, mmap: bool):
    from repro.core.hybridtree import HybridTree

    return HybridTree.open(path, mmap=mmap)


def _worker_init(path: str, mmap: bool) -> None:
    global _WORKER_TREE
    _WORKER_TREE = _open_worker_tree(path, mmap)


def _index_view(index):
    """A read-only query view of a live index for one worker thread.

    Shallow copy sharing the pages and object cache, but with a private
    accountant (`IOStats`) so each worker's charges merge cleanly.  Paged
    structures route all I/O through ``index.nm`` (and expose ``io`` as a
    property of it); scan structures (seqscan, VA-file) hold ``io``
    directly.

    A WAL-enabled hybrid tree (``open(..., wal=True)``) gets a *pinned
    snapshot view* instead (:meth:`HybridTree.snapshot_view`): the worker
    keeps answering from the committed state at engine-construction time,
    bit-identically, even while a writer thread mutates the source tree
    underneath.  The engine owns these views and closes (unpins) them.
    """
    if getattr(index, "wal", None) is not None and hasattr(index, "snapshot_view"):
        return index.snapshot_view()
    view = copy.copy(index)
    nm = getattr(index, "nm", None)
    if nm is not None:
        nm_view = copy.copy(nm)
        nm_view.stats = IOStats()
        nm_view._dirty = set()
        nm_view._pinned = set()
        view.nm = nm_view
    else:
        view.io = IOStats()
    return view


def _run_partition(tree, kind: str, payload: dict):
    """Run one partition through ``tree``'s own batch-query methods.

    Returns ``(results, visits, charged_reads, io_delta)`` — everything the
    parent needs to merge, all picklable for the process modes.
    """
    io = tree.io
    before = (
        io.random_reads,
        io.random_writes,
        io.sequential_reads,
        io.sequential_writes,
    )
    if kind == "range":
        results, metrics = tree.range_search_many(payload["queries"], True)
    elif kind == "distance":
        results, metrics = tree.distance_range_many(
            payload["centers"], payload["radii"], payload["metric"], True
        )
    elif kind == "knn":
        results, metrics = tree.knn_many(
            payload["centers"],
            payload["k"],
            payload["metric"],
            payload["approximation_factor"],
            True,
        )
    else:  # pragma: no cover - internal dispatch
        raise ValueError(f"unknown query kind {kind!r}")
    delta = (
        io.random_reads - before[0],
        io.random_writes - before[1],
        io.sequential_reads - before[2],
        io.sequential_writes - before[3],
    )
    visits = np.asarray(metrics.pages, dtype=np.int64)
    return results, visits, metrics.charged_reads, delta


def _worker_task(task):
    kind, payload = task
    return _run_partition(_WORKER_TREE, kind, payload)


class ParallelQueryEngine:
    """Partition query batches across ``workers`` read handles on an index.

    Parameters
    ----------
    source:
        Either a tree file produced by :meth:`HybridTree.save` (every
        worker opens its own handle; ``QuerySession(workers=...)`` wires
        one up from ``tree.source_path``), or a **live index object** —
        the hybrid tree or any baseline exposing the batch-query API —
        in which case every worker queries a read-only view of it
        (thread mode only).
    workers:
        Number of partitions / concurrent handles (>= 1).
    mode:
        ``"thread"`` (default), ``"fork"`` or ``"spawn"`` — see the module
        docstring.  ``"fork"`` is unavailable on platforms without it;
        only ``"thread"`` works with a live index source.
    mmap:
        Reopen handles with ``HybridTree.open(mmap=True)`` (zero-copy
        reads, one shared OS page-cache copy).  Default True; the file
        pays one fsck per handle at open.  Ignored for live sources.
    stats:
        Merged accountant; every worker's I/O delta is added to it after
        each call, so ``engine.io`` totals match what the workers charged.
    """

    def __init__(
        self,
        source,
        workers: int = 2,
        mode: str = "thread",
        mmap: bool = True,
        stats: IOStats | None = None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in WORKER_MODES:
            raise ValueError(f"mode must be one of {WORKER_MODES}")
        if mode != "thread" and mode not in multiprocessing.get_all_start_methods():
            raise ValueError(f"start method {mode!r} unavailable on this platform")
        self.workers = workers
        self.mode = mode
        self.mmap = mmap
        self.io = stats if stats is not None else IOStats()
        self._trees = []
        if isinstance(source, (str, os.PathLike)):
            from repro.storage import superblock as superblock_io

            self.path = os.fspath(source)
            self._owns_trees = True
            manifest, _ = superblock_io.read_superblock(self.path)
            self.dims = int(manifest["dims"])
            if mode == "thread":
                self._trees = [
                    _open_worker_tree(self.path, mmap) for _ in range(workers)
                ]
            else:
                ctx = multiprocessing.get_context(mode)
                self._pool = ctx.Pool(
                    workers, initializer=_worker_init, initargs=(self.path, mmap)
                )
        else:
            if mode != "thread":
                raise ValueError(
                    "a live index can only be parallelised with mode='thread'; "
                    "process workers need a saved tree file to reopen"
                )
            self.path = None
            self._owns_trees = False
            self.dims = int(source.dims)
            self._trees = [_index_view(source) for _ in range(workers)]
        if mode == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-query"
            )

    # ------------------------------------------------------------------
    # Dispatch / merge
    # ------------------------------------------------------------------
    def _dispatch(self, tasks):
        if self.mode == "thread":
            futures = [
                self._pool.submit(_run_partition, self._trees[i], kind, payload)
                for i, (kind, payload) in enumerate(tasks)
            ]
            return [f.result() for f in futures]
        return self._pool.map(_worker_task, tasks)

    def _run(self, kind: str, n: int, payloads, label: str, return_metrics: bool):
        start = time.perf_counter()
        if n == 0:
            outs = []
        else:
            outs = self._dispatch([(kind, p) for p in payloads])
        results = [r for part in outs for r in part[0]]
        visits = (
            np.concatenate([part[1] for part in outs])
            if outs
            else np.empty(0, dtype=np.int64)
        )
        charged = 0
        for part in outs:
            charged += part[2]
            dr, dw, sr, sw = part[3]
            self.io.random_reads += dr
            self.io.random_writes += dw
            self.io.sequential_reads += sr
            self.io.sequential_writes += sw
        if not return_metrics:
            return results
        metrics = BatchMetrics.from_batch_run(
            label=label,
            node_visits=visits,
            charged_reads=charged,
            wall_seconds=time.perf_counter() - start,
        )
        return results, metrics

    def _partitions(self, n: int) -> list[np.ndarray]:
        """Contiguous index partitions: concatenation restores input order."""
        parts = min(self.workers, n) if n else 0
        return [p for p in np.array_split(np.arange(n), parts)] if parts else []

    # ------------------------------------------------------------------
    # The batch query API (mirrors repro.engine.batch signatures)
    # ------------------------------------------------------------------
    def range_search_many(self, queries, return_metrics: bool = False):
        queries = list(queries)
        for q in queries:
            if q.dims != self.dims:
                raise ValueError("query dimensionality mismatch")
        payloads = [
            {"queries": [queries[i] for i in part]}
            for part in self._partitions(len(queries))
        ]
        return self._run(
            "range",
            len(queries),
            payloads,
            f"range-batch[{self.workers}x{self.mode}]",
            return_metrics,
        )

    def distance_range_many(
        self, centers, radii, metric: Metric = L2, return_metrics: bool = False
    ):
        qs = _as_query_matrix(centers, self.dims)
        n = qs.shape[0]
        radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (n,))
        if np.any(radii < 0):
            raise ValueError("radius must be non-negative")
        payloads = [
            {"centers": qs[part], "radii": radii[part], "metric": metric}
            for part in self._partitions(n)
        ]
        return self._run(
            "distance",
            n,
            payloads,
            f"distance-batch[{self.workers}x{self.mode}]",
            return_metrics,
        )

    def knn_many(
        self,
        centers,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if approximation_factor < 0:
            raise ValueError("approximation_factor must be >= 0")
        qs = _as_query_matrix(centers, self.dims)
        payloads = [
            {
                "centers": qs[part],
                "k": k,
                "metric": metric,
                "approximation_factor": approximation_factor,
            }
            for part in self._partitions(qs.shape[0])
        ]
        return self._run(
            "knn",
            qs.shape[0],
            payloads,
            f"knn-batch[{self.workers}x{self.mode}]",
            return_metrics,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.mode == "thread":
            self._pool.shutdown(wait=True)
            if self._owns_trees:
                for tree in self._trees:
                    tree.close()
            else:
                # Live-index views share the source's store: never close
                # it.  Pinned snapshot views are the exception — closing
                # them releases the page versions the pin kept alive
                # without touching the shared store.
                from repro.storage.pagestore import SnapshotPageStore

                for tree in self._trees:
                    store = getattr(getattr(tree, "nm", None), "store", None)
                    if isinstance(store, SnapshotPageStore):
                        tree.close()
            self._trees = []
        else:
            self._pool.close()
            self._pool.join()

    def __enter__(self) -> "ParallelQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
