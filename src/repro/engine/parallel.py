"""Multi-worker parallel execution of batch queries over any index.

The shared-traversal kernel (:mod:`repro.engine.kernel`) already amortises
page fetches across a batch; this module parallelises across *workers*.  A
query batch is split into ``workers`` contiguous partitions
(``np.array_split`` order), each worker runs the index's own batch methods
(``range_search_many`` / ``distance_range_many`` / ``knn_many``) over its
partition against its **own** read handle, and the partition outputs are
concatenated back — so the merged result list is positionally identical to
the serial call.

Worker isolation is what makes this safe without locks: nothing in the
query path is shared between workers except immutable data.

The ``source`` can be either of:

- a **saved hybrid-tree file** (``str`` / ``PathLike``): every worker opens
  its own :meth:`HybridTree.open` handle;
- a **live index object** (the hybrid tree or any baseline exposing the
  batch-query API): every worker gets a shallow *query view* of the index —
  same pages, same object cache, but a private :class:`IOStats` so the
  per-worker charges can be merged honestly.  Views never write, so
  thread-mode sharing is safe; process modes are rejected for live indexes
  because a view cannot be shipped to another process without copying the
  whole structure.

- ``mode="thread"``: each worker thread holds a private handle/view
  (private :class:`IOStats`).  Python threads interleave under the GIL, but
  the numpy predicate kernels release it, so scans overlap on multicore
  hosts.
- ``mode="fork"`` / ``"spawn"`` (saved-file sources only): worker
  *processes*, each reopening the tree in its main loop.  With
  ``mmap=True`` (the default) every worker maps the same file, so the OS
  page cache holds **one** copy of the data no matter how many workers run
  — resident memory does not multiply.

Supervision (the runtime failure story; see INTERNALS "Failure
semantics"):

- every batch call takes ``timeout=`` / ``on_timeout=``.  The deadline is
  shipped to every partition (thread workers share one
  :class:`~repro.resilience.Deadline` + :class:`CancelToken`; process
  workers get the remaining seconds and rebuild it), so in-worker kernels
  cut themselves off cooperatively.  A worker that blows through the
  deadline anyway (a wedged process, a non-cooperative stall) is caught by
  the parent's wall-clock guard after a short grace period and — in
  process modes — terminated and respawned.
- process workers are supervised directly (no ``Pool.map``): each worker
  is a long-lived process with a private task queue and a shared result
  queue.  A worker found dead is respawned and its partition retried up
  to ``worker_restarts`` times; exhaustion surfaces as a typed
  :class:`~repro.resilience.WorkerCrashError` naming the partition.
  Results are tagged with a per-call id, so stragglers from an abandoned
  call can never be mistaken for current answers.
- the first failing partition cancels its siblings (token in thread mode,
  terminate + respawn in process modes) and propagates with the partition
  label attached (``exc.partition``) — no leaked workers, no swallowed
  sibling exceptions.
- ``on_timeout="partial"``: finished partitions come back complete,
  interrupted ones contribute whatever they salvaged, and the merged
  :class:`~repro.resilience.PartialResult` carries an exact per-partition
  completion mask.
- an optional :class:`~repro.resilience.QueryAdmissionController` bounds
  in-flight batches before any partitioning happens.
- :meth:`close` is idempotent, and crash-safe: process workers get a
  bounded join and are terminated (then killed) if wedged; snapshot-view
  pins are released on every path.

Chaos hooks: :meth:`inject_faults` arms one-shot
:class:`~repro.storage.faults.WorkerFault` plans (hang / die / raise) that
ride inside partition payloads — the chaos test matrix drives every
supervision path through them.

Determinism contract (tested in ``tests/test_mmap_parallel.py``):

- results of ``range_search_many`` / ``distance_range_many`` /
  ``knn_many`` are **bit-identical** to the serial batch call (and hence to
  the single-query loop) for every worker count and mode — including after
  a crashed partition is retried on a respawned worker;
- per-query node-visit counts are partition-independent for range and
  distance queries (the alive-set predicates are evaluated row-wise);
  for k-NN they are not — the shared traversal orders children by the best
  bound *over the alive set*, so a query's visit attribution depends on
  its batch companions (the same caveat the serial batch engine documents
  versus the single-query loop);
- ``charged_reads`` is the sum over workers.  It exceeds the serial batch
  figure because every worker re-reads the directory levels for itself:
  parallelism buys wall time with duplicated (cheap, cached) page reads,
  and the accounting reports that honestly rather than pretending the
  batch sharing still spans partitions.  A partition abandoned to a hang
  or a crash contributes zero visits — the parent has no trustworthy
  numbers for work it discarded, and refuses to invent them.

The merged :class:`BatchMetrics` attributes the *whole-call* wall time
(including partition/merge overhead) over the concatenated visit counts,
exactly as the serial engine attributes its own wall time.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import queue as queue_mod
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait

import numpy as np

from repro.distances import L2, Metric
from repro.engine.batch import _as_query_matrix
from repro.engine.kernel import check_on_timeout
from repro.engine.metrics import BatchMetrics
from repro.resilience import (
    CancelToken,
    Deadline,
    PartialResult,
    QueryAdmissionController,
    QueryCancelledError,
    QueryTimeoutError,
    WorkerCrashError,
)
from repro.storage.faults import SimulatedWorkerDeath, WorkerFault, apply_worker_fault
from repro.storage.iostats import IOStats

__all__ = ["ParallelQueryEngine", "WORKER_MODES"]

WORKER_MODES = ("thread", "fork", "spawn")

# How long past the deadline the parent waits for a worker to cut itself
# off cooperatively before declaring it wedged and reclaiming it.
_PARTITION_GRACE = 0.25

# Poll tick for the supervision loops: result-queue waits and liveness
# checks run at this cadence.
_TICK = 0.02


def _open_worker_tree(path: str, mmap: bool):
    from repro.core.hybridtree import HybridTree

    return HybridTree.open(path, mmap=mmap)


def _index_view(index):
    """A read-only query view of a live index for one worker thread.

    Shallow copy sharing the pages and object cache, but with a private
    accountant (`IOStats`) so each worker's charges merge cleanly.  Paged
    structures route all I/O through ``index.nm`` (and expose ``io`` as a
    property of it); scan structures (seqscan, VA-file) hold ``io``
    directly.

    A WAL-enabled hybrid tree (``open(..., wal=True)``) gets a *pinned
    snapshot view* instead (:meth:`HybridTree.snapshot_view`): the worker
    keeps answering from the committed state at engine-construction time,
    bit-identically, even while a writer thread mutates the source tree
    underneath.  The engine owns these views and closes (unpins) them.
    """
    if getattr(index, "wal", None) is not None and hasattr(index, "snapshot_view"):
        return index.snapshot_view()
    view = copy.copy(index)
    nm = getattr(index, "nm", None)
    if nm is not None:
        nm_view = copy.copy(nm)
        nm_view.stats = IOStats()
        nm_view._dirty = set()
        nm_view._pinned = set()
        view.nm = nm_view
    else:
        view.io = IOStats()
    return view


def _payload_n(kind: str, payload: dict) -> int:
    """How many queries a partition payload carries."""
    return len(payload["queries" if kind == "range" else "centers"])


def _run_partition(
    tree,
    kind: str,
    payload: dict,
    deadline=None,
    on_timeout: str = "raise",
    fault: WorkerFault | None = None,
    in_process: bool = False,
):
    """Run one partition through ``tree``'s own batch-query methods.

    Returns ``(results, visits, charged_reads, io_delta, completed)`` —
    everything the parent needs to merge, all picklable for the process
    modes.  ``completed`` is the per-query completion mask (all-True
    unless the partition timed out under ``on_timeout="partial"``).
    """
    if fault is not None:
        apply_worker_fault(fault, deadline, in_process)
    io = tree.io
    before = (
        io.random_reads,
        io.random_writes,
        io.sequential_reads,
        io.sequential_writes,
    )
    if kind == "range":
        results, metrics = tree.range_search_many(
            payload["queries"], True, deadline, on_timeout
        )
    elif kind == "distance":
        results, metrics = tree.distance_range_many(
            payload["centers"], payload["radii"], payload["metric"], True,
            deadline, on_timeout,
        )
    elif kind == "knn":
        results, metrics = tree.knn_many(
            payload["centers"],
            payload["k"],
            payload["metric"],
            payload["approximation_factor"],
            True,
            deadline,
            on_timeout,
        )
    else:  # pragma: no cover - internal dispatch
        raise ValueError(f"unknown query kind {kind!r}")
    delta = (
        io.random_reads - before[0],
        io.random_writes - before[1],
        io.sequential_reads - before[2],
        io.sequential_writes - before[3],
    )
    if isinstance(results, PartialResult):
        completed = np.asarray(results.completed, dtype=bool)
        results = list(results.results)
    else:
        completed = np.ones(len(results), dtype=bool)
    visits = np.asarray(metrics.pages, dtype=np.int64)
    return results, visits, metrics.charged_reads, delta, completed


def _supervised_worker_main(path: str, mmap: bool, task_q, result_q) -> None:
    """Main loop of a supervised worker process.

    Opens its own tree handle once (caches stay warm across batches), then
    answers ``(call_id, partition, kind, payload, remaining, on_timeout,
    fault)`` tasks until it receives ``None``.  Every reply is tagged with
    the call id so the parent can discard stragglers from abandoned calls.
    Failures are shipped back as exception objects; only a death (or an
    injected ``os._exit``) leaves the parent without an answer, which is
    exactly the condition its liveness check exists for.
    """
    tree = _open_worker_tree(path, mmap)
    while True:
        msg = task_q.get()
        if msg is None:
            break
        call_id, part_idx, kind, payload, remaining, on_timeout, fault = msg
        try:
            deadline = Deadline(remaining) if remaining is not None else None
            out = _run_partition(
                tree, kind, payload, deadline, on_timeout, fault, in_process=True
            )
            result_q.put((call_id, part_idx, True, out))
        except BaseException as exc:  # noqa: BLE001 - transported to parent
            try:
                result_q.put((call_id, part_idx, False, exc))
            except Exception:
                result_q.put(
                    (call_id, part_idx, False, RuntimeError(repr(exc)))
                )


class _ProcWorker:
    """One supervised worker process plus its private task queue."""

    __slots__ = ("proc", "task_q")

    def __init__(self, ctx, path: str, mmap: bool, result_q):
        self.task_q = ctx.Queue()
        self.proc = ctx.Process(
            target=_supervised_worker_main,
            args=(path, mmap, self.task_q, result_q),
            daemon=True,
        )
        self.proc.start()

    def alive(self) -> bool:
        return self.proc.is_alive()

    def stop(self, join_timeout: float = 1.0) -> None:
        """Bounded shutdown: ask politely, then terminate, then kill."""
        try:
            if self.proc.is_alive():
                self.task_q.put(None)
                self.proc.join(timeout=join_timeout)
            if self.proc.is_alive():
                self.proc.terminate()
                self.proc.join(timeout=join_timeout)
            if self.proc.is_alive():  # pragma: no cover - last resort
                self.proc.kill()
                self.proc.join(timeout=join_timeout)
        finally:
            self.task_q.close()
            # Release the process object's pipes/sentinel eagerly.
            if not self.proc.is_alive():
                self.proc.close()

    def terminate(self) -> None:
        """Immediate reclaim of a wedged or cancelled worker."""
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        if self.proc.is_alive():  # pragma: no cover - last resort
            self.proc.kill()
            self.proc.join(timeout=1.0)
        self.task_q.close()
        if not self.proc.is_alive():
            self.proc.close()


def _annotate(exc: BaseException, label: str) -> BaseException:
    """Attach the partition label to a propagating worker error."""
    if getattr(exc, "partition", None) is None:
        try:
            exc.partition = label
        except Exception:  # pragma: no cover - exotic exception slots
            pass
    return exc


class ParallelQueryEngine:
    """Partition query batches across ``workers`` read handles on an index.

    Parameters
    ----------
    source:
        Either a tree file produced by :meth:`HybridTree.save` (every
        worker opens its own handle; ``QuerySession(workers=...)`` wires
        one up from ``tree.source_path``), or a **live index object** —
        the hybrid tree or any baseline exposing the batch-query API —
        in which case every worker queries a read-only view of it
        (thread mode only).
    workers:
        Number of partitions / concurrent handles (>= 1).
    mode:
        ``"thread"`` (default), ``"fork"`` or ``"spawn"`` — see the module
        docstring.  ``"fork"`` is unavailable on platforms without it;
        only ``"thread"`` works with a live index source.
    mmap:
        Reopen handles with ``HybridTree.open(mmap=True)`` (zero-copy
        reads, one shared OS page-cache copy).  Default True; the file
        pays one fsck per handle at open.  Ignored for live sources.
    stats:
        Merged accountant; every worker's I/O delta is added to it after
        each call, so ``engine.io`` totals match what the workers charged.
    admission:
        Optional :class:`~repro.resilience.QueryAdmissionController`; each
        batch call reserves capacity before partitioning and releases it
        on every exit path.
    worker_restarts:
        How many times a partition lost to a dead worker is retried on a
        respawned worker before :class:`WorkerCrashError` (process modes;
        thread mode applies the same budget to simulated deaths).
    """

    def __init__(
        self,
        source,
        workers: int = 2,
        mode: str = "thread",
        mmap: bool = True,
        stats: IOStats | None = None,
        admission: QueryAdmissionController | None = None,
        worker_restarts: int = 2,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in WORKER_MODES:
            raise ValueError(f"mode must be one of {WORKER_MODES}")
        if mode != "thread" and mode not in multiprocessing.get_all_start_methods():
            raise ValueError(f"start method {mode!r} unavailable on this platform")
        if worker_restarts < 0:
            raise ValueError("worker_restarts must be >= 0")
        self.workers = workers
        self.mode = mode
        self.mmap = mmap
        self.io = stats if stats is not None else IOStats()
        self.admission = admission
        self.worker_restarts = worker_restarts
        self.restarts_performed = 0
        self._closed = False
        self._abandoned_threads = 0
        self._pending_faults: dict[int, WorkerFault] = {}
        self._call_counter = 0
        self._trees: list = []
        self._procs: list[_ProcWorker] = []
        self._source = None
        self._pool = None
        self._ctx = None
        self._result_q = None
        if isinstance(source, (str, os.PathLike)):
            from repro.storage import superblock as superblock_io

            self.path = os.fspath(source)
            self._owns_trees = True
            manifest, _ = superblock_io.read_superblock(self.path)
            self.dims = int(manifest["dims"])
            if mode == "thread":
                self._trees = [
                    _open_worker_tree(self.path, mmap) for _ in range(workers)
                ]
            else:
                self._ctx = multiprocessing.get_context(mode)
                self._result_q = self._ctx.Queue()
                self._procs = [
                    _ProcWorker(self._ctx, self.path, mmap, self._result_q)
                    for _ in range(workers)
                ]
        else:
            if mode != "thread":
                raise ValueError(
                    "a live index can only be parallelised with mode='thread'; "
                    "process workers need a saved tree file to reopen"
                )
            self.path = None
            self._owns_trees = False
            self._source = source
            self.dims = int(source.dims)
            self._trees = [_index_view(source) for _ in range(workers)]
        if mode == "thread":
            self._pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-query"
            )

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------
    def inject_faults(self, faults) -> None:
        """Arm one-shot :class:`WorkerFault` plans for the *next* batch call.

        ``faults`` maps partition index → fault (or is a sequence aligned
        with partition order; ``None`` entries mean no fault).  The plans
        ride inside the partition payloads, so they exercise the real
        supervision paths — in-worker timeouts, parent-side hang
        reclamation, death/respawn/retry — rather than test-only seams.
        """
        if not isinstance(faults, dict):
            faults = {
                i: f for i, f in enumerate(faults) if f is not None
            }
        for fault in faults.values():
            if not isinstance(fault, WorkerFault):
                raise TypeError("faults must be WorkerFault instances")
        self._pending_faults = dict(faults)

    def _take_faults(self) -> dict[int, WorkerFault]:
        faults, self._pending_faults = self._pending_faults, {}
        return faults

    # ------------------------------------------------------------------
    # Worker lifecycle helpers
    # ------------------------------------------------------------------
    def _close_view(self, tree) -> None:
        """Close a worker handle/view if (and only if) the engine owns it."""
        if self._owns_trees:
            tree.close()
            return
        # Live-index views share the source's store: never close it.
        # Pinned snapshot views are the exception — closing them releases
        # the page versions the pin kept alive without touching the
        # shared store.
        from repro.storage.pagestore import SnapshotPageStore

        store = getattr(getattr(tree, "nm", None), "store", None)
        if isinstance(store, SnapshotPageStore):
            tree.close()

    def _respawn_thread_view(self, i: int) -> None:
        """Replace a thread worker's handle after a (simulated) death."""
        self._close_view(self._trees[i])
        if self._owns_trees:
            self._trees[i] = _open_worker_tree(self.path, self.mmap)
        else:
            self._trees[i] = _index_view(self._source)
        self.restarts_performed += 1

    def _respawn_proc(self, i: int, terminate: bool) -> None:
        """Reclaim process worker ``i`` and start a fresh one.

        A fresh task queue comes with the fresh process, so a task the
        dead worker never consumed cannot be replayed by its successor.
        """
        worker = self._procs[i]
        if terminate:
            worker.terminate()
        else:
            # Already dead; just reap the process object.
            worker.proc.join(timeout=0.1)
            worker.task_q.close()
            if not worker.proc.is_alive():
                worker.proc.close()
        self._procs[i] = _ProcWorker(self._ctx, self.path, self.mmap, self._result_q)
        self.restarts_performed += 1

    # ------------------------------------------------------------------
    # Dispatch / merge
    # ------------------------------------------------------------------
    def _label(self, kind: str, i: int, total: int) -> str:
        return f"{kind} partition {i + 1}/{total}"

    def _dispatch_thread(self, tasks, deadline, on_timeout):
        """Supervised thread-mode dispatch.

        Returns ``(outs, timeout_err)``: ``outs[i]`` is the partition
        tuple or ``None`` for a partition abandoned to the deadline;
        ``timeout_err`` is the error explaining any ``None``.  First
        failing partition cancels the siblings (shared token) and
        propagates annotated; simulated worker deaths are retried on a
        respawned view within the restart budget.
        """
        total = len(tasks)
        outs = [None] * total
        attempts = [1] * total
        first_err: BaseException | None = None
        timeout_err: QueryTimeoutError | None = None

        def submit(i):
            kind, payload, fault = tasks[i]
            return self._pool.submit(
                _run_partition, self._trees[i], kind, payload,
                deadline, on_timeout, fault,
            )

        futures = {submit(i): i for i in range(total)}
        pending = dict(futures)
        abandon_at = None
        if deadline is not None and deadline.timeout is not None:
            abandon_at = deadline.expires_at + _PARTITION_GRACE
        while pending:
            done, _ = wait(list(pending), timeout=_TICK, return_when=FIRST_COMPLETED)
            for fut in done:
                i = pending.pop(fut)
                kind, payload, fault = tasks[i]
                try:
                    outs[i] = fut.result()
                except SimulatedWorkerDeath:
                    if attempts[i] > self.worker_restarts:
                        first_err = first_err or _annotate(
                            WorkerCrashError(
                                f"worker for {self._label(kind, i, total)} died "
                                f"{attempts[i]} times; retry budget exhausted",
                                partition=self._label(kind, i, total),
                                attempts=attempts[i],
                            ),
                            self._label(kind, i, total),
                        )
                        continue
                    attempts[i] += 1
                    self._respawn_thread_view(i)
                    if fault is not None and not fault.sticky:
                        tasks[i] = (kind, payload, None)
                    fut2 = submit(i)
                    pending[fut2] = i
                except QueryCancelledError:
                    # Unwound by the sibling-cancel below; the first error
                    # is already captured.
                    pass
                except QueryTimeoutError as exc:
                    if on_timeout == "partial":
                        # Kernels return partial envelopes themselves; a
                        # raise here means a pre-kernel stage (admission
                        # of the partition, a fault) hit the deadline.
                        timeout_err = timeout_err or exc
                    else:
                        first_err = first_err or _annotate(
                            exc, self._label(kind, i, total)
                        )
                except Exception as exc:
                    first_err = first_err or _annotate(
                        exc, self._label(kind, i, total)
                    )
            if first_err is not None and pending:
                # Cancel the siblings: queued futures are dropped, running
                # ones observe the token at their next deadline check.
                if deadline is not None and deadline.token is not None:
                    deadline.token.cancel("sibling partition failed")
                for fut in list(pending):
                    fut.cancel()
                # Bounded drain — cooperative workers unwind promptly; a
                # truly wedged thread is abandoned to the executor.
                drain_until = time.perf_counter() + max(_PARTITION_GRACE, 0.5)
                while pending and time.perf_counter() < drain_until:
                    done, _ = wait(
                        list(pending), timeout=_TICK, return_when=FIRST_COMPLETED
                    )
                    for fut in done:
                        pending.pop(fut)
                self._abandoned_threads += len(pending)
                pending.clear()
                break
            if abandon_at is not None and pending and time.perf_counter() > abandon_at:
                # Wedged workers: past deadline + grace they are not going
                # to cut themselves off.  Threads cannot be killed, so
                # abandon their futures (daemonless pool threads finish in
                # the background and their results are discarded).
                timeout_err = timeout_err or QueryTimeoutError(
                    f"deadline of {deadline.timeout:.6g}s exceeded; "
                    f"{len(pending)} partition(s) abandoned past the "
                    f"{_PARTITION_GRACE:.2g}s grace period",
                    timeout=deadline.timeout,
                    elapsed=deadline.elapsed(),
                )
                for fut in list(pending):
                    fut.cancel()
                self._abandoned_threads += len(pending)
                pending.clear()
        if first_err is not None:
            raise first_err
        if timeout_err is not None and on_timeout != "partial":
            raise timeout_err
        return outs, timeout_err

    def _dispatch_proc(self, tasks, deadline, on_timeout):
        """Supervised process-mode dispatch (fork/spawn).

        Same contract as :meth:`_dispatch_thread`.  Liveness is polled on
        every result-queue tick: a dead worker is respawned and its
        partition retried within the restart budget; a worker still
        running past deadline + grace is terminated and — under
        ``"partial"`` — its partition reported incomplete.
        """
        total = len(tasks)
        self._call_counter += 1
        call_id = self._call_counter
        outs = [None] * total
        attempts = [1] * total
        timeout_err: QueryTimeoutError | None = None

        def send(i):
            kind, payload, fault = tasks[i]
            if not self._procs[i].alive():
                # Died while idle (or failed to initialise): give the
                # partition a live worker before dispatching to it.
                self._respawn_proc(i, terminate=False)
            remaining = None
            if deadline is not None and deadline.timeout is not None:
                remaining = deadline.remaining()
            self._procs[i].task_q.put(
                (call_id, i, kind, payload, remaining, on_timeout, fault)
            )

        for i in range(total):
            send(i)
        pending = set(range(total))
        abandon_at = None
        if deadline is not None and deadline.timeout is not None:
            abandon_at = deadline.expires_at + _PARTITION_GRACE

        def fail_siblings(exc):
            """First-error propagation: reclaim every sibling partition's
            worker (its in-flight work is discarded) and raise."""
            for j in pending:
                self._respawn_proc(j, terminate=True)
            pending.clear()
            raise exc

        while pending:
            try:
                msg = self._result_q.get(timeout=_TICK)
            except queue_mod.Empty:
                msg = None
            if msg is not None:
                msg_call, i, ok, val = msg
                if msg_call != call_id or i not in pending:
                    continue  # straggler from an abandoned call
                kind, payload, fault = tasks[i]
                if ok:
                    pending.discard(i)
                    outs[i] = val
                elif isinstance(val, QueryTimeoutError) and on_timeout == "partial":
                    pending.discard(i)
                    timeout_err = timeout_err or val
                else:
                    pending.discard(i)
                    fail_siblings(_annotate(val, self._label(kind, i, total)))
                continue
            # No result this tick: check for dead workers ...
            for i in sorted(pending):
                if self._procs[i].alive():
                    continue
                kind, payload, fault = tasks[i]
                self._respawn_proc(i, terminate=False)
                if attempts[i] > self.worker_restarts:
                    pending.discard(i)
                    fail_siblings(
                        _annotate(
                            WorkerCrashError(
                                f"worker for {self._label(kind, i, total)} died "
                                f"{attempts[i]} times; retry budget exhausted",
                                partition=self._label(kind, i, total),
                                attempts=attempts[i],
                            ),
                            self._label(kind, i, total),
                        )
                    )
                attempts[i] += 1
                if fault is not None and not fault.sticky:
                    tasks[i] = (kind, payload, None)
                send(i)
            # ... and for wedged ones past the wall-clock guard.
            if abandon_at is not None and pending and time.perf_counter() > abandon_at:
                timeout_err = timeout_err or QueryTimeoutError(
                    f"deadline of {deadline.timeout:.6g}s exceeded; "
                    f"{len(pending)} partition(s) terminated past the "
                    f"{_PARTITION_GRACE:.2g}s grace period",
                    timeout=deadline.timeout,
                    elapsed=deadline.elapsed(),
                )
                for i in list(pending):
                    self._respawn_proc(i, terminate=True)
                pending.clear()
        if timeout_err is not None and on_timeout != "partial":
            raise timeout_err
        return outs, timeout_err

    def _run(
        self, kind: str, n: int, payloads, label: str, return_metrics: bool,
        timeout, on_timeout: str,
    ):
        if self._closed:
            raise RuntimeError("engine is closed")
        check_on_timeout(on_timeout)
        start = time.perf_counter()
        token = CancelToken()
        deadline = Deadline.coerce(timeout, token)
        faults = self._take_faults()
        ticket = (
            self.admission.admit(n, self.dims)
            if self.admission is not None
            else None
        )
        try:
            if n == 0:
                outs, timeout_err = [], None
            else:
                tasks = [
                    (kind, payload, faults.get(i))
                    for i, payload in enumerate(payloads)
                ]
                if self.mode == "thread":
                    outs, timeout_err = self._dispatch_thread(
                        tasks, deadline, on_timeout
                    )
                else:
                    outs, timeout_err = self._dispatch_proc(
                        tasks, deadline, on_timeout
                    )
        finally:
            if ticket is not None:
                ticket.release()
        results: list = []
        completed_parts: list[np.ndarray] = []
        visit_parts: list[np.ndarray] = []
        charged = 0
        for i, part in enumerate(outs):
            if part is None:
                # Abandoned/terminated partition: placeholders, honest
                # all-incomplete mask, zero visits (the worker's numbers
                # died with it).
                pn = _payload_n(kind, payloads[i])
                results.extend([] for _ in range(pn))
                completed_parts.append(np.zeros(pn, dtype=bool))
                visit_parts.append(np.zeros(pn, dtype=np.int64))
                continue
            res, vis, chg, delta, comp = part
            results.extend(res)
            visit_parts.append(np.asarray(vis, dtype=np.int64))
            completed_parts.append(np.asarray(comp, dtype=bool))
            charged += chg
            dr, dw, sr, sw = delta
            self.io.random_reads += dr
            self.io.random_writes += dw
            self.io.sequential_reads += sr
            self.io.sequential_writes += sw
        visits = (
            np.concatenate(visit_parts) if visit_parts else np.empty(0, dtype=np.int64)
        )
        completed = (
            np.concatenate(completed_parts)
            if completed_parts
            else np.ones(0, dtype=bool)
        )
        if timeout_err is not None or not completed.all():
            err = timeout_err or QueryTimeoutError(
                "partition(s) interrupted by the deadline",
                timeout=deadline.timeout if deadline is not None else None,
            )
            results = PartialResult(results, completed, err)
        if not return_metrics:
            return results
        metrics = BatchMetrics.from_batch_run(
            label=label,
            node_visits=visits,
            charged_reads=charged,
            wall_seconds=time.perf_counter() - start,
        )
        return results, metrics

    def _partitions(self, n: int) -> list[np.ndarray]:
        """Contiguous index partitions: concatenation restores input order."""
        parts = min(self.workers, n) if n else 0
        return [p for p in np.array_split(np.arange(n), parts)] if parts else []

    # ------------------------------------------------------------------
    # The batch query API (mirrors repro.engine.batch signatures)
    # ------------------------------------------------------------------
    def range_search_many(
        self, queries, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        queries = list(queries)
        for q in queries:
            if q.dims != self.dims:
                raise ValueError("query dimensionality mismatch")
        payloads = [
            {"queries": [queries[i] for i in part]}
            for part in self._partitions(len(queries))
        ]
        return self._run(
            "range",
            len(queries),
            payloads,
            f"range-batch[{self.workers}x{self.mode}]",
            return_metrics,
            timeout,
            on_timeout,
        )

    def distance_range_many(
        self, centers, radii, metric: Metric = L2, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        qs = _as_query_matrix(centers, self.dims)
        n = qs.shape[0]
        radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (n,))
        if np.any(radii < 0):
            raise ValueError("radius must be non-negative")
        payloads = [
            {"centers": qs[part], "radii": radii[part], "metric": metric}
            for part in self._partitions(n)
        ]
        return self._run(
            "distance",
            n,
            payloads,
            f"distance-batch[{self.workers}x{self.mode}]",
            return_metrics,
            timeout,
            on_timeout,
        )

    def knn_many(
        self,
        centers,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
        timeout=None,
        on_timeout: str = "raise",
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        if approximation_factor < 0:
            raise ValueError("approximation_factor must be >= 0")
        qs = _as_query_matrix(centers, self.dims)
        payloads = [
            {
                "centers": qs[part],
                "k": k,
                "metric": metric,
                "approximation_factor": approximation_factor,
            }
            for part in self._partitions(qs.shape[0])
        ]
        return self._run(
            "knn",
            qs.shape[0],
            payloads,
            f"knn-batch[{self.workers}x{self.mode}]",
            return_metrics,
            timeout,
            on_timeout,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the engine down; safe to call twice, safe after crashes.

        Thread mode: the executor is drained (without waiting for
        abandoned wedged workers) and every owned handle / pinned snapshot
        view is closed.  Process modes: each worker gets a polite stop
        with a bounded join, then termination — a wedged pool can never
        hang ``close()``.
        """
        if self._closed:
            return
        self._closed = True
        if self.mode == "thread":
            # Abandoned (wedged) workers must not block shutdown; healthy
            # engines drain normally so view closure below is safe.
            self._pool.shutdown(
                wait=self._abandoned_threads == 0, cancel_futures=True
            )
            trees, self._trees = self._trees, []
            for tree in trees:
                self._close_view(tree)
        else:
            procs, self._procs = self._procs, []
            for worker in procs:
                worker.stop()
            if self._result_q is not None:
                self._result_q.close()
                self._result_q = None

    def __enter__(self) -> "ParallelQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
