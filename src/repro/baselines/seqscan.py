"""Sequential scan — the baseline everything is normalized against.

Beyond 10-15 dimensions a linear scan often beats tree indexes [Beyer et al.
1999; Weber et al. 1998], so the paper normalizes every cost against it,
charging its page reads at one tenth of a random access.  This implementation
scans a densely packed heap file with numpy and charges
``ceil(n / tuples_per_page)`` sequential reads per query.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BatchQueryMixin, check_vector
from repro.distances import L2, Metric
from repro.geometry.rect import Rect
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.page import PageLayout, data_node_capacity


class SequentialScan(BatchQueryMixin):
    """Heap-file linear scan supporting the same query API as the trees."""

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        stats: IOStats | None = None,
        initial_capacity: int = 1024,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.layout = PageLayout(page_size=page_size)
        self.tuples_per_page = data_node_capacity(dims, self.layout)
        self.io = stats if stats is not None else IOStats()
        self._vectors = np.empty((initial_capacity, dims), dtype=np.float32)
        self._oids = np.empty(initial_capacity, dtype=np.uint32)
        self._count = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "SequentialScan":
        vectors = np.asarray(vectors, dtype=np.float32)
        scan = cls(vectors.shape[1], initial_capacity=max(len(vectors), 1), **kwargs)
        scan._vectors[: len(vectors)] = vectors
        if oids is None:
            scan._oids[: len(vectors)] = np.arange(len(vectors), dtype=np.uint32)
        else:
            scan._oids[: len(vectors)] = np.asarray(oids, dtype=np.uint32)
        scan._count = len(vectors)
        return scan

    def insert(self, vector: np.ndarray, oid: int) -> None:
        v = check_vector(vector, self.dims)
        if self._count == len(self._vectors):
            self._vectors = np.resize(self._vectors, (2 * len(self._vectors), self.dims))
            self._oids = np.resize(self._oids, 2 * len(self._oids))
        self._vectors[self._count] = v
        self._oids[self._count] = oid
        self._count += 1

    def delete(self, vector: np.ndarray, oid: int) -> bool:
        v = np.asarray(vector, dtype=np.float32)
        candidates = np.flatnonzero(self._oids[: self._count] == oid)
        for idx in candidates:
            if np.array_equal(self._vectors[idx], v):
                last = self._count - 1
                self._vectors[idx] = self._vectors[last]
                self._oids[idx] = self._oids[last]
                self._count = last
                return True
        return False

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        return -(-self._count // self.tuples_per_page) if self._count else 0

    def _charge_scan(self) -> None:
        self.io.record(AccessKind.SEQUENTIAL_READ, self.pages())

    # ------------------------------------------------------------------
    # Queries (each pays one full scan)
    # ------------------------------------------------------------------
    def range_search(self, query: Rect) -> list[int]:
        self._charge_scan()
        if self._count == 0:
            return []
        mask = query.contains_points_mask(self._vectors[: self._count])
        return [int(o) for o in self._oids[: self._count][mask]]

    def point_search(self, vector: np.ndarray) -> list[int]:
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def distance_range(
        self, query: np.ndarray, radius: float, metric: Metric = L2
    ) -> list[tuple[int, float]]:
        q = check_vector(query, self.dims)
        self._charge_scan()
        if self._count == 0:
            return []
        dists = metric.distance_batch(self._vectors[: self._count].astype(np.float64), q)
        idx = np.flatnonzero(dists <= radius)
        return [(int(self._oids[i]), float(dists[i])) for i in idx]

    def knn(
        self, query: np.ndarray, k: int, metric: Metric = L2, **_ignored
    ) -> list[tuple[int, float]]:
        q = check_vector(query, self.dims)
        if k < 1:
            raise ValueError("k must be >= 1")
        self._charge_scan()
        if self._count == 0:
            return []
        dists = metric.distance_batch(self._vectors[: self._count].astype(np.float64), q)
        k = min(k, self._count)
        # Deterministic (distance, oid) order: argpartition picks an
        # arbitrary subset among tied boundary distances, so sort instead.
        idx = np.lexsort((self._oids[: self._count], dists))[:k]
        return [(int(self._oids[i]), float(dists[i])) for i in idx]

    # Compatibility with the harness's timing helpers.
    def cpu_reference_scan(self, query: np.ndarray, metric: Metric = L2) -> np.ndarray:
        """Distances to every tuple: the CPU-denominator workload."""
        q = check_vector(query, self.dims)
        return metric.distance_batch(self._vectors[: self._count].astype(np.float64), q)
