"""SS-tree (White & Jain 1995) — DP-based, distance-based baseline.

Subtrees are bounded by spheres around their centroids; insertion descends to
the closest centroid and splits occur on the dimension of maximal centroid
variance at the coordinate median.  An index entry costs ``4k + 8`` bytes, so
fanout degrades with dimensionality (more slowly than the R-tree's boxes).

Being *distance-based*, the SS-tree is committed to the metric its geometry
encodes: sphere bounds are Euclidean, so distance queries under any other
metric are rejected — exactly the limitation the hybrid tree's feature-based
design avoids (paper Sections 1-2).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import EntryLeaf, KernelQueryMixin, check_vector
from repro.distances import LpMetric, Metric
from repro.engine.kernel import ChildBound
from repro.geometry.rect import Rect
from repro.geometry.sphere import Sphere
from repro.storage.iostats import IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import PageLayout, data_node_capacity, sstree_node_capacity
from repro.storage.pagestore import PageStore


def _is_euclidean(metric: Metric) -> bool:
    return isinstance(metric, LpMetric) and metric.p == 2.0


class SSEntry:
    """One index entry: child pointer + bounding sphere + subtree weight."""

    __slots__ = ("child_id", "sphere", "weight")

    def __init__(self, child_id: int, sphere: Sphere, weight: int):
        self.child_id = child_id
        self.sphere = sphere
        self.weight = weight


class _SphereBound(ChildBound):
    """Kernel pruning bound for a sphere-bounded subtree (per-row scalar
    geometry: sphere/box tests have no batched form)."""

    __slots__ = ("sphere",)

    def __init__(self, sphere: Sphere):
        self.sphere = sphere

    def box_mask(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (self.sphere.intersects_rect(Rect(lo, hi)) for lo, hi in zip(lows, highs)),
            dtype=bool,
            count=len(lows),
        )

    def mindist(self, qs: np.ndarray, metric: Metric) -> np.ndarray:
        return np.fromiter(
            (self.sphere.mindist_point(q) for q in qs),
            dtype=np.float64,
            count=len(qs),
        )


class SSIndexNode:
    __slots__ = ("entries", "level")

    def __init__(self, level: int):
        self.entries: list[SSEntry] = []
        self.level = level

    @property
    def fanout(self) -> int:
        return len(self.entries)


class SSTree(KernelQueryMixin):
    """Dynamic SS-tree; supports Euclidean distance queries and box queries."""

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        min_fill: float = 0.4,
        store: PageStore | None = None,
        stats: IOStats | None = None,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.layout = PageLayout(page_size=page_size)
        self.leaf_capacity = data_node_capacity(dims, self.layout)
        self.index_capacity = sstree_node_capacity(dims, self.layout)
        self.min_fill = min_fill
        self.nm = NodeManager(store=store, stats=stats)
        self._root_id = self.nm.allocate()
        self.nm.put(self._root_id, EntryLeaf(dims, self.leaf_capacity), charge=False)
        self._height = 1
        self._count = 0

    @property
    def io(self) -> IOStats:
        return self.nm.stats

    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        return self.nm.store.allocated_pages

    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "SSTree":
        vectors = np.asarray(vectors, dtype=np.float32)
        tree = cls(vectors.shape[1], **kwargs)
        ids = oids if oids is not None else range(len(vectors))
        for v, oid in zip(vectors, ids):
            tree.insert(v, int(oid))
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int) -> None:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        path: list[tuple[int, SSIndexNode, int]] = []
        node_id = self._root_id
        node = self.nm.get(node_id)
        while isinstance(node, SSIndexNode):
            idx = min(
                range(node.fanout),
                key=lambda i: float(np.linalg.norm(node.entries[i].sphere.center - v)),
            )
            entry = node.entries[idx]
            self._absorb_point(entry, v)
            self.nm.put(node_id, node)
            path.append((node_id, node, idx))
            node_id = entry.child_id
            node = self.nm.get(node_id)
        if not node.is_full:
            node.add(v, oid)
            self.nm.put(node_id, node)
        else:
            self._split_leaf(path, node_id, node, v, oid)
        self._count += 1

    @staticmethod
    def _absorb_point(entry: SSEntry, point: np.ndarray) -> None:
        """Update a centroid sphere to cover one more point: the centroid
        moves to the new mean; the radius grows by the shift (a valid bound)
        or to reach the new point."""
        sphere, w = entry.sphere, entry.weight
        new_center = (sphere.center * w + point) / (w + 1)
        shift = float(np.linalg.norm(new_center - sphere.center))
        new_radius = max(
            sphere.radius + shift, float(np.linalg.norm(point - new_center))
        )
        entry.sphere = Sphere(new_center, new_radius)
        entry.weight = w + 1

    def _split_leaf(self, path, node_id, node, vector, oid) -> None:
        points = np.vstack([node.points(), np.asarray(vector, dtype=np.float32)])
        oids = np.append(node.live_oids(), np.uint32(oid))
        group_a, group_b = self._variance_partition(points.astype(np.float64))
        left = EntryLeaf(self.dims, self.leaf_capacity)
        right = EntryLeaf(self.dims, self.leaf_capacity)
        for i in group_a:
            left.add(points[i], int(oids[i]))
        for i in group_b:
            right.add(points[i], int(oids[i]))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate_split(
            path,
            SSEntry(node_id, Sphere.from_points(left.points()), left.count),
            SSEntry(right_id, Sphere.from_points(right.points()), right.count),
            level=1,
        )

    def _split_index(self, path, node_id, node) -> None:
        centers = np.array([e.sphere.center for e in node.entries])
        group_a, group_b = self._variance_partition(centers)
        left = SSIndexNode(node.level)
        right = SSIndexNode(node.level)
        left.entries = [node.entries[i] for i in group_a]
        right.entries = [node.entries[i] for i in group_b]
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate_split(
            path, self._summarise(node_id, left), self._summarise(right_id, right),
            level=node.level + 1,
        )

    @staticmethod
    def _summarise(node_id: int, node: SSIndexNode) -> SSEntry:
        weights = [e.weight for e in node.entries]
        sphere = Sphere.merge_all([e.sphere for e in node.entries], weights)
        return SSEntry(node_id, sphere, sum(weights))

    def _variance_partition(self, rows: np.ndarray) -> tuple[list[int], list[int]]:
        """White & Jain: split on the max-variance dimension at the median
        coordinate, clamped to the utilization bound."""
        n = rows.shape[0]
        dim = int(np.argmax(rows.var(axis=0)))
        order = np.argsort(rows[:, dim], kind="stable")
        min_count = max(1, int(np.floor(n * self.min_fill)))
        k = int(np.clip(n // 2, min_count, n - min_count))
        return order[:k].tolist(), order[k:].tolist()

    def _propagate_split(self, path, old_entry: SSEntry, new_entry: SSEntry, level: int):
        if not path:
            root = SSIndexNode(level)
            root.entries = [old_entry, new_entry]
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            return
        parent_id, parent, entry_idx = path.pop()
        parent.entries[entry_idx] = old_entry
        parent.entries.append(new_entry)
        self.nm.put(parent_id, parent)
        if parent.fanout > self.index_capacity:
            self._split_index(path, parent_id, parent)

    # ------------------------------------------------------------------
    # Queries: the traversal kernel (KernelQueryMixin) over the protocol
    # ------------------------------------------------------------------
    def point_search(self, vector: np.ndarray) -> list[int]:
        """Object ids stored at exactly ``vector`` (float32 equality)."""
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def _require_euclidean(self, metric: Metric) -> None:
        if not _is_euclidean(metric):
            raise ValueError(
                "SS-tree bounding spheres are Euclidean; distance queries under "
                f"{metric!r} are unsupported (use a feature-based index such as "
                "the hybrid tree for arbitrary metrics)"
            )

    def trav_check_metric(self, metric: Metric) -> None:
        self._require_euclidean(metric)

    def trav_root(self):
        return self._root_id, None

    def trav_node(self, ref: int, charge: bool = True):
        return self.nm.get(ref, charge=charge)

    def trav_is_leaf(self, node) -> bool:
        return isinstance(node, EntryLeaf)

    def trav_leaf_points(self, node):
        return node.points(), node.live_oids()

    def trav_children(self, node, ctx):
        return [
            (entry.child_id, None, _SphereBound(entry.sphere))
            for entry in node.entries
        ]
