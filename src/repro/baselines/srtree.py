"""SR-tree (Katayama & Satoh, SIGMOD 1997) — the paper's DP competitor.

Each index entry stores *both* a bounding sphere and a bounding rectangle;
the effective region is their intersection, which is smaller than either
alone.  The price is the largest entry of any structure here
(``12k + 8`` bytes), hence the lowest fanout — at 64 dimensions a 4K page
holds only about five entries, which is why Figures 6 and 7 of the paper
show the SR-tree degrading fastest.

Two insertion policies are provided:

- ``insert_policy="rtree"`` (default): Guttman descent (minimum rectangle
  enlargement) and quadratic split over the rectangles.  This matches the
  comparator the hybrid-tree paper actually benchmarked — "We implemented
  SR-trees by appropriately modifying the R-tree implementation" — and
  exhibits the severe high-dimensional degradation of Figures 6 and 7.
- ``insert_policy="sstree"``: Katayama & Satoh's original policy (descend to
  the nearest centroid; split on the max-variance dimension at the median),
  which behaves considerably better on cluster-structured data and is kept
  for users who want the published SR-tree rather than the paper's
  comparator.

Unlike the SS-tree, the rectangle half of each region lets the SR-tree
answer distance queries under *any* coordinatewise-monotone metric (the
sphere bound is applied only for Euclidean queries); this is what the
paper's Figure 7(c,d) exercises with the L1 metric.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    EntryLeaf,
    KernelQueryMixin,
    check_vector,
    quadratic_partition,
)
from repro.baselines.sstree import _is_euclidean
from repro.distances import Metric
from repro.engine.kernel import ChildBound
from repro.geometry.rect import Rect
from repro.geometry.sphere import Sphere
from repro.storage.iostats import IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import PageLayout, data_node_capacity, srtree_node_capacity
from repro.storage.pagestore import PageStore


class SREntry:
    """Child pointer + bounding sphere + bounding rect + subtree weight."""

    __slots__ = ("child_id", "sphere", "rect", "weight")

    def __init__(self, child_id: int, sphere: Sphere, rect: Rect, weight: int):
        self.child_id = child_id
        self.sphere = sphere
        self.rect = rect
        self.weight = weight

    def mindist(self, q: np.ndarray, metric: Metric) -> float:
        """Lower bound to the sphere ∩ rect region: the max of both bounds
        (sphere bound only under Euclidean, where it is valid)."""
        bound = metric.mindist_rect(q, self.rect.low, self.rect.high)
        if _is_euclidean(metric):
            bound = max(bound, self.sphere.mindist_point(q))
        return bound


class _SRBound(ChildBound):
    """Kernel pruning bound for an SR-tree entry: rect test first, sphere
    test only where the rect passes (same short-circuit order as the
    scalar ``query.intersects(rect) and sphere.intersects_rect(query)``)."""

    __slots__ = ("entry",)

    def __init__(self, entry: SREntry):
        self.entry = entry

    def box_mask(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        mask = self.entry.rect.intersects_boxes_mask(lows, highs)
        sphere = self.entry.sphere
        for i in np.flatnonzero(mask):
            mask[i] = sphere.intersects_rect(Rect(lows[i], highs[i]))
        return mask

    def mindist(self, qs: np.ndarray, metric: Metric) -> np.ndarray:
        return np.fromiter(
            (self.entry.mindist(q, metric) for q in qs),
            dtype=np.float64,
            count=len(qs),
        )


class SRIndexNode:
    __slots__ = ("entries", "level")

    def __init__(self, level: int):
        self.entries: list[SREntry] = []
        self.level = level

    @property
    def fanout(self) -> int:
        return len(self.entries)


class SRTree(KernelQueryMixin):
    """Dynamic SR-tree over a ``dims``-dimensional feature space."""

    INSERT_POLICIES = ("rtree", "sstree")

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        min_fill: float = 0.4,
        insert_policy: str = "rtree",
        store: PageStore | None = None,
        stats: IOStats | None = None,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if insert_policy not in self.INSERT_POLICIES:
            raise ValueError(
                f"insert_policy must be one of {self.INSERT_POLICIES}, got {insert_policy!r}"
            )
        self.insert_policy = insert_policy
        self.dims = dims
        self.layout = PageLayout(page_size=page_size)
        self.leaf_capacity = data_node_capacity(dims, self.layout)
        self.index_capacity = srtree_node_capacity(dims, self.layout)
        self.min_fill = min_fill
        self.nm = NodeManager(store=store, stats=stats)
        self._root_id = self.nm.allocate()
        self.nm.put(self._root_id, EntryLeaf(dims, self.leaf_capacity), charge=False)
        self._height = 1
        self._count = 0

    @property
    def io(self) -> IOStats:
        return self.nm.stats

    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        return self.nm.store.allocated_pages

    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "SRTree":
        vectors = np.asarray(vectors, dtype=np.float32)
        tree = cls(vectors.shape[1], **kwargs)
        ids = oids if oids is not None else range(len(vectors))
        for v, oid in zip(vectors, ids):
            tree.insert(v, int(oid))
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int) -> None:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        path: list[tuple[int, SRIndexNode, int]] = []
        node_id = self._root_id
        node = self.nm.get(node_id)
        while isinstance(node, SRIndexNode):
            idx = self._choose_entry(node, v)
            entry = node.entries[idx]
            self._absorb_point(entry, v)
            self.nm.put(node_id, node)
            path.append((node_id, node, idx))
            node_id = entry.child_id
            node = self.nm.get(node_id)
        if not node.is_full:
            node.add(v, oid)
            self.nm.put(node_id, node)
        else:
            self._split_leaf(path, node_id, node, v, oid)
        self._count += 1

    def _choose_entry(self, node: SRIndexNode, point: np.ndarray) -> int:
        """Descent rule: Guttman minimum rect enlargement (``rtree``) or
        nearest centroid (``sstree``)."""
        if self.insert_policy == "sstree":
            centers = np.array([e.sphere.center for e in node.entries])
            return int(np.argmin(np.linalg.norm(centers - point, axis=1)))
        lows = np.array([e.rect.low for e in node.entries])
        highs = np.array([e.rect.high for e in node.entries])
        volumes = np.prod(highs - lows, axis=1)
        merged = np.prod(np.maximum(highs, point) - np.minimum(lows, point), axis=1)
        enlargement = merged - volumes
        candidates = np.flatnonzero(enlargement <= enlargement.min() + 1e-18)
        return int(candidates[np.argmin(volumes[candidates])])

    @staticmethod
    def _absorb_point(entry: SREntry, point: np.ndarray) -> None:
        sphere, w = entry.sphere, entry.weight
        new_center = (sphere.center * w + point) / (w + 1)
        shift = float(np.linalg.norm(new_center - sphere.center))
        new_radius = max(
            sphere.radius + shift, float(np.linalg.norm(point - new_center))
        )
        entry.sphere = Sphere(new_center, new_radius)
        entry.rect = entry.rect.merge_point(point)
        entry.weight = w + 1

    def _leaf_entry(self, node_id: int, leaf: EntryLeaf) -> SREntry:
        points = leaf.points()
        return SREntry(node_id, Sphere.from_points(points), leaf.rect(), leaf.count)

    def _split_leaf(self, path, node_id, node, vector, oid) -> None:
        points = np.vstack([node.points(), np.asarray(vector, dtype=np.float32)])
        oids = np.append(node.live_oids(), np.uint32(oid))
        rows = points.astype(np.float64)
        if self.insert_policy == "rtree":
            group_a, group_b = quadratic_partition(rows, rows, self.min_fill)
        else:
            group_a, group_b = self._variance_partition(rows)
        left = EntryLeaf(self.dims, self.leaf_capacity)
        right = EntryLeaf(self.dims, self.leaf_capacity)
        for i in group_a:
            left.add(points[i], int(oids[i]))
        for i in group_b:
            right.add(points[i], int(oids[i]))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate_split(
            path, self._leaf_entry(node_id, left), self._leaf_entry(right_id, right), level=1
        )

    def _split_index(self, path, node_id, node) -> None:
        if self.insert_policy == "rtree":
            lows = np.array([e.rect.low for e in node.entries])
            highs = np.array([e.rect.high for e in node.entries])
            group_a, group_b = quadratic_partition(lows, highs, self.min_fill)
        else:
            centers = np.array([e.sphere.center for e in node.entries])
            group_a, group_b = self._variance_partition(centers)
        left = SRIndexNode(node.level)
        right = SRIndexNode(node.level)
        left.entries = [node.entries[i] for i in group_a]
        right.entries = [node.entries[i] for i in group_b]
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate_split(
            path, self._summarise(node_id, left), self._summarise(right_id, right),
            level=node.level + 1,
        )

    @staticmethod
    def _summarise(node_id: int, node: SRIndexNode) -> SREntry:
        weights = [e.weight for e in node.entries]
        sphere = Sphere.merge_all([e.sphere for e in node.entries], weights)
        rect = Rect.merge_all([e.rect for e in node.entries])
        return SREntry(node_id, sphere, rect, sum(weights))

    def _variance_partition(self, rows: np.ndarray) -> tuple[list[int], list[int]]:
        n = rows.shape[0]
        dim = int(np.argmax(rows.var(axis=0)))
        order = np.argsort(rows[:, dim], kind="stable")
        min_count = max(1, int(np.floor(n * self.min_fill)))
        k = int(np.clip(n // 2, min_count, n - min_count))
        return order[:k].tolist(), order[k:].tolist()

    def _propagate_split(self, path, old_entry: SREntry, new_entry: SREntry, level: int):
        if not path:
            root = SRIndexNode(level)
            root.entries = [old_entry, new_entry]
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            return
        parent_id, parent, entry_idx = path.pop()
        parent.entries[entry_idx] = old_entry
        parent.entries.append(new_entry)
        self.nm.put(parent_id, parent)
        if parent.fanout > self.index_capacity:
            self._split_index(path, parent_id, parent)

    # ------------------------------------------------------------------
    # Queries: the traversal kernel (KernelQueryMixin) over the protocol
    # ------------------------------------------------------------------
    def point_search(self, vector: np.ndarray) -> list[int]:
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def trav_root(self):
        return self._root_id, None

    def trav_node(self, ref: int, charge: bool = True):
        return self.nm.get(ref, charge=charge)

    def trav_is_leaf(self, node) -> bool:
        return isinstance(node, EntryLeaf)

    def trav_leaf_points(self, node):
        return node.points(), node.live_oids()

    def trav_children(self, node, ctx):
        return [(entry.child_id, None, _SRBound(entry)) for entry in node.entries]
