"""X-tree (Berchtold, Keim & Kriegel, VLDB 1996) — R-tree with supernodes.

Section 2 of the hybrid-tree paper lists the X-tree among the DP-based,
feature-based structures.  Its idea: when splitting an R-tree directory node
would produce heavily overlapping halves, *don't split* — extend the node
into a multi-page **supernode** scanned sequentially, trading fanout for
overlap-freedom.  At high dimensionality the directory degenerates toward a
supernode chain, i.e. toward the linear scan — which is the behaviour the
hybrid tree's 1-d overlap-bounded splits avoid.

Built as a subclass of our Guttman R-tree: the split path first tries the
quadratic split, then the best single-dimension (topological) split; if both
exceed the overlap threshold the node becomes a supernode.  Supernodes
occupy several pages, and every visit charges that many page reads.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.rtree import RIndexNode, RTree
from repro.geometry.rect import Rect
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.pagestore import PageStore


class SupernodeManager(NodeManager):
    """Node cache that charges multi-page reads/writes for supernodes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.page_counts: dict[int, int] = {}

    def _pages_of(self, page_id: int) -> int:
        return self.page_counts.get(page_id, 1)

    def get(self, page_id: int, charge: bool = True):
        node = self._cache.get(page_id)
        if node is not None:
            if charge:
                self.stats.record(AccessKind.RANDOM_READ, self._pages_of(page_id))
            return node
        return super().get(page_id, charge=charge)

    def put(self, page_id: int, node, charge: bool = True) -> None:
        self._cache[page_id] = node
        self._dirty.add(page_id)
        if charge:
            self.stats.record(AccessKind.RANDOM_WRITE, self._pages_of(page_id))

    def free(self, page_id: int) -> None:
        self.page_counts.pop(page_id, None)
        super().free(page_id)


class XTree(RTree):
    """Dynamic X-tree with overlap-bounded splits and supernodes."""

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        min_fill: float = 0.4,
        max_overlap: float = 0.2,
        max_supernode_pages: int = 8,
        store: PageStore | None = None,
        stats: IOStats | None = None,
    ):
        if not 0.0 <= max_overlap <= 1.0:
            raise ValueError("max_overlap must be in [0, 1]")
        if max_supernode_pages < 1:
            raise ValueError("max_supernode_pages must be >= 1")
        super().__init__(
            dims, page_size=page_size, min_fill=min_fill, store=store, stats=stats
        )
        self.max_overlap = max_overlap
        self.max_supernode_pages = max_supernode_pages
        # Swap in the supernode-aware manager (keeps the root already there).
        manager = SupernodeManager(store=self.nm.store, stats=self.nm.stats)
        manager._cache = self.nm._cache
        manager._dirty = self.nm._dirty
        self.nm = manager

    # ------------------------------------------------------------------
    def _capacity_of(self, node_id: int) -> int:
        return self.index_capacity * self.nm.page_counts.get(node_id, 1)

    def supernode_count(self) -> int:
        return sum(1 for pages in self.nm.page_counts.values() if pages > 1)

    def trav_node_pages(self, ref: int) -> int:
        # Supernodes occupy (and charge) several pages per visit; the SOA
        # kernel uses this to reproduce the object walk's accounting.
        return self.nm.page_counts.get(ref, 1)

    @staticmethod
    def _group_rects(entries, group) -> Rect:
        return Rect.merge_all([entries[i][1] for i in group])

    @staticmethod
    def _overlap_ratio(entries, group_a: list[int], group_b: list[int]) -> float:
        """Fraction of entries whose rect intersects *both* halves' MBRs.

        Volume-based overlap is useless in high dimensions (a single
        disjoint dimension zeroes the product), so, like Berchtold et al.,
        we measure how many objects a query falling in the overlap region
        would have to follow into both subtrees."""
        rect_a = XTree._group_rects(entries, group_a)
        rect_b = XTree._group_rects(entries, group_b)
        inter = rect_a.intersection(rect_b)
        if inter is None:
            return 0.0
        both = sum(1 for _, rect in entries if rect.intersects(inter))
        return both / len(entries)

    def _topological_partition(self, entries) -> tuple[list[int], list[int], float]:
        """Best single-dimension split by centre order (the X-tree's
        split-history-guided fallback, approximated by trying every dim)."""
        n = len(entries)
        min_count = max(1, int(np.floor(n * self.min_fill)))
        centers = np.array([r.center for _, r in entries])
        best: tuple[float, list[int], list[int]] | None = None
        for dim in range(self.dims):
            order = np.argsort(centers[:, dim], kind="stable")
            k = int(np.clip(n // 2, min_count, n - min_count))
            group_a = order[:k].tolist()
            group_b = order[k:].tolist()
            ratio = self._overlap_ratio(entries, group_a, group_b)
            if best is None or ratio < best[0]:
                best = (ratio, group_a, group_b)
        assert best is not None
        ratio, group_a, group_b = best
        return group_a, group_b, ratio

    # ------------------------------------------------------------------
    def _propagate_split(self, path, old_id, old_rect, new_id, new_rect, level):
        if not path:
            root = RIndexNode(level)
            root.entries = [(old_id, old_rect), (new_id, new_rect)]
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            return
        parent_id, parent, entry_idx = path.pop()
        parent.entries[entry_idx] = (old_id, old_rect)
        parent.entries.append((new_id, new_rect))
        self.nm.put(parent_id, parent)
        if parent.fanout > self._capacity_of(parent_id):
            self._split_or_extend(path, parent_id, parent)

    def _split_or_extend(self, path, node_id: int, node: RIndexNode) -> None:
        """The X-tree split decision: split if some partition is clean
        enough, otherwise grow a supernode."""
        rects = [rect for _, rect in node.entries]
        group_a, group_b = self._quadratic_partition(rects)
        ratio_quadratic = self._overlap_ratio(node.entries, group_a, group_b)
        if ratio_quadratic > self.max_overlap:
            topo_a, topo_b, ratio_topo = self._topological_partition(node.entries)
            if ratio_topo < ratio_quadratic:
                group_a, group_b, ratio_quadratic = topo_a, topo_b, ratio_topo
        pages = self.nm.page_counts.get(node_id, 1)
        if ratio_quadratic > self.max_overlap and pages < self.max_supernode_pages:
            # No overlap-free split exists: extend into a supernode.
            self.nm.page_counts[node_id] = pages + 1
            self.nm.put(node_id, node)
            return
        left = RIndexNode(node.level)
        right = RIndexNode(node.level)
        left.entries = [node.entries[i] for i in group_a]
        right.entries = [node.entries[i] for i in group_b]
        right_id = self.nm.allocate()
        self.nm.page_counts.pop(node_id, None)  # halves are plain nodes again
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate_split(
            path,
            node_id,
            Rect.merge_all([r for _, r in left.entries]),
            right_id,
            Rect.merge_all([r for _, r in right.entries]),
            level=node.level + 1,
        )

    def _split_index(self, path, node_id, node) -> None:
        # Deletion-path reinsertions also route through the X-tree decision.
        self._split_or_extend(path, node_id, node)

    def pages(self) -> int:
        """Allocated pages plus the extra pages of supernodes."""
        extra = sum(p - 1 for p in self.nm.page_counts.values())
        return self.nm.store.allocated_pages + extra
