"""M-tree (Ciaccia, Patella & Zezula, VLDB 1997) — distance-based exemplar.

Section 2 of the hybrid-tree paper classifies index structures into
feature-based and *distance-based*; the M-tree is the canonical DP-based
member of the distance-based class.  It partitions data purely by distances
to routing objects under a metric **fixed at construction time**: each index
entry stores a routing object, a covering radius and the distance to its
parent routing object, enabling triangle-inequality pruning without ever
looking at coordinates.

Two properties matter for the paper's argument and are faithfully modelled:

- queries under any *other* metric are rejected (the distance-based
  limitation the hybrid tree avoids);
- box (window) queries are unsupported — there is no coordinate geometry to
  intersect a box with (``range_search`` raises ``TypeError``).

Insertion descends to the routing object needing least radius enlargement
(preferring children that already cover the point); splits promote two new
routing objects by the mM_RAD rule over a sample and partition by the
generalized-hyperplane rule, as in the original paper's best-performing
configuration.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.baselines.common import EntryLeaf, KernelQueryMixin, check_vector
from repro.distances import L2, Metric
from repro.engine.kernel import ChildBound
from repro.storage.iostats import IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import FLOAT_SIZE, OID_SIZE, PAGE_ID_SIZE, PageLayout
from repro.storage.pagestore import PageStore


def mtree_leaf_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Leaf entry: vector + oid + distance-to-parent."""
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + OID_SIZE + FLOAT_SIZE
    return max(layout.usable // entry, 2)


def mtree_index_capacity(dims: int, layout: PageLayout | None = None) -> int:
    """Index entry: routing object + covering radius + parent distance + ptr."""
    layout = layout or PageLayout()
    entry = dims * FLOAT_SIZE + FLOAT_SIZE + FLOAT_SIZE + PAGE_ID_SIZE
    return max(layout.usable // entry, 2)


class MEntry:
    """Routing entry: object, covering radius, subtree pointer."""

    __slots__ = ("router", "radius", "child_id", "weight")

    def __init__(self, router: np.ndarray, radius: float, child_id: int, weight: int):
        self.router = router
        self.radius = float(radius)
        self.child_id = child_id
        self.weight = weight


class MIndexNode:
    __slots__ = ("entries", "level")

    def __init__(self, level: int):
        self.entries: list[MEntry] = []
        self.level = level

    @property
    def fanout(self) -> int:
        return len(self.entries)


class _RouterBound(ChildBound):
    """Kernel pruning bound from a routing entry's covering radius.

    ``distance_mask`` keeps the original triangle-inequality comparison
    ``d(router, q) <= radius + covering_radius`` (not the rearranged
    ``mindist <= radius``) so float behaviour matches the scalar path.
    """

    __slots__ = ("entry",)

    def __init__(self, entry: MEntry):
        self.entry = entry

    def _router_dists(self, qs: np.ndarray, metric: Metric) -> np.ndarray:
        return metric.distance_batch(qs, self.entry.router)

    def distance_mask(self, qs: np.ndarray, radii: np.ndarray, metric: Metric) -> np.ndarray:
        return self._router_dists(qs, metric) <= radii + self.entry.radius

    def mindist(self, qs: np.ndarray, metric: Metric) -> np.ndarray:
        return np.maximum(0.0, self._router_dists(qs, metric) - self.entry.radius)


class MTree(KernelQueryMixin):
    """Dynamic M-tree under a metric fixed at construction."""

    trav_supports_box = False

    def __init__(
        self,
        dims: int,
        *,
        metric: Metric = L2,
        page_size: int = 4096,
        min_fill: float = 0.4,
        store: PageStore | None = None,
        stats: IOStats | None = None,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.metric = metric
        self.layout = PageLayout(page_size=page_size)
        self.leaf_capacity = mtree_leaf_capacity(dims, self.layout)
        self.index_capacity = mtree_index_capacity(dims, self.layout)
        self.min_fill = min_fill
        self.nm = NodeManager(store=store, stats=stats)
        self._root_id = self.nm.allocate()
        self.nm.put(self._root_id, EntryLeaf(dims, self.leaf_capacity), charge=False)
        self._height = 1
        self._count = 0

    @property
    def io(self) -> IOStats:
        return self.nm.stats

    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        return self.nm.store.allocated_pages

    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "MTree":
        vectors = np.asarray(vectors, dtype=np.float32)
        tree = cls(vectors.shape[1], **kwargs)
        ids = oids if oids is not None else range(len(vectors))
        for v, oid in zip(vectors, ids):
            tree.insert(v, int(oid))
        return tree

    def _check_metric(self, metric: Metric) -> None:
        if metric is not self.metric and metric != self.metric:
            raise ValueError(
                "M-tree geometry is committed to the metric fixed at build "
                f"time ({self.metric!r}); queries under {metric!r} are "
                "unsupported — this is the distance-based limitation the "
                "hybrid tree exists to avoid"
            )

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int) -> None:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        path: list[tuple[int, MIndexNode, int]] = []
        node_id = self._root_id
        node = self.nm.get(node_id)
        while isinstance(node, MIndexNode):
            idx = self._choose_entry(node, v)
            entry = node.entries[idx]
            dist = self.metric.distance(entry.router, v)
            if dist > entry.radius:
                entry.radius = dist
            entry.weight += 1
            self.nm.put(node_id, node)
            path.append((node_id, node, idx))
            node_id = entry.child_id
            node = self.nm.get(node_id)
        if not node.is_full:
            node.add(v, oid)
            self.nm.put(node_id, node)
        else:
            self._split_leaf(path, node_id, node, v, oid)
        self._count += 1

    def _choose_entry(self, node: MIndexNode, point: np.ndarray) -> int:
        dists = np.array(
            [self.metric.distance(e.router, point) for e in node.entries]
        )
        radii = np.array([e.radius for e in node.entries])
        covering = np.flatnonzero(dists <= radii)
        if covering.size:
            return int(covering[np.argmin(dists[covering])])
        return int(np.argmin(dists - radii))  # least radius enlargement

    def _promote_and_partition(
        self, rows: np.ndarray
    ) -> tuple[int, int, list[int], list[int]]:
        """mM_RAD promotion over a sample + generalized-hyperplane split."""
        n = rows.shape[0]
        rng_idx = range(min(n, 24))  # bounded candidate sample
        best = (np.inf, 0, 1)
        for a, b in itertools.combinations(rng_idx, 2):
            da = self.metric.distance_batch(rows, rows[a])
            db = self.metric.distance_batch(rows, rows[b])
            to_a = da <= db
            r1 = da[to_a].max() if to_a.any() else 0.0
            r2 = db[~to_a].max() if (~to_a).any() else 0.0
            score = max(r1, r2)
            if score < best[0]:
                best = (score, a, b)
        _, a, b = best
        da = self.metric.distance_batch(rows, rows[a])
        db = self.metric.distance_batch(rows, rows[b])
        min_count = max(1, int(np.floor(n * self.min_fill)))
        order = np.argsort(da - db, kind="stable")
        split = int(np.clip(int((da <= db).sum()), min_count, n - min_count))
        group_a = order[:split].tolist()
        group_b = order[split:].tolist()
        return a, b, group_a, group_b

    def _split_leaf(self, path, node_id, node, vector, oid) -> None:
        points = np.vstack([node.points(), np.asarray(vector, dtype=np.float32)])
        oids = np.append(node.live_oids(), np.uint32(oid))
        rows = points.astype(np.float64)
        pa, pb, group_a, group_b = self._promote_and_partition(rows)
        left = EntryLeaf(self.dims, self.leaf_capacity)
        right = EntryLeaf(self.dims, self.leaf_capacity)
        for i in group_a:
            left.add(points[i], int(oids[i]))
        for i in group_b:
            right.add(points[i], int(oids[i]))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        entry_a = self._leaf_entry(rows[pa], node_id, left)
        entry_b = self._leaf_entry(rows[pb], right_id, right)
        self._propagate(path, entry_a, entry_b, level=1)

    def _leaf_entry(self, router: np.ndarray, node_id: int, leaf: EntryLeaf) -> MEntry:
        dists = self.metric.distance_batch(leaf.points().astype(np.float64), router)
        return MEntry(router.copy(), float(dists.max()), node_id, leaf.count)

    def _split_index(self, path, node_id, node) -> None:
        routers = np.array([e.router for e in node.entries])
        pa, pb, group_a, group_b = self._promote_and_partition(routers)
        left = MIndexNode(node.level)
        right = MIndexNode(node.level)
        left.entries = [node.entries[i] for i in group_a]
        right.entries = [node.entries[i] for i in group_b]
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        entry_a = self._index_entry(routers[pa], node_id, left)
        entry_b = self._index_entry(routers[pb], right_id, right)
        self._propagate(path, entry_a, entry_b, level=node.level + 1)

    def _index_entry(self, router: np.ndarray, node_id: int, node: MIndexNode) -> MEntry:
        radius = max(
            self.metric.distance(router, e.router) + e.radius for e in node.entries
        )
        weight = sum(e.weight for e in node.entries)
        return MEntry(router.copy(), radius, node_id, weight)

    def _propagate(self, path, entry_a: MEntry, entry_b: MEntry, level: int) -> None:
        if not path:
            root = MIndexNode(level)
            root.entries = [entry_a, entry_b]
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            return
        parent_id, parent, entry_idx = path.pop()
        parent.entries[entry_idx] = entry_a
        parent.entries.append(entry_b)
        self.nm.put(parent_id, parent)
        if parent.fanout > self.index_capacity:
            self._split_index(path, parent_id, parent)

    # ------------------------------------------------------------------
    # Queries (fixed metric; no window queries): the traversal kernel
    # ------------------------------------------------------------------
    def range_search(self, query) -> list[int]:
        raise TypeError(
            "the M-tree is distance-based: it has no coordinate geometry to "
            "answer bounding-box (window) queries — use a feature-based "
            "index such as the hybrid tree"
        )

    def range_search_many(
        self, queries, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        raise TypeError(
            "the M-tree is distance-based: it has no coordinate geometry to "
            "answer bounding-box (window) queries — use a feature-based "
            "index such as the hybrid tree"
        )

    def distance_range(
        self, query: np.ndarray, radius: float, metric: Metric | None = None
    ) -> list[tuple[int, float]]:
        return self.distance_range_many([query], radius, metric)[0]

    def knn(
        self,
        query: np.ndarray,
        k: int,
        metric: Metric | None = None,
        approximation_factor: float = 0.0,
    ) -> list[tuple[int, float]]:
        return self.knn_many([query], k, metric, approximation_factor)[0]

    def distance_range_many(
        self, centers, radii, metric: Metric | None = None,
        return_metrics: bool = False, timeout=None, on_timeout: str = "raise",
    ):
        if metric is not None:
            self._check_metric(metric)
        return super().distance_range_many(
            centers, radii, self.metric, return_metrics, timeout, on_timeout
        )

    def knn_many(
        self,
        centers,
        k: int,
        metric: Metric | None = None,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
        timeout=None,
        on_timeout: str = "raise",
    ):
        if metric is not None:
            self._check_metric(metric)
        return super().knn_many(
            centers, k, self.metric, approximation_factor, return_metrics,
            timeout, on_timeout,
        )

    def trav_check_metric(self, metric: Metric) -> None:
        self._check_metric(metric)

    def trav_root(self):
        return self._root_id, None

    def trav_node(self, ref: int, charge: bool = True):
        return self.nm.get(ref, charge=charge)

    def trav_is_leaf(self, node) -> bool:
        return isinstance(node, EntryLeaf)

    def trav_leaf_points(self, node):
        return node.points(), node.live_oids()

    def trav_children(self, node, ctx):
        return [(entry.child_id, None, _RouterBound(entry)) for entry in node.entries]
