"""Competitor index structures from the paper's evaluation (Section 4).

- :mod:`repro.baselines.seqscan` — linear scan, the normalisation baseline.
- :mod:`repro.baselines.rtree` — Guttman R-tree (quadratic split); the
  substrate the original authors modified to obtain their SR-tree.
- :mod:`repro.baselines.sstree` — White & Jain SS-tree (bounding spheres).
- :mod:`repro.baselines.srtree` — Katayama & Satoh SR-tree (sphere ∩ rect),
  the DP-based competitor of Figures 6 and 7.
- :mod:`repro.baselines.kdbtree` — Robinson KDB-tree (clean 1-d splits with
  cascading), the Table 1 motivation for the hybrid relaxation.
- :mod:`repro.baselines.hbtree` — Lomet & Salzberg hB-tree (holey bricks),
  the SP-based competitor of Figure 6.

Extension competitors from the paper's Section 2 classification (not part
of its figures, provided for completeness):

- :mod:`repro.baselines.xtree` — Berchtold et al. X-tree (supernodes).
- :mod:`repro.baselines.mtree` — Ciaccia et al. M-tree (distance-based;
  metric fixed at build time, no window queries — the class limitation the
  hybrid tree avoids).
- :mod:`repro.baselines.vafile` — Weber et al. VA-file (quantization scan,
  the constructive form of the linear-scan argument).

All indexes share the informal protocol of
:class:`repro.baselines.common.FeatureIndex`: ``insert``, ``range_search``,
``distance_range``, ``knn``, an ``io`` accountant and ``pages()``.
"""

from repro.baselines.hbtree import HBTree
from repro.baselines.kdbtree import KDBTree
from repro.baselines.mtree import MTree
from repro.baselines.rtree import RTree
from repro.baselines.seqscan import SequentialScan
from repro.baselines.srtree import SRTree
from repro.baselines.sstree import SSTree
from repro.baselines.vafile import VAFile
from repro.baselines.xtree import XTree

__all__ = [
    "HBTree",
    "KDBTree",
    "MTree",
    "RTree",
    "SRTree",
    "SSTree",
    "SequentialScan",
    "VAFile",
    "XTree",
]
