"""Shared machinery for the baseline index structures.

``FeatureIndex`` documents the informal protocol every index in this
repository implements (the hybrid tree included), so the evaluation harness
and the exactness tests can drive them interchangeably.  Three mixins supply
the batch-query surface of :mod:`repro.engine` (``range_search_many`` /
``distance_range_many`` / ``knn_many``):

- ``LoopQueryMixin`` provides the measured per-query loop as the explicitly
  named ``*_loop`` methods — the instrumented single-query side of every
  batch-vs-loop comparison;
- ``BatchQueryMixin`` aliases the loop as the batch API, for structures with
  no traversable directory (sequential scan, VA-file);
- ``KernelQueryMixin`` serves both the batch API *and* the single-query
  methods from the structure-agnostic traversal kernel
  (:mod:`repro.engine.kernel`), for every paged structure implementing the
  ``trav_*`` protocol.

``EntryLeaf`` is the numpy-backed data page reused by the R-tree family.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.distances import L2, Metric
from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats


@runtime_checkable
class FeatureIndex(Protocol):
    """What the harness needs from an index structure."""

    io: IOStats

    def insert(self, vector: np.ndarray, oid: int) -> None: ...

    def range_search(self, query: Rect) -> list[int]: ...

    def distance_range(
        self, query: np.ndarray, radius: float, metric: Metric
    ) -> list[tuple[int, float]]: ...

    def knn(self, query: np.ndarray, k: int, metric: Metric) -> list[tuple[int, float]]: ...

    def pages(self) -> int: ...

    def __len__(self) -> int: ...


def measured_loop(index, label: str, calls, deadline=None, on_timeout="raise"):
    """Run ``calls`` one by one against ``index`` with exact instrumentation.

    Module-level (not a mixin method) so the ``*_loop`` methods can be
    invoked *unbound* on any object with an ``io`` accountant — including
    the hybrid tree, which does not inherit the mixin.

    ``deadline`` bounds the loop at per-query granularity — the natural
    grain for a loop whose unit of work is a whole query.  With
    ``on_timeout="partial"`` the completed prefix comes back in a
    :class:`~repro.resilience.PartialResult` (queries that ran are marked
    complete); otherwise a :class:`QueryTimeoutError` propagates.  Metrics
    cover exactly the queries that ran.
    """
    from repro.engine.metrics import LoopRecorder
    from repro.resilience import PartialResult, QueryTimeoutError

    recorder = LoopRecorder(label, index.io)
    # Charge both access kinds: a checkpoint of random_reads alone
    # silently drops the sequential reads that dominate seqscan/VA-file.
    reads0 = index.io.random_reads + index.io.sequential_reads
    results = []
    err = None
    try:
        for call in calls:
            if deadline is not None:
                deadline.check()
            recorder.start_query()
            results.append(call())
            recorder.end_query()
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc
    charged = (index.io.random_reads + index.io.sequential_reads) - reads0
    if err is not None:
        n = len(calls)
        completed = np.zeros(n, dtype=bool)
        completed[: len(results)] = True
        results.extend([] for _ in range(n - len(results)))
        results = PartialResult(results, completed, err)
    return results, recorder.finish(charged_reads=charged)


def _plain_loop(calls, deadline, on_timeout):
    """The unmeasured per-query loop, with the same per-query deadline
    grain and partial-envelope semantics as :func:`measured_loop`."""
    from repro.resilience import PartialResult, QueryTimeoutError

    results = []
    err = None
    try:
        for call in calls:
            if deadline is not None:
                deadline.check()
            results.append(call())
    except QueryTimeoutError as exc:
        if on_timeout != "partial":
            raise
        err = exc
    if err is None:
        return results
    n = len(calls)
    completed = np.zeros(n, dtype=bool)
    completed[: len(results)] = True
    results.extend([] for _ in range(n - len(results)))
    return PartialResult(results, completed, err)


def _loop_run(index, label, calls, return_metrics, timeout, on_timeout):
    """Shared loop driver: coerce the deadline, pick measured vs plain.

    Module-level so the ``*_loop`` methods stay invokable unbound on any
    object with an ``io`` accountant (the hybrid tree included).
    """
    from repro.engine.kernel import check_on_timeout
    from repro.resilience import Deadline

    check_on_timeout(on_timeout)
    deadline = Deadline.coerce(timeout)
    if return_metrics:
        return measured_loop(index, label, calls, deadline, on_timeout)
    return _plain_loop(calls, deadline, on_timeout)


class LoopQueryMixin:
    """The measured per-query loop, under the explicit ``*_loop`` names.

    With ``return_metrics=True`` the loop measures every query exactly
    (latency via ``perf_counter``, pages via an ``IOStats`` checkpoint) and
    returns a :class:`repro.engine.metrics.BatchMetrics` alongside the
    results — the instrumented single-query side of every batch-vs-loop
    comparison in the benchmarks and the conformance suite.

    ``timeout``/``on_timeout`` bound the loop at per-query granularity —
    see :func:`measured_loop`.
    """

    def range_search_loop(
        self, queries, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        return _loop_run(
            self, "range-loop",
            [lambda q=q: self.range_search(q) for q in queries],
            return_metrics, timeout, on_timeout,
        )

    def distance_range_loop(
        self, centers, radii, metric: Metric = L2, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        centers = np.asarray(centers)
        radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (len(centers),))
        return _loop_run(
            self, "distance-loop",
            [
                lambda c=c, r=r: self.distance_range(c, float(r), metric)
                for c, r in zip(centers, radii)
            ],
            return_metrics, timeout, on_timeout,
        )

    def knn_loop(
        self,
        centers,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
        timeout=None,
        on_timeout: str = "raise",
    ):
        centers = np.asarray(centers)
        kwargs = (
            {"approximation_factor": approximation_factor}
            if approximation_factor
            else {}
        )
        return _loop_run(
            self, "knn-loop",
            [lambda c=c: self.knn(c, k, metric, **kwargs) for c in centers],
            return_metrics, timeout, on_timeout,
        )


class BatchQueryMixin(LoopQueryMixin):
    """Batch-query API served by the measured loop.

    For structures with no traversable directory (sequential scan, VA-file)
    the loop *is* the batch semantics: every query pays the structure's full
    scan cost, so the batched harness, the CLI and the engine benchmark can
    still drive them through one interface.
    """

    range_search_many = LoopQueryMixin.range_search_loop
    distance_range_many = LoopQueryMixin.distance_range_loop
    knn_many = LoopQueryMixin.knn_loop


class KernelQueryMixin(LoopQueryMixin):
    """Batch *and* single-query API served by the traversal kernel.

    Structures implementing the ``trav_*`` protocol (see
    :mod:`repro.engine.kernel`) inherit this so single-query, batched, and
    parallel execution all flow through the same traversal code with the
    same accounting; the single-query methods are the kernel at batch size
    one.  The ``*_loop`` methods from :class:`LoopQueryMixin` remain
    available as the measured per-query baseline.

    When a struct-of-arrays snapshot is attached (:meth:`compile_snapshot`)
    the batch methods run on the vectorized SOA kernel instead — results
    are bit-identical either way.  Mutations must call
    :meth:`invalidate_snapshot`; queries then fall back to the object walk
    until the structure is re-compiled.
    """

    def range_search_many(
        self, queries, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        from repro.engine.soa import dispatch_range_search_many

        return dispatch_range_search_many(
            self, queries, return_metrics, "range-batch", timeout, on_timeout
        )

    def distance_range_many(
        self, centers, radii, metric: Metric = L2, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        from repro.engine.soa import dispatch_distance_range_many

        return dispatch_distance_range_many(
            self, centers, radii, metric, return_metrics, "distance-batch",
            timeout, on_timeout,
        )

    def knn_many(
        self,
        centers,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
        timeout=None,
        on_timeout: str = "raise",
    ):
        from repro.engine.soa import dispatch_knn_many

        return dispatch_knn_many(
            self, centers, k, metric, approximation_factor, return_metrics,
            "knn-batch", timeout, on_timeout,
        )

    # -- struct-of-arrays snapshot lifecycle ---------------------------
    @property
    def soa_snapshot(self):
        """The attached SOA snapshot, or None."""
        return getattr(self, "_soa_snapshot", None)

    def compile_snapshot(self, force: bool = False):
        """Compile (and attach) a struct-of-arrays snapshot of this index.

        Cached until :meth:`invalidate_snapshot`; ``force=True``
        recompiles unconditionally."""
        from repro.engine.soa import compile_snapshot

        snap = getattr(self, "_soa_snapshot", None)
        if snap is None or force:
            snap = compile_snapshot(self)
            self._soa_snapshot = snap
        return snap

    def invalidate_snapshot(self) -> None:
        """Drop the attached snapshot (call after any mutation)."""
        self._soa_snapshot = None

    def range_search(self, query: Rect) -> list[int]:
        return self.range_search_many([query])[0]

    def distance_range(
        self, query: np.ndarray, radius: float, metric: Metric = L2
    ) -> list[tuple[int, float]]:
        return self.distance_range_many([query], radius, metric)[0]

    def knn(
        self,
        query: np.ndarray,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
    ) -> list[tuple[int, float]]:
        return self.knn_many([query], k, metric, approximation_factor)[0]


class EntryLeaf:
    """A data page holding raw ``(vector, oid)`` entries (R/SS/SR-trees).

    Identical storage footprint to the hybrid tree's data nodes — all
    structures pay the same leaf-level cost; only directory organisation
    differs, which is exactly the comparison the paper makes.
    """

    __slots__ = ("vectors", "oids", "count", "level")

    def __init__(self, dims: int, capacity: int):
        self.vectors = np.empty((capacity, dims), dtype=np.float32)
        self.oids = np.empty(capacity, dtype=np.uint32)
        self.count = 0
        self.level = 0

    @property
    def capacity(self) -> int:
        return self.vectors.shape[0]

    @property
    def is_full(self) -> bool:
        return self.count >= self.capacity

    def points(self) -> np.ndarray:
        return self.vectors[: self.count]

    def live_oids(self) -> np.ndarray:
        return self.oids[: self.count]

    def add(self, vector: np.ndarray, oid: int) -> None:
        if self.is_full:
            raise RuntimeError("leaf overflow; caller must split first")
        self.vectors[self.count] = vector
        self.oids[self.count] = oid
        self.count += 1

    def rect(self) -> Rect:
        if self.count == 0:
            raise ValueError("empty leaf has no bounding rect")
        return Rect.from_points(self.points())


def quadratic_partition(
    lows: np.ndarray, highs: np.ndarray, min_fill: float
) -> tuple[list[int], list[int]]:
    """Guttman's quadratic PickSeeds/PickNext bipartition over boxes.

    ``lows``/``highs`` are ``(n, d)`` corner arrays (points are zero-extent
    boxes).  PickSeeds maximizes the dead volume of the pair's cover;
    PickNext repeatedly places the entry with the strongest group
    preference.  Broadcasting keeps the O(n^2) seed scan and the O(n)
    per-pick enlargement scans at numpy speed.  Shared by the R-tree and the
    (R-tree-policy) SR-tree.
    """
    n = lows.shape[0]
    min_count = max(1, int(np.floor(n * min_fill)))
    volumes = np.prod(highs - lows, axis=1)
    pair_low = np.minimum(lows[:, None, :], lows[None, :, :])
    pair_high = np.maximum(highs[:, None, :], highs[None, :, :])
    dead = np.prod(pair_high - pair_low, axis=2) - volumes[:, None] - volumes[None, :]
    np.fill_diagonal(dead, -np.inf)
    seed_a, seed_b = np.unravel_index(int(np.argmax(dead)), dead.shape)

    group_a, group_b = [int(seed_a)], [int(seed_b)]
    low_a, high_a = lows[seed_a].copy(), highs[seed_a].copy()
    low_b, high_b = lows[seed_b].copy(), highs[seed_b].copy()
    remaining = np.array([i for i in range(n) if i not in (seed_a, seed_b)])
    while remaining.size:
        if len(group_a) + remaining.size == min_count:
            group_a.extend(int(i) for i in remaining)
            break
        if len(group_b) + remaining.size == min_count:
            group_b.extend(int(i) for i in remaining)
            break
        vol_a = float(np.prod(high_a - low_a))
        vol_b = float(np.prod(high_b - low_b))
        enl_a = (
            np.prod(
                np.maximum(high_a, highs[remaining]) - np.minimum(low_a, lows[remaining]),
                axis=1,
            )
            - vol_a
        )
        enl_b = (
            np.prod(
                np.maximum(high_b, highs[remaining]) - np.minimum(low_b, lows[remaining]),
                axis=1,
            )
            - vol_b
        )
        pick = int(np.argmax(np.abs(enl_a - enl_b)))
        i = int(remaining[pick])
        d_a, d_b = float(enl_a[pick]), float(enl_b[pick])
        remaining = np.delete(remaining, pick)
        if (d_a, vol_a, len(group_a)) <= (d_b, vol_b, len(group_b)):
            group_a.append(i)
            low_a = np.minimum(low_a, lows[i])
            high_a = np.maximum(high_a, highs[i])
        else:
            group_b.append(i)
            low_b = np.minimum(low_b, lows[i])
            high_b = np.maximum(high_b, highs[i])
    return group_a, group_b


def check_vector(vector: np.ndarray, dims: int) -> np.ndarray:
    """Validate and canonicalise an input vector (float32 precision)."""
    v = np.asarray(vector, dtype=np.float32).astype(np.float64)
    if v.shape != (dims,):
        raise ValueError(f"expected a {dims}-d vector, got shape {v.shape}")
    if not np.all(np.isfinite(v)):
        raise ValueError("vector must be finite")
    return v
