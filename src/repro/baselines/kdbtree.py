"""KDB-tree (Robinson 1981) — pure SP baseline with *forced clean* splits.

The KDB-tree splits every node with a single (dimension, position) cut and
requires the resulting regions to be strictly disjoint.  When an index node
splits, children straddling the cut must themselves be cut — the *downward
cascading splits* — which can create arbitrarily under-full (even empty)
pages: the KDB-tree offers no utilization guarantee (Table 1), and the paper
cites Greene's measurement of its poor performance beyond 4 dimensions.  The
hybrid tree exists precisely to relax this constraint.

Index nodes here keep explicit ``(child_id, region)`` entries for clarity;
the on-disk representation would be the (clean) kd-tree of cuts, so capacity
is charged via :func:`repro.storage.page.kdtree_node_capacity` like the other
1-d-split structures.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import EntryLeaf, KernelQueryMixin, check_vector
from repro.engine.kernel import RectBound
from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import PageLayout, data_node_capacity, kdtree_node_capacity
from repro.storage.pagestore import PageStore


class KDBIndexNode:
    """Index page: disjoint child regions exactly tiling the node region."""

    __slots__ = ("entries", "level")

    def __init__(self, level: int):
        self.entries: list[tuple[int, Rect]] = []
        self.level = level

    @property
    def fanout(self) -> int:
        return len(self.entries)


class KDBTree(KernelQueryMixin):
    """Dynamic KDB-tree with honest cascading splits."""

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        bounds: Rect | None = None,
        store: PageStore | None = None,
        stats: IOStats | None = None,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.layout = PageLayout(page_size=page_size)
        self.leaf_capacity = data_node_capacity(dims, self.layout)
        self.index_capacity = kdtree_node_capacity(dims, self.layout)
        self.bounds = bounds if bounds is not None else Rect.unit(dims)
        self.nm = NodeManager(store=store, stats=stats)
        self._root_id = self.nm.allocate()
        self.nm.put(self._root_id, EntryLeaf(dims, self.leaf_capacity), charge=False)
        self._height = 1
        self._count = 0

    @property
    def io(self) -> IOStats:
        return self.nm.stats

    @property
    def height(self) -> int:
        return self._height

    @property
    def root_id(self) -> int:
        return self._root_id

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        return self.nm.store.allocated_pages

    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "KDBTree":
        vectors = np.asarray(vectors, dtype=np.float32)
        tree = cls(vectors.shape[1], **kwargs)
        ids = oids if oids is not None else range(len(vectors))
        for v, oid in zip(vectors, ids):
            tree.insert(v, int(oid))
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int) -> None:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        if not self.bounds.contains_point(v):
            self.bounds = self.bounds.merge_point(v)
        path: list[tuple[int, KDBIndexNode, int]] = []
        node_id, region = self._root_id, self.bounds
        node = self.nm.get(node_id)
        while isinstance(node, KDBIndexNode):
            idx = self._containing_entry(node, v)
            path.append((node_id, node, idx))
            node_id, region = node.entries[idx]
            node = self.nm.get(node_id)
        if not node.is_full:
            node.add(v, oid)
            self.nm.put(node_id, node)
        else:
            self._split_leaf(path, node_id, node, region, v, oid)
        self._count += 1

    @staticmethod
    def _containing_entry(node: KDBIndexNode, point: np.ndarray) -> int:
        """Disjoint regions: pick the first closed region containing the
        point (shared boundaries may match two; either is correct)."""
        for i, (_, rect) in enumerate(node.entries):
            if rect.contains_point(point):
                return i
        raise RuntimeError("KDB regions failed to cover the point")

    def _split_leaf(self, path, node_id, node, region, vector, oid) -> None:
        points = np.vstack([node.points(), np.asarray(vector, dtype=np.float32)])
        oids = np.append(node.live_oids(), np.uint32(oid))
        dim, pos = self._choose_cut_points(points, region)
        left_id, right_id = self._materialise_leaf_cut(node_id, points, oids, dim, pos)
        self._propagate(path, node_id, left_id, right_id, region, dim, pos, level=1)

    def _choose_cut_points(self, points: np.ndarray, region: Rect) -> tuple[int, float]:
        """Max-extent dimension, cut between the two middle distinct values
        (Robinson's point-page split)."""
        extents = points.max(axis=0) - points.min(axis=0)
        for dim in np.argsort(-extents, kind="stable"):
            dim = int(dim)
            values = np.unique(points[:, dim])
            if len(values) < 2:
                continue
            mid = len(values) // 2
            lo = values[mid - 1] if mid > 0 else values[0]
            hi = values[mid] if mid < len(values) else values[-1]
            return dim, float(np.float32((float(lo) + float(hi)) / 2.0))
        # All points identical: cut at the value (right side gets nothing).
        return 0, float(points[0, 0])

    def _materialise_leaf_cut(self, node_id, points, oids, dim, pos) -> tuple[int, int]:
        left = EntryLeaf(self.dims, self.leaf_capacity)
        right = EntryLeaf(self.dims, self.leaf_capacity)
        for p, o in zip(points, oids):
            (left if p[dim] <= pos else right).add(p, int(o))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        return node_id, right_id

    def _propagate(self, path, old_id, left_id, right_id, region, dim, pos, level) -> None:
        left_region = region.clip_below(dim, pos)
        right_region = region.clip_above(dim, pos)
        if not path:
            root = KDBIndexNode(level)
            root.entries = [(left_id, left_region), (right_id, right_region)]
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            return
        parent_id, parent, entry_idx = path.pop()
        parent.entries[entry_idx] = (left_id, left_region)
        parent.entries.insert(entry_idx + 1, (right_id, right_region))
        self.nm.put(parent_id, parent)
        if parent.fanout > self.index_capacity:
            self._split_index(path, parent_id, parent, self._region_of(path, parent_id))

    def _region_of(self, path, node_id) -> Rect:
        """Region of a node given the remaining ancestor path."""
        if not path:
            return self.bounds
        parent = path[-1][1]
        for child_id, rect in parent.entries:
            if child_id == node_id:
                return rect
        raise KeyError(node_id)

    def _split_index(self, path, node_id, node, region) -> None:
        """Split an index page with a clean cut, cascading into straddlers.

        This is the KDB-tree's defining (and costly) operation: children
        crossing the cut are themselves cut recursively, all the way down.
        """
        dim = int(np.argmax(region.extents))
        # Cut at the median of child boundaries to balance the halves.
        boundaries = sorted(
            {float(r.low[dim]) for _, r in node.entries}
            | {float(r.high[dim]) for _, r in node.entries}
        )
        interior = [b for b in boundaries if region.low[dim] < b < region.high[dim]]
        pos = (
            interior[len(interior) // 2]
            if interior
            else float((region.low[dim] + region.high[dim]) / 2.0)
        )
        left = KDBIndexNode(node.level)
        right = KDBIndexNode(node.level)
        for child_id, rect in node.entries:
            if rect.high[dim] <= pos:
                left.entries.append((child_id, rect))
            elif rect.low[dim] >= pos:
                right.entries.append((child_id, rect))
            else:  # straddler: cascade
                lid, rid = self._cascade_cut(child_id, rect, dim, pos)
                left.entries.append((lid, rect.clip_below(dim, pos)))
                right.entries.append((rid, rect.clip_above(dim, pos)))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate(
            path, node_id, node_id, right_id, region, dim, pos, level=node.level + 1
        )

    def _cascade_cut(self, node_id: int, region: Rect, dim: int, pos: float) -> tuple[int, int]:
        """Cut an arbitrary subtree at ``x_dim = pos``; may create empty or
        under-full pages (the utilization loss the paper charges KDB with)."""
        node = self.nm.get(node_id, charge=False)
        if isinstance(node, EntryLeaf):
            points = node.points().copy()
            oids = node.live_oids().copy()
            return self._materialise_leaf_cut(node_id, points, oids, dim, pos)
        left = KDBIndexNode(node.level)
        right = KDBIndexNode(node.level)
        for child_id, rect in node.entries:
            if rect.high[dim] <= pos:
                left.entries.append((child_id, rect))
            elif rect.low[dim] >= pos:
                right.entries.append((child_id, rect))
            else:
                lid, rid = self._cascade_cut(child_id, rect, dim, pos)
                left.entries.append((lid, rect.clip_below(dim, pos)))
                right.entries.append((rid, rect.clip_above(dim, pos)))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        return node_id, right_id

    # ------------------------------------------------------------------
    # Queries: the traversal kernel (KernelQueryMixin) over the protocol
    # ------------------------------------------------------------------
    def point_search(self, vector: np.ndarray) -> list[int]:
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def trav_root(self):
        return self._root_id, None

    def trav_node(self, ref: int, charge: bool = True):
        return self.nm.get(ref, charge=charge)

    def trav_is_leaf(self, node) -> bool:
        return isinstance(node, EntryLeaf)

    def trav_leaf_points(self, node):
        return node.points(), node.live_oids()

    def trav_children(self, node, ctx):
        return [(child_id, None, RectBound(rect)) for child_id, rect in node.entries]

    # ------------------------------------------------------------------
    # Structural measurements (Table 1 evidence)
    # ------------------------------------------------------------------
    def utilization_profile(self) -> list[float]:
        """Fill factors of every data page — exhibits the empty/under-full
        pages cascading splits create."""
        fills: list[float] = []

        def visit(node_id: int) -> None:
            node = self.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                fills.append(node.count / node.capacity)
                return
            for child_id, _ in node.entries:
                visit(child_id)

        visit(self._root_id)
        return fills
