"""VA-file (Weber, Schek & Blott, VLDB 1998) — the quantization scan.

The paper's Section 4 normalizes everything against the linear scan because
Weber et al. showed scans dominate partitioning indexes at high
dimensionality.  The VA-file is their constructive version of that argument:
keep the data in a plain heap file, plus a *vector approximation* file with
``bits`` per dimension (a grid cell id per vector).  A query sequentially
scans the small approximation file, prunes cells whose lower bound already
fails, and fetches only the surviving candidates' full vectors with random
reads.

Included as an extension competitor (not part of the paper's figures):
it shows where the hybrid tree's advantage comes from — the VA-file still
reads *every* approximation per query, so its cost floor is a fixed fraction
of the scan, while a tree can be sublinear.

I/O model: approximation pages are sequential reads (charged at 1/10 like
any scan), candidate verifications are random reads of the owning heap page
(de-duplicated per query).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import BatchQueryMixin, check_vector
from repro.distances import L2, LpMetric, Metric
from repro.geometry.rect import Rect
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.page import PAGE_HEADER_SIZE, PageLayout, data_node_capacity


class VAFile(BatchQueryMixin):
    """Vector-approximation file over a heap of ``float32`` vectors."""

    def __init__(
        self,
        dims: int,
        *,
        bits: int = 6,
        page_size: int = 4096,
        bounds: Rect | None = None,
        stats: IOStats | None = None,
        initial_capacity: int = 1024,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        self.dims = dims
        self.bits = bits
        self.layout = PageLayout(page_size=page_size)
        self.tuples_per_page = data_node_capacity(dims, self.layout)
        self.bounds = bounds if bounds is not None else Rect.unit(dims)
        self.io = stats if stats is not None else IOStats()
        self._vectors = np.empty((initial_capacity, dims), dtype=np.float32)
        self._oids = np.empty(initial_capacity, dtype=np.uint32)
        self._cells = np.empty((initial_capacity, dims), dtype=np.uint16)
        self._count = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "VAFile":
        vectors = np.asarray(vectors, dtype=np.float32)
        va = cls(
            vectors.shape[1], initial_capacity=max(len(vectors), 1), **kwargs
        )
        for v, oid in zip(
            vectors, oids if oids is not None else range(len(vectors))
        ):
            va.insert(v, int(oid))
        return va

    def insert(self, vector: np.ndarray, oid: int) -> None:
        v = check_vector(vector, self.dims)
        if not self.bounds.contains_point(v):
            self.bounds = self.bounds.merge_point(v)
            self._requantize()
        if self._count == len(self._vectors):
            n = 2 * len(self._vectors)
            self._vectors = np.resize(self._vectors, (n, self.dims))
            self._oids = np.resize(self._oids, n)
            self._cells = np.resize(self._cells, (n, self.dims))
        self._vectors[self._count] = v
        self._oids[self._count] = oid
        self._cells[self._count] = self._quantize(v[None, :])[0]
        self._count += 1

    def _quantize(self, rows: np.ndarray) -> np.ndarray:
        cells = float(1 << self.bits)
        extent = np.where(
            self.bounds.extents > 0, self.bounds.extents, 1.0
        )
        grid = np.floor((rows - self.bounds.low) / extent * cells)
        return np.clip(grid, 0, cells - 1).astype(np.uint16)

    def _requantize(self) -> None:
        if self._count:
            self._cells[: self._count] = self._quantize(
                self._vectors[: self._count].astype(np.float64)
            )

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        """Heap pages + approximation pages."""
        return self.heap_pages() + self.approximation_pages()

    def heap_pages(self) -> int:
        return -(-self._count // self.tuples_per_page) if self._count else 0

    def approximation_pages(self) -> int:
        if not self._count:
            return 0
        entry_bits = self.dims * self.bits + 32  # cells + oid back-pointer
        per_page = (self.layout.page_size - PAGE_HEADER_SIZE) * 8 // entry_bits
        return -(-self._count // per_page)

    # ------------------------------------------------------------------
    # Cell geometry
    # ------------------------------------------------------------------
    def _cell_rects(self) -> tuple[np.ndarray, np.ndarray]:
        """Low/high corners of every stored vector's grid cell."""
        cells = float(1 << self.bits)
        extent = np.where(self.bounds.extents > 0, self.bounds.extents, 1.0)
        grid = self._cells[: self._count].astype(np.float64)
        low = self.bounds.low + grid / cells * extent
        high = self.bounds.low + (grid + 1.0) / cells * extent
        return low, high

    def _charge_approximation_scan(self) -> None:
        self.io.record(AccessKind.SEQUENTIAL_READ, self.approximation_pages())

    def _charge_candidates(self, indices: np.ndarray) -> None:
        """One random heap-page read per distinct owning page."""
        pages = np.unique(indices // self.tuples_per_page)
        self.io.record(AccessKind.RANDOM_READ, len(pages))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, query: Rect) -> list[int]:
        """Box query: scan approximations, verify cell-overlapping vectors."""
        if self._count == 0:
            return []
        self._charge_approximation_scan()
        low, high = self._cell_rects()
        candidate_mask = np.all(
            (low <= query.high) & (high >= query.low), axis=1
        )
        candidates = np.flatnonzero(candidate_mask)
        if candidates.size == 0:
            return []
        self._charge_candidates(candidates)
        vectors = self._vectors[candidates].astype(np.float64)
        inside = np.all((vectors >= query.low) & (vectors <= query.high), axis=1)
        return [int(self._oids[i]) for i in candidates[inside]]

    def point_search(self, vector: np.ndarray) -> list[int]:
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def _cell_lower_bounds(self, q: np.ndarray, metric: Metric) -> np.ndarray:
        """Per-vector lower bound: metric distance to the vector's cell."""
        low, high = self._cell_rects()
        clamped = np.clip(q, low, high)
        if isinstance(metric, LpMetric):
            diff = np.abs(clamped - q)
            if np.isinf(metric.p):
                return diff.max(axis=1)
            if metric.p == 1.0:
                return diff.sum(axis=1)
            if metric.p == 2.0:
                return np.sqrt((diff * diff).sum(axis=1))
            return (diff ** metric.p).sum(axis=1) ** (1.0 / metric.p)
        return np.array(
            [metric.mindist_rect(q, lo, hi) for lo, hi in zip(low, high)]
        )

    def distance_range(
        self, query: np.ndarray, radius: float, metric: Metric = L2
    ) -> list[tuple[int, float]]:
        q = check_vector(query, self.dims)
        if self._count == 0:
            return []
        self._charge_approximation_scan()
        bounds = self._cell_lower_bounds(q, metric)
        candidates = np.flatnonzero(bounds <= radius)
        if candidates.size == 0:
            return []
        self._charge_candidates(candidates)
        dists = metric.distance_batch(
            self._vectors[candidates].astype(np.float64), q
        )
        keep = dists <= radius
        return [
            (int(self._oids[i]), float(d))
            for i, d in zip(candidates[keep], dists[keep])
        ]

    def knn(
        self, query: np.ndarray, k: int, metric: Metric = L2
    ) -> list[tuple[int, float]]:
        """Two-phase VA-SSA search: visit candidates in lower-bound order,
        stop when the next bound exceeds the current k-th distance."""
        q = check_vector(query, self.dims)
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._count == 0:
            return []
        self._charge_approximation_scan()
        bounds = self._cell_lower_bounds(q, metric)
        order = np.argsort(bounds, kind="stable")
        kth = np.inf
        # Heap keyed (-dist, -oid): ties on distance evict the largest oid
        # first, so the result set is the deterministic (dist, oid) prefix.
        best: list[tuple[float, int]] = []
        verified: list[int] = []
        import heapq

        for idx in order:
            if len(best) >= k and bounds[idx] > kth:
                break
            dist = float(
                metric.distance(self._vectors[idx].astype(np.float64), q)
            )
            verified.append(int(idx))
            oid = int(self._oids[idx])
            if len(best) < k:
                heapq.heappush(best, (-dist, -oid))
            elif (dist, oid) < (-best[0][0], -best[0][1]):
                heapq.heapreplace(best, (-dist, -oid))
            kth = -best[0][0] if len(best) >= k else np.inf
        self._charge_candidates(np.array(verified))
        return sorted(
            ((-noid, -nd) for nd, noid in best), key=lambda t: (t[1], t[0])
        )
