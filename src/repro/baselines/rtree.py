"""R-tree (Guttman 1984) with the quadratic split — DP-based baseline.

Every entry of an index node stores a full k-dimensional bounding box, so
fanout is ``usable_bytes / (8k + 4)`` and collapses as dimensionality grows —
the structural weakness (Table 1 of the paper) that makes BR-based trees
uncompetitive in high-dimensional feature spaces.  The paper's authors built
their SR-tree comparator by modifying an R-tree implementation; ours plays
the same substrate role (see :mod:`repro.baselines.srtree`).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import (
    EntryLeaf,
    KernelQueryMixin,
    check_vector,
    quadratic_partition,
)
from repro.engine.kernel import RectBound
from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import PageLayout, data_node_capacity, rtree_node_capacity
from repro.storage.pagestore import PageStore


class RIndexNode:
    """Index page: an array of ``(child_id, bounding box)`` entries."""

    __slots__ = ("entries", "level")

    def __init__(self, level: int):
        self.entries: list[tuple[int, Rect]] = []
        self.level = level

    @property
    def fanout(self) -> int:
        return len(self.entries)

    def entry_index(self, child_id: int) -> int:
        for i, (cid, _) in enumerate(self.entries):
            if cid == child_id:
                return i
        raise KeyError(child_id)


class RTree(KernelQueryMixin):
    """Dynamic R-tree over a ``dims``-dimensional feature space."""

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        min_fill: float = 0.4,
        store: PageStore | None = None,
        stats: IOStats | None = None,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.dims = dims
        self.layout = PageLayout(page_size=page_size)
        self.leaf_capacity = data_node_capacity(dims, self.layout)
        self.index_capacity = rtree_node_capacity(dims, self.layout)
        self.min_fill = min_fill
        self.nm = NodeManager(store=store, stats=stats)
        self._root_id = self.nm.allocate()
        self.nm.put(self._root_id, EntryLeaf(dims, self.leaf_capacity), charge=False)
        self._height = 1
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def io(self) -> IOStats:
        return self.nm.stats

    @property
    def height(self) -> int:
        return self._height

    @property
    def root_id(self) -> int:
        return self._root_id

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        return self.nm.store.allocated_pages

    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "RTree":
        """Build by repeated insertion (the construction the paper timed)."""
        vectors = np.asarray(vectors, dtype=np.float32)
        tree = cls(vectors.shape[1], **kwargs)
        ids = oids if oids is not None else range(len(vectors))
        for v, oid in zip(vectors, ids):
            tree.insert(v, int(oid))
        return tree

    # ------------------------------------------------------------------
    # Insertion (Guttman's ChooseLeaf / AdjustTree / quadratic SplitNode)
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int) -> None:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        path: list[tuple[int, RIndexNode, int]] = []  # (node_id, node, entry idx)
        node_id = self._root_id
        node = self.nm.get(node_id)
        while isinstance(node, RIndexNode):
            idx = self._choose_entry(node, v)
            child_id, rect = node.entries[idx]
            node.entries[idx] = (child_id, rect.merge_point(v))
            self.nm.put(node_id, node)
            path.append((node_id, node, idx))
            node_id = child_id
            node = self.nm.get(node_id)
        if not node.is_full:
            node.add(v, oid)
            self.nm.put(node_id, node)
        else:
            self._split_leaf(path, node_id, node, v, oid)
        self._count += 1

    def _choose_entry(self, node: RIndexNode, point: np.ndarray) -> int:
        """Least-enlargement entry, ties by volume (vectorized)."""
        lows = np.array([r.low for _, r in node.entries])
        highs = np.array([r.high for _, r in node.entries])
        volumes = np.prod(highs - lows, axis=1)
        merged = np.prod(np.maximum(highs, point) - np.minimum(lows, point), axis=1)
        enlargement = merged - volumes
        candidates = np.flatnonzero(enlargement <= enlargement.min() + 1e-18)
        return int(candidates[np.argmin(volumes[candidates])])

    def _split_leaf(
        self,
        path: list[tuple[int, RIndexNode, int]],
        node_id: int,
        node: EntryLeaf,
        vector: np.ndarray,
        oid: int,
    ) -> None:
        points = np.vstack([node.points(), np.asarray(vector, dtype=np.float32)])
        oids = np.append(node.live_oids(), np.uint32(oid))
        rects = [Rect(p.astype(np.float64), p.astype(np.float64)) for p in points]
        group_a, group_b = self._quadratic_partition(rects)
        left = EntryLeaf(self.dims, self.leaf_capacity)
        right = EntryLeaf(self.dims, self.leaf_capacity)
        for i in group_a:
            left.add(points[i], int(oids[i]))
        for i in group_b:
            right.add(points[i], int(oids[i]))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate_split(path, node_id, left.rect(), right_id, right.rect(), level=1)

    def _split_index(
        self, path: list[tuple[int, RIndexNode, int]], node_id: int, node: RIndexNode
    ) -> None:
        rects = [rect for _, rect in node.entries]
        group_a, group_b = self._quadratic_partition(rects)
        left = RIndexNode(node.level)
        right = RIndexNode(node.level)
        left.entries = [node.entries[i] for i in group_a]
        right.entries = [node.entries[i] for i in group_b]
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self._propagate_split(
            path,
            node_id,
            Rect.merge_all([r for _, r in left.entries]),
            right_id,
            Rect.merge_all([r for _, r in right.entries]),
            level=node.level + 1,
        )

    def _propagate_split(
        self,
        path: list[tuple[int, RIndexNode, int]],
        old_id: int,
        old_rect: Rect,
        new_id: int,
        new_rect: Rect,
        level: int,
    ) -> None:
        if not path:
            root = RIndexNode(level)
            root.entries = [(old_id, old_rect), (new_id, new_rect)]
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            return
        parent_id, parent, entry_idx = path.pop()
        parent.entries[entry_idx] = (old_id, old_rect)
        parent.entries.append((new_id, new_rect))
        self.nm.put(parent_id, parent)
        if parent.fanout > self.index_capacity:
            self._split_index(path, parent_id, parent)

    def _quadratic_partition(self, rects: list[Rect]) -> tuple[list[int], list[int]]:
        """Guttman's quadratic bipartition (see
        :func:`repro.baselines.common.quadratic_partition`)."""
        lows = np.array([r.low for r in rects])
        highs = np.array([r.high for r in rects])
        return quadratic_partition(lows, highs, self.min_fill)

    # ------------------------------------------------------------------
    # Deletion (FindLeaf / CondenseTree)
    # ------------------------------------------------------------------
    def delete(self, vector: np.ndarray, oid: int) -> bool:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        target = np.asarray(v, dtype=np.float32)
        found = self._find_leaf(self._root_id, self.bounds_of_root(), v, target, oid, [])
        if found is None:
            return False
        path, node_id, node, entry_idx = found
        last = node.count - 1
        if entry_idx != last:
            node.vectors[entry_idx] = node.vectors[last]
            node.oids[entry_idx] = node.oids[last]
        node.count = last
        self.nm.put(node_id, node)
        self._count -= 1
        min_entries = max(1, int(np.floor(self.min_fill * self.leaf_capacity)))
        if node.count >= min_entries or not path:
            self._tighten_path(path, node_id, node)
            return True
        survivors = [(node.points()[i].copy(), int(node.live_oids()[i])) for i in range(node.count)]
        self._remove_entry(path, node_id)
        self._count -= len(survivors)
        for point, point_oid in survivors:
            self.insert(point, point_oid)
        return True

    def bounds_of_root(self) -> Rect:
        root = self.nm.get(self._root_id, charge=False)
        if isinstance(root, RIndexNode):
            return Rect.merge_all([r for _, r in root.entries])
        if root.count:
            return root.rect()
        return Rect.unit(self.dims)

    def _find_leaf(self, node_id, region, v, target, oid, path):
        node = self.nm.get(node_id)
        if isinstance(node, EntryLeaf):
            oid_hits = np.flatnonzero(node.live_oids() == oid)
            for idx in oid_hits:
                if np.array_equal(node.vectors[idx], target):
                    return path, node_id, node, int(idx)
            return None
        for i, (child_id, rect) in enumerate(node.entries):
            if rect.contains_point(v):
                found = self._find_leaf(
                    child_id, rect, v, target, oid, path + [(node_id, node, i)]
                )
                if found is not None:
                    return found
        return None

    def _tighten_path(self, path, node_id, node) -> None:
        """Shrink ancestor rects after a removal."""
        rect = node.rect() if isinstance(node, EntryLeaf) and node.count else None
        for parent_id, parent, entry_idx in reversed(path):
            if rect is not None:
                parent.entries[entry_idx] = (node_id, rect)
                self.nm.put(parent_id, parent)
            rect = Rect.merge_all([r for _, r in parent.entries])
            node_id = parent_id

    def _remove_entry(self, path, child_id) -> None:
        parent_id, parent, _ = path[-1]
        parent.entries = [(cid, r) for cid, r in parent.entries if cid != child_id]
        self.nm.free(child_id)
        self.nm.put(parent_id, parent)
        if parent_id == self._root_id:
            if parent.fanout == 1 and parent.level >= 1:
                only_id = parent.entries[0][0]
                self.nm.free(parent_id)
                self._root_id = only_id
                self._height -= 1
            return
        min_children = max(2, int(np.floor(self.min_fill * self.index_capacity)))
        if parent.fanout >= min_children:
            self._tighten_path(path[:-1], parent_id, parent)
            return
        orphan_entries = list(parent.entries)
        orphan_level = parent.level
        self._remove_entry(path[:-1], parent_id)
        for orphan_id, orphan_rect in orphan_entries:
            self._reinsert_subtree(orphan_id, orphan_rect, orphan_level - 1)

    def _reinsert_subtree(self, subtree_id: int, rect: Rect, level: int) -> None:
        path: list[tuple[int, RIndexNode, int]] = []
        node_id = self._root_id
        node = self.nm.get(node_id)
        while isinstance(node, RIndexNode) and node.level > level + 1:
            best, best_key = 0, (np.inf, np.inf)
            for i, (_, r) in enumerate(node.entries):
                key = (r.enlargement_rect(rect), r.volume())
                if key < best_key:
                    best, best_key = i, key
            child_id, r = node.entries[best]
            node.entries[best] = (child_id, r.merge(rect))
            self.nm.put(node_id, node)
            path.append((node_id, node, best))
            node_id = child_id
            node = self.nm.get(node_id)
        if not isinstance(node, RIndexNode):
            raise RuntimeError("reinsert descended past the target level")
        node.entries.append((subtree_id, rect))
        self.nm.put(node_id, node)
        if node.fanout > self.index_capacity:
            self._split_index(path, node_id, node)

    # ------------------------------------------------------------------
    # Queries: the traversal kernel (KernelQueryMixin) over the protocol
    # ------------------------------------------------------------------
    def point_search(self, vector: np.ndarray) -> list[int]:
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def trav_root(self):
        return self._root_id, None

    def trav_node(self, ref: int, charge: bool = True):
        return self.nm.get(ref, charge=charge)

    def trav_is_leaf(self, node) -> bool:
        return isinstance(node, EntryLeaf)

    def trav_leaf_points(self, node):
        return node.points(), node.live_oids()

    def trav_children(self, node, ctx):
        return [(child_id, None, RectBound(rect)) for child_id, rect in node.entries]
