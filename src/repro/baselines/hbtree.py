"""hB-tree (Lomet & Salzberg, TODS 1990) — the paper's SP competitor.

The holey-brick tree splits nodes by *extracting a subtree* of the intranode
kd-tree whose share of the node's children lies in [1/3, 2/3] — a balance
guarantee no single hyperplane can give.  The extracted region is a
rectangle; what remains is a "holey brick".  The split is *posted* to the
parent as the kd path leading to the extraction, so the remaining host child
appears once per path step in the parent's kd-tree: this is the **storage
redundancy** of Table 1 (an hB split uses up to d <= k dimensions, d
hyperplanes and d kd-tree nodes), and it consumes real parent page budget,
reducing effective fanout exactly the way the published structure pays for
its clean, non-overlapping regions.

Faithfully modelled consequences:

- splits never overlap and never cascade downward (Table 1: no overlap,
  guaranteed utilisation, redundancy present);
- a node may be referenced by several kd leaves of its parent; queries
  de-duplicate page touches, postings are grafted at *every* fragment.

One deliberate simplification: extractions are restricted to
*reference-closed* subtrees (a child's references never split across the two
sides), so a node always has exactly one parent.  The original hB-tree
permits multi-parent nodes; keeping the node graph a tree preserves the
structure's cost profile (clean regions, redundancy, dimension-independent
fanout) while avoiding the notoriously error-prone multi-parent posting
protocol.  Deletion performs plain entry removal without node merging, which
the paper's experiments never exercise.

The paper's footnote 2 excludes the hB-tree from distance-query experiments;
we nevertheless provide ``distance_range``/``knn`` (kd-region lower bounds
remain valid) so users can measure what the paper chose not to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.baselines.common import EntryLeaf, KernelQueryMixin, check_vector
from repro.core import kdnodes
from repro.core.kdnodes import KDInternal, KDLeaf, KDNode
from repro.core.splits import choose_data_split
from repro.distances import Metric, mindist_rect_many
from repro.engine.kernel import ChildBound
from repro.geometry.rect import Rect
from repro.storage.iostats import IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import PageLayout, data_node_capacity, kdtree_node_capacity
from repro.storage.pagestore import PageStore


@dataclass(frozen=True)
class _Cut:
    """One step of an extraction path: the split plane and which side the
    extracted region continues on."""

    dim: int
    pos: float
    extracted_right: bool


class HBIndexNode:
    """Index page: a *clean* intranode kd-tree (``lsp == rsp`` everywhere).

    Distinct leaves may reference the same child (path-posting redundancy),
    so ``kd_size`` (what the page budget charges) and ``fanout`` (distinct
    children) differ.
    """

    __slots__ = ("kd_root", "level")

    def __init__(self, kd_root: KDNode, level: int):
        self.kd_root = kd_root
        self.level = level

    @property
    def kd_size(self) -> int:
        """Leaves including duplicates — the page-budget measure."""
        return kdnodes.count_leaves(self.kd_root)

    @property
    def fanout(self) -> int:
        return len(set(kdnodes.child_ids(self.kd_root)))


class _HBBound(ChildBound):
    """Kernel pruning bound for one kd-leaf fragment of an hB index node.

    Box queries test the *path-constraint rect* (±inf outside the kd path's
    clipped dims): the scalar walk never tested the query against the node's
    own region, only against the kd split planes, and a query box outside
    the tree bounds must still traverse.  Distance queries use the true
    clipped region, whose mindist subsumes every internal-edge test.
    """

    __slots__ = ("path_rect", "region")

    def __init__(self, path_rect: Rect, region: Rect):
        self.path_rect = path_rect
        self.region = region

    def box_mask(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        return self.path_rect.intersects_boxes_mask(lows, highs)

    def mindist(self, qs: np.ndarray, metric: Metric) -> np.ndarray:
        return mindist_rect_many(metric, qs, self.region.low, self.region.high)


class HBTree(KernelQueryMixin):
    """Dynamic hB-tree over a ``dims``-dimensional feature space."""

    # Fragments share pages: the kernel charges each page once per batch
    # and scans each (leaf, query) pair once, like the old per-query
    # ``charged``/``scanned`` sets.
    trav_dedup = True

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        bounds: Rect | None = None,
        store: PageStore | None = None,
        stats: IOStats | None = None,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self.layout = PageLayout(page_size=page_size)
        self.leaf_capacity = data_node_capacity(dims, self.layout)
        self.index_capacity = kdtree_node_capacity(dims, self.layout)
        self.bounds = bounds if bounds is not None else Rect.unit(dims)
        self.nm = NodeManager(store=store, stats=stats)
        self._root_id = self.nm.allocate()
        self.nm.put(self._root_id, EntryLeaf(dims, self.leaf_capacity), charge=False)
        self._height = 1
        self._count = 0

    @property
    def io(self) -> IOStats:
        return self.nm.stats

    @property
    def height(self) -> int:
        return self._height

    @property
    def root_id(self) -> int:
        return self._root_id

    def __len__(self) -> int:
        return self._count

    def pages(self) -> int:
        return self.nm.store.allocated_pages

    @classmethod
    def from_points(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "HBTree":
        vectors = np.asarray(vectors, dtype=np.float32)
        tree = cls(vectors.shape[1], **kwargs)
        ids = oids if oids is not None else range(len(vectors))
        for v, oid in zip(vectors, ids):
            tree.insert(v, int(oid))
        return tree

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int) -> None:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        if not self.bounds.contains_point(v):
            self.bounds = self.bounds.merge_point(v)
        path: list[tuple[int, HBIndexNode, Rect]] = []
        node_id, region = self._root_id, self.bounds
        node = self.nm.get(node_id)
        while isinstance(node, HBIndexNode):
            path.append((node_id, node, region))
            node_id, region = self._descend(node.kd_root, region, v)
            node = self.nm.get(node_id)
        if not node.is_full:
            node.add(v, oid)
            self.nm.put(node_id, node)
        else:
            self._split_leaf(path, node_id, node, v, oid)
        self._count += 1

    @staticmethod
    def _descend(kd: KDNode, region: Rect, point: np.ndarray) -> tuple[int, Rect]:
        """Deterministic routing: clean splits tile the region exactly."""
        while isinstance(kd, KDInternal):
            if point[kd.dim] <= kd.lsp:
                region = region.clip_below(kd.dim, kd.lsp)
                kd = kd.left
            else:
                region = region.clip_above(kd.dim, kd.rsp)
                kd = kd.right
        return kd.child_id, region

    # ------------------------------------------------------------------
    # Splitting and posting
    # ------------------------------------------------------------------
    def _split_leaf(self, path, node_id, node, vector, oid) -> None:
        points = np.vstack([node.points(), np.asarray(vector, dtype=np.float32)])
        oids = np.append(node.live_oids(), np.uint32(oid))
        split = choose_data_split(
            points.astype(np.float64), min_fill=1.0 / 3.0, position_rule="median"
        )
        left = EntryLeaf(self.dims, self.leaf_capacity)
        right = EntryLeaf(self.dims, self.leaf_capacity)
        for i in split.left_indices:
            left.add(points[i], int(oids[i]))
        for i in split.right_indices:
            right.add(points[i], int(oids[i]))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        pos = float(np.float32(split.position))
        cuts = [_Cut(split.dim, pos, extracted_right=True)]
        self._post(path, host_id=node_id, new_id=right_id, cuts=cuts)

    def _post(self, path, host_id: int, new_id: int, cuts: list[_Cut]) -> None:
        """Install a posting in the parent: at *every* leaf referencing the
        host, graft the (region-simplified) extraction path so points on the
        extracted side now route to ``new_id``."""
        if not path:
            kd = _graft(self.bounds, cuts, host_id, new_id)
            if isinstance(kd, KDLeaf):
                # Degenerate graft (extraction outside the root bounds) —
                # cannot happen for a real split, guard anyway.
                kd = KDInternal(cuts[0].dim, cuts[0].pos, cuts[0].pos,
                                KDLeaf(host_id), KDLeaf(new_id))
            root = HBIndexNode(kd, level=self._height)
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            return
        parent_id, parent, parent_region = path.pop()
        parent.kd_root = _graft_everywhere(
            parent.kd_root, parent_region, host_id, new_id, cuts
        )
        self.nm.put(parent_id, parent)
        if parent.kd_size > self.index_capacity:
            self._split_index(path, parent_id, parent)

    def _split_index(self, path, node_id: int, node: HBIndexNode) -> None:
        """Extract a reference-closed, [1/3, 2/3]-balanced kd subtree into a
        sibling node and post the extraction path upward."""
        chosen = _choose_extraction(node.kd_root)
        if chosen is None:
            raise RuntimeError(
                "hB-tree index node admits no reference-closed extraction; "
                "this configuration is not reachable from an empty tree"
            )
        cuts, extracted = chosen
        new_node = HBIndexNode(extracted, node.level)
        new_id = self.nm.allocate()
        node.kd_root = _remove_subtree(node.kd_root, extracted)
        self.nm.put(node_id, node)
        self.nm.put(new_id, new_node)
        self._post(path, host_id=node_id, new_id=new_id, cuts=cuts)

    # ------------------------------------------------------------------
    # Deletion (simple removal; see module docstring)
    # ------------------------------------------------------------------
    def delete(self, vector: np.ndarray, oid: int) -> bool:
        self.invalidate_snapshot()
        v = check_vector(vector, self.dims)
        target = np.asarray(v, dtype=np.float32)
        node_id, region = self._root_id, self.bounds
        node = self.nm.get(node_id)
        while isinstance(node, HBIndexNode):
            node_id, region = self._descend(node.kd_root, region, v)
            node = self.nm.get(node_id)
        hits = np.flatnonzero(node.live_oids() == oid)
        for idx in hits:
            if np.array_equal(node.vectors[idx], target):
                last = node.count - 1
                if idx != last:
                    node.vectors[idx] = node.vectors[last]
                    node.oids[idx] = node.oids[last]
                node.count = last
                self.nm.put(node_id, node)
                self._count -= 1
                return True
        return False

    # ------------------------------------------------------------------
    # Queries: the traversal kernel (KernelQueryMixin) over the protocol,
    # with page touches de-duplicated (fragments share pages)
    # ------------------------------------------------------------------
    def point_search(self, vector: np.ndarray) -> list[int]:
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def trav_root(self):
        return self._root_id, self.bounds

    def trav_node(self, ref: int, charge: bool = True):
        return self.nm.get(ref, charge=charge)

    def trav_is_leaf(self, node) -> bool:
        return isinstance(node, EntryLeaf)

    def trav_leaf_points(self, node):
        return node.points(), node.live_oids()

    def trav_children(self, node, region):
        out = []
        path0 = Rect(np.full(self.dims, -np.inf), np.full(self.dims, np.inf))

        def walk(kd: KDNode, reg: Rect, path: Rect) -> None:
            if isinstance(kd, KDLeaf):
                out.append((kd.child_id, reg, _HBBound(path, reg)))
                return
            walk(
                kd.left,
                reg.clip_below(kd.dim, kd.lsp),
                path.clip_below(kd.dim, kd.lsp),
            )
            walk(
                kd.right,
                reg.clip_above(kd.dim, kd.rsp),
                path.clip_above(kd.dim, kd.rsp),
            )

        walk(node.kd_root, region, path0)
        return out

    # ------------------------------------------------------------------
    # Structural measurements
    # ------------------------------------------------------------------
    def redundancy_ratio(self) -> float:
        """Mean (kd leaves) / (distinct children) over index nodes — 1.0
        means no posting redundancy; the hB-tree exceeds it by design."""
        ratios: list[float] = []
        seen: set[int] = set()

        def visit(node_id: int) -> None:
            if node_id in seen:
                return
            seen.add(node_id)
            node = self.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                return
            ratios.append(node.kd_size / node.fanout)
            for child_id in kdnodes.child_ids(node.kd_root):
                visit(child_id)

        visit(self._root_id)
        return float(np.mean(ratios)) if ratios else 1.0

    def utilization_profile(self) -> list[float]:
        """Fill factors of the data pages (the 1/3 guarantee in action)."""
        fills: list[float] = []
        seen: set[int] = set()

        def visit(node_id: int) -> None:
            if node_id in seen:
                return
            seen.add(node_id)
            node = self.nm.get(node_id, charge=False)
            if isinstance(node, EntryLeaf):
                fills.append(node.count / node.capacity)
                return
            for child_id in kdnodes.child_ids(node.kd_root):
                visit(child_id)

        visit(self._root_id)
        return fills


# ----------------------------------------------------------------------
# Posting helpers (module-level: pure kd-tree surgery)
# ----------------------------------------------------------------------
def _graft(region: Rect, cuts: list[_Cut], host_id: int, new_id: int) -> KDNode:
    """Build the posting subtree for one host fragment.

    Cut planes falling outside the fragment are simplified away: if the
    fragment lies entirely on the extracted side the path just continues; if
    it lies entirely on the host side the whole fragment stays with the host.
    """

    def build(i: int, region: Rect) -> KDNode:
        if i == len(cuts):
            return KDLeaf(new_id)
        cut = cuts[i]
        lo, hi = region.low[cut.dim], region.high[cut.dim]
        if cut.extracted_right:
            if cut.pos <= lo:
                return build(i + 1, region)
            if cut.pos >= hi:
                return KDLeaf(host_id)
            return KDInternal(
                cut.dim, cut.pos, cut.pos,
                KDLeaf(host_id), build(i + 1, region.clip_above(cut.dim, cut.pos)),
            )
        if cut.pos >= hi:
            return build(i + 1, region)
        if cut.pos <= lo:
            return KDLeaf(host_id)
        return KDInternal(
            cut.dim, cut.pos, cut.pos,
            build(i + 1, region.clip_below(cut.dim, cut.pos)), KDLeaf(host_id),
        )

    return build(0, region)


def _graft_everywhere(
    kd: KDNode, region: Rect, host_id: int, new_id: int, cuts: list[_Cut]
) -> KDNode:
    """Replace every leaf referencing ``host_id`` with its grafted posting."""
    if isinstance(kd, KDLeaf):
        if kd.child_id != host_id:
            return kd
        return _graft(region, cuts, host_id, new_id)
    kd.left = _graft_everywhere(
        kd.left, region.clip_below(kd.dim, kd.lsp), host_id, new_id, cuts
    )
    kd.right = _graft_everywhere(
        kd.right, region.clip_above(kd.dim, kd.rsp), host_id, new_id, cuts
    )
    return kd


def _choose_extraction(root: KDNode) -> tuple[list[_Cut], KDNode] | None:
    """Find the extraction subtree: reference-closed (no child's references
    split across the boundary), proper (neither the root nor empty), and as
    close to half the leaves as possible; subject to that, shortest path
    (fewest posted kd nodes).  Returns (cuts along the path, subtree)."""
    total_refs = Counter(kdnodes.child_ids(root))
    total = sum(total_refs.values())
    best: tuple[float, int, list[_Cut], KDNode] | None = None

    def consider(sub: KDNode, cuts: list[_Cut]) -> None:
        nonlocal best
        sub_refs = Counter(kdnodes.child_ids(sub))
        size = sum(sub_refs.values())
        if size == total:
            return
        if any(total_refs[cid] != count for cid, count in sub_refs.items()):
            return  # not reference-closed
        balance = abs(size - total / 2.0)
        key = (balance, len(cuts))
        if best is None or key < (best[0], best[1]):
            best = (balance, len(cuts), list(cuts), sub)

    def walk(node: KDNode, cuts: list[_Cut]) -> None:
        if isinstance(node, KDLeaf):
            consider(node, cuts)
            return
        consider(node, cuts)
        cuts.append(_Cut(node.dim, node.lsp, extracted_right=False))
        walk(node.left, cuts)
        cuts.pop()
        cuts.append(_Cut(node.dim, node.lsp, extracted_right=True))
        walk(node.right, cuts)
        cuts.pop()

    # consider() on the root is skipped via the size == total guard.
    walk(root, [])
    if best is None:
        return None
    return best[2], best[3]


def _remove_subtree(root: KDNode, target: KDNode) -> KDNode:
    """Remove ``target`` (by identity) from the tree, promoting its sibling."""
    if root is target:
        raise ValueError("cannot remove the whole kd-tree")

    def go(node: KDNode) -> KDNode:
        if isinstance(node, KDLeaf):
            return node
        if node.left is target:
            return go(node.right)
        if node.right is target:
            return go(node.left)
        node.left = go(node.left)
        node.right = go(node.right)
        return node

    return go(root)
