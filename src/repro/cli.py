"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the page-budget capacity model (Table 1's fanout story).
``generate``
    Write a dataset (.npy) with one of the reconstructed generators.
``build``
    Build a hybrid tree over a .npy dataset and save it as a page file.
``query``
    Run a k-NN / distance-range / box query against a saved tree.
``bench``
    Run one of the paper-figure experiments and print its table.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import HybridTree
from repro.distances import L1, L2, LINF, LpMetric
from repro.geometry.rect import Rect

_METRICS = {"l1": L1, "l2": L2, "linf": LINF}

_BENCH_CHOICES = (
    "fig5",
    "fig5c",
    "fig6-fourier",
    "fig6-colhist",
    "fig7-dbsize",
    "fig7-distance",
    "lemma1",
    "approx-knn",
)


def _metric(name: str):
    name = name.lower()
    if name in _METRICS:
        return _METRICS[name]
    try:
        return LpMetric(float(name))
    except ValueError:
        raise SystemExit(f"unknown metric {name!r}; use l1, l2, linf or a p-value")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    from repro.eval.report import render_table
    from repro.storage.page import (
        data_node_capacity,
        kdtree_node_capacity,
        rtree_node_capacity,
        srtree_node_capacity,
        sstree_node_capacity,
    )

    rows = []
    for dims in args.dims:
        rows.append(
            {
                "dims": dims,
                "data_entries/page": data_node_capacity(dims),
                "hybrid/hB/KDB fanout": kdtree_node_capacity(dims),
                "rtree fanout": rtree_node_capacity(dims),
                "sstree fanout": sstree_node_capacity(dims),
                "srtree fanout": srtree_node_capacity(dims),
            }
        )
    print(render_table(rows, f"Node capacities on {args.page_size}-byte pages"))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import (
        clustered_dataset,
        colhist_dataset,
        fourier_dataset,
        uniform_dataset,
    )

    makers = {
        "colhist": lambda: colhist_dataset(args.count, args.dims, seed=args.seed),
        "fourier": lambda: fourier_dataset(args.count, args.dims, seed=args.seed),
        "uniform": lambda: uniform_dataset(args.count, args.dims, seed=args.seed),
        "clustered": lambda: clustered_dataset(args.count, args.dims, seed=args.seed),
    }
    data = makers[args.dataset]()
    np.save(args.out, data)
    print(f"wrote {data.shape[0]} x {data.shape[1]} {args.dataset} vectors to {args.out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    data = np.load(args.data)
    if data.ndim != 2:
        raise SystemExit(f"{args.data} is not a 2-d array")
    if args.bulk:
        tree = HybridTree.bulk_load(
            data.astype(np.float32), els_bits=args.els_bits
        )
    else:
        tree = HybridTree(data.shape[1], els_bits=args.els_bits)
        for oid, vector in enumerate(data.astype(np.float32)):
            tree.insert(vector, oid)
    tree.save(args.out)
    print(
        f"built hybrid tree: {len(tree):,} points, height {tree.height}, "
        f"{tree.pages():,} pages -> {args.out}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    tree = HybridTree.open(args.tree)
    metric = _metric(args.metric)
    if args.knn is not None:
        vector = np.array([float(x) for x in args.vector.split(",")])
        results = tree.knn(vector, args.knn, metric=metric)
        for oid, dist in results:
            print(f"{oid}\t{dist:.6f}")
    elif args.radius is not None:
        vector = np.array([float(x) for x in args.vector.split(",")])
        results = sorted(
            tree.distance_range(vector, args.radius, metric=metric),
            key=lambda t: t[1],
        )
        for oid, dist in results:
            print(f"{oid}\t{dist:.6f}")
    elif args.box is not None:
        low_str, high_str = args.box.split(":")
        low = np.array([float(x) for x in low_str.split(",")])
        high = np.array([float(x) for x in high_str.split(",")])
        for oid in sorted(tree.range_search(Rect(low, high))):
            print(oid)
    else:
        raise SystemExit("specify one of --knn, --radius or --box")
    print(
        f"# {tree.io.random_reads} page reads over a {tree.pages():,}-page tree",
        file=sys.stderr,
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval import figures, render_table

    scale = args.scale

    def n(x: int) -> int:
        return max(4, int(x * scale))

    runners = {
        "fig5": lambda: figures.fig5_eda_vs_vam(count=n(8000), num_queries=n(25)),
        "fig5c": lambda: figures.fig5c_els(count=n(8000), num_queries=n(25)),
        "fig6-fourier": lambda: figures.fig6_dimensionality(
            "fourier", count=n(40000), num_queries=n(25)
        ),
        "fig6-colhist": lambda: figures.fig6_dimensionality(
            "colhist", count=n(12000), num_queries=n(25)
        ),
        "fig7-dbsize": lambda: figures.fig7_dbsize(
            sizes=tuple(n(s) for s in (4000, 8000, 12000, 16000)),
            num_queries=n(25),
        ),
        "fig7-distance": lambda: figures.fig7_distance(
            count=n(12000), num_queries=n(20)
        ),
        "lemma1": lambda: figures.lemma1_dimension_elimination(
            count=n(8000), num_queries=n(25)
        ),
        "approx-knn": lambda: figures.ext_approximate_knn(
            count=n(12000), num_queries=n(20)
        ),
    }
    rows = runners[args.figure]()
    print(render_table(rows, f"{args.figure} (scale {scale})"))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid tree (ICDE 1999) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print the page-budget capacity model")
    p.add_argument("--dims", type=int, nargs="+", default=[8, 16, 32, 64])
    p.add_argument("--page-size", type=int, default=4096)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("generate", help="generate a dataset (.npy)")
    p.add_argument("--dataset", choices=["colhist", "fourier", "uniform", "clustered"],
                   required=True)
    p.add_argument("--count", type=int, required=True)
    p.add_argument("--dims", type=int, required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("build", help="build and save a hybrid tree")
    p.add_argument("--data", required=True, help="input .npy (n, dims) array")
    p.add_argument("--out", required=True, help="output page file")
    p.add_argument("--els-bits", type=int, default=4)
    p.add_argument("--bulk", action="store_true", help="bulk load (default: insert)")
    p.set_defaults(fn=cmd_build)

    p = sub.add_parser("query", help="query a saved hybrid tree")
    p.add_argument("--tree", required=True, help="saved page file")
    p.add_argument("--vector", help="comma-separated query vector")
    p.add_argument("--knn", type=int, help="k nearest neighbours")
    p.add_argument("--radius", type=float, help="distance range radius")
    p.add_argument("--box", help="box query 'low1,low2,...:high1,high2,...'")
    p.add_argument("--metric", default="l2", help="l1 | l2 | linf | <p>")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("bench", help="run a paper-figure experiment")
    p.add_argument("--figure", choices=_BENCH_CHOICES, required=True)
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
