"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Print the page-budget capacity model (Table 1's fanout story).
``generate``
    Write a dataset (.npy) with one of the reconstructed generators.
``build``
    Build a hybrid tree over a .npy dataset and save it as a page file.
``query``
    Run a k-NN / distance-range / box query against a saved tree.
``bench``
    Run one of the paper-figure experiments and print its table.
``bench-batch``
    Compare the batch query engine (one shared traversal + pinned hot
    directory) against a loop of single queries and print per-query
    latency / page-access histograms.
``fsck``
    Verify a saved tree file: page CRCs, reachability, free list,
    checksum-of-checksums.  Exit status 1 if corruption is found.
``salvage``
    Scavenge the intact data pages of a damaged tree file and rebuild a
    fresh tree from them.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core import HybridTree
from repro.distances import L1, L2, LINF, LpMetric
from repro.geometry.rect import Rect

_METRICS = {"l1": L1, "l2": L2, "linf": LINF}

_BENCH_CHOICES = (
    "fig5",
    "fig5c",
    "fig6-fourier",
    "fig6-colhist",
    "fig7-dbsize",
    "fig7-distance",
    "lemma1",
    "approx-knn",
)


def _metric(name: str):
    name = name.lower()
    if name in _METRICS:
        return _METRICS[name]
    try:
        return LpMetric(float(name))
    except ValueError:
        raise SystemExit(f"unknown metric {name!r}; use l1, l2, linf or a p-value")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_info(args: argparse.Namespace) -> int:
    from repro.eval.report import render_table
    from repro.storage.page import (
        data_node_capacity,
        kdtree_node_capacity,
        rtree_node_capacity,
        srtree_node_capacity,
        sstree_node_capacity,
    )

    rows = []
    for dims in args.dims:
        rows.append(
            {
                "dims": dims,
                "data_entries/page": data_node_capacity(dims),
                "hybrid/hB/KDB fanout": kdtree_node_capacity(dims),
                "rtree fanout": rtree_node_capacity(dims),
                "sstree fanout": sstree_node_capacity(dims),
                "srtree fanout": srtree_node_capacity(dims),
            }
        )
    print(render_table(rows, f"Node capacities on {args.page_size}-byte pages"))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import (
        clustered_dataset,
        colhist_dataset,
        fourier_dataset,
        uniform_dataset,
    )

    makers = {
        "colhist": lambda: colhist_dataset(args.count, args.dims, seed=args.seed),
        "fourier": lambda: fourier_dataset(args.count, args.dims, seed=args.seed),
        "uniform": lambda: uniform_dataset(args.count, args.dims, seed=args.seed),
        "clustered": lambda: clustered_dataset(args.count, args.dims, seed=args.seed),
    }
    data = makers[args.dataset]()
    np.save(args.out, data)
    print(f"wrote {data.shape[0]} x {data.shape[1]} {args.dataset} vectors to {args.out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    data = np.load(args.data)
    if data.ndim != 2:
        raise SystemExit(f"{args.data} is not a 2-d array")
    if args.bulk:
        tree = HybridTree.bulk_load(
            data.astype(np.float32), els_bits=args.els_bits
        )
    else:
        tree = HybridTree(data.shape[1], els_bits=args.els_bits)
        for oid, vector in enumerate(data.astype(np.float32)):
            tree.insert(vector, oid)
    tree.save(args.out)
    print(
        f"built hybrid tree: {len(tree):,} points, height {tree.height}, "
        f"{tree.pages():,} pages -> {args.out}"
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    tree = HybridTree.open(args.tree, on_corruption=args.on_corruption)
    metric = _metric(args.metric)
    if args.knn is not None:
        vector = np.array([float(x) for x in args.vector.split(",")])
        results = tree.knn(vector, args.knn, metric=metric)
        for oid, dist in results:
            print(f"{oid}\t{dist:.6f}")
    elif args.radius is not None:
        vector = np.array([float(x) for x in args.vector.split(",")])
        results = sorted(
            tree.distance_range(vector, args.radius, metric=metric),
            key=lambda t: t[1],
        )
        for oid, dist in results:
            print(f"{oid}\t{dist:.6f}")
    elif args.box is not None:
        low_str, high_str = args.box.split(":")
        low = np.array([float(x) for x in low_str.split(",")])
        high = np.array([float(x) for x in high_str.split(",")])
        for oid in sorted(tree.range_search(Rect(low, high))):
            print(oid)
    else:
        raise SystemExit("specify one of --knn, --radius or --box")
    print(
        f"# {tree.io.random_reads} page reads over a {tree.pages():,}-page tree",
        file=sys.stderr,
    )
    if tree.degraded_queries:
        print(
            f"# WARNING: corrupt page encountered; {tree.degraded_queries} "
            "quer(y/ies) answered by degraded sequential scan",
            file=sys.stderr,
        )
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    from repro.core.hybridtree import HybridTree
    from repro.storage.wal import wal_path_for

    tree = HybridTree.open(args.tree, wal=True)
    try:
        replayed = tree.wal_replayed_transactions
        stats = tree.checkpoint()
    finally:
        tree.close()
    print(
        f"checkpoint {args.tree}: generation {stats['generation']}, "
        f"{replayed} logged transaction(s) folded into the superblock "
        f"({stats['wal_bytes_folded']} WAL bytes)"
    )
    print(f"  log reset: {wal_path_for(args.tree)}")
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    from repro.storage.recovery import verify

    report = verify(args.tree)
    print(report.render())
    return 0 if report.ok else 1


def cmd_salvage(args: argparse.Namespace) -> int:
    from repro.storage.errors import RecoveryError
    from repro.storage.recovery import salvage

    try:
        report = salvage(args.tree, out_path=args.out, page_size=args.page_size)
    except RecoveryError as exc:
        raise SystemExit(f"salvage failed: {exc}")
    print(report.render())
    if report.expected_objects is not None:
        return 0 if report.objects_recovered == report.expected_objects else 1
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.eval import figures, render_table

    scale = args.scale

    def n(x: int) -> int:
        return max(4, int(x * scale))

    runners = {
        "fig5": lambda: figures.fig5_eda_vs_vam(count=n(8000), num_queries=n(25)),
        "fig5c": lambda: figures.fig5c_els(count=n(8000), num_queries=n(25)),
        "fig6-fourier": lambda: figures.fig6_dimensionality(
            "fourier", count=n(40000), num_queries=n(25)
        ),
        "fig6-colhist": lambda: figures.fig6_dimensionality(
            "colhist", count=n(12000), num_queries=n(25)
        ),
        "fig7-dbsize": lambda: figures.fig7_dbsize(
            sizes=tuple(n(s) for s in (4000, 8000, 12000, 16000)),
            num_queries=n(25),
        ),
        "fig7-distance": lambda: figures.fig7_distance(
            count=n(12000), num_queries=n(20)
        ),
        "lemma1": lambda: figures.lemma1_dimension_elimination(
            count=n(8000), num_queries=n(25)
        ),
        "approx-knn": lambda: figures.ext_approximate_knn(
            count=n(12000), num_queries=n(20)
        ),
    }
    rows = runners[args.figure]()
    print(render_table(rows, f"{args.figure} (scale {scale})"))
    return 0


def cmd_bench_batch(args: argparse.Namespace) -> int:
    import time

    from repro.datasets import (
        clustered_dataset,
        colhist_dataset,
        fourier_dataset,
        uniform_dataset,
    )
    from repro.datasets.workload import distance_workload, range_workload
    from repro.engine import QuerySession
    from repro.eval.harness import build_index
    from repro.eval.report import render_table
    from repro.resilience import PartialResult

    if args.queries < 1:
        raise SystemExit("--queries must be >= 1")
    if args.k < 1:
        raise SystemExit("--k must be >= 1")
    if args.pin_levels < 0:
        raise SystemExit("--pin-levels must be >= 0")
    makers = {
        "colhist": colhist_dataset,
        "fourier": fourier_dataset,
        "uniform": uniform_dataset,
        "clustered": clustered_dataset,
    }
    data = makers[args.dataset](args.count, args.dims, seed=args.seed)
    index = build_index(args.index, data, build="bulk")
    metric = _metric(args.metric)
    budget = {"timeout": args.timeout, "on_timeout": args.on_timeout}
    use_soa = args.engine == "soa"
    if use_soa and not hasattr(index, "compile_snapshot"):
        raise SystemExit(
            f"--engine soa: {args.index} does not support snapshot compilation"
        )
    shape = f"height {index.height}, " if hasattr(index, "height") else ""
    print(
        f"{args.dataset}/{args.index}: {len(index):,} x {args.dims}-d points, "
        f"{shape}{index.pages():,} pages; "
        f"{args.queries} queries per mode, {args.engine} batch engine",
        file=sys.stderr,
    )

    rows = []
    reports = []

    def compare(label, run_loop, run_batch):
        # The loop side always walks the live objects; the batch side runs
        # the requested engine (a compiled snapshot routes the *_many calls
        # through the vectorized SOA kernel, and is invalidated here so the
        # loop side can never accidentally benefit from it).
        index.invalidate_snapshot()
        index.io.reset()
        start = time.perf_counter()
        loop_results, loop_metrics = run_loop()
        loop_wall = time.perf_counter() - start
        if use_soa:
            index.compile_snapshot()
        index.io.reset()
        start = time.perf_counter()
        batch_results, batch_metrics = run_batch()
        batch_wall = time.perf_counter() - start
        row = {
            "mode": label,
            **{
                k: loop_metrics.summary()[k]
                for k in ("charged_reads", "lat_p50_ms", "lat_p95_ms")
            },
            "loop_s": round(loop_wall, 3),
            "batch_s": round(batch_wall, 3),
            "speedup": round(loop_wall / batch_wall, 2) if batch_wall else 0.0,
            "batch_reads": batch_metrics.charged_reads,
            "identical": loop_results == batch_results,
        }
        if isinstance(batch_results, PartialResult):
            # The deadline fired: report what was salvaged instead of
            # pretending a truncated run matched the loop.
            row["identical"] = "-"
            row["complete"] = (
                f"{batch_results.completed_queries}/{len(batch_results)}"
            )
        rows.append(row)
        reports.append(loop_metrics.render())
        reports.append(batch_metrics.render())

    workload = range_workload(data, args.queries, args.selectivity, seed=args.seed + 1)
    centers = workload.centers
    boxes = dist = None
    if getattr(index, "trav_supports_box", True):
        boxes = workload.boxes()
        compare(
            "range",
            lambda: _loop_range(index, boxes),
            lambda: index.range_search_many(boxes, return_metrics=True, **budget),
        )
    else:
        # Distance-based structures (M-tree) have no box geometry: bench
        # distance-range queries at the same selectivity instead.
        dwork = distance_workload(
            data, args.queries, args.selectivity, metric=metric, seed=args.seed + 1
        )
        dist = (dwork.centers, dwork.radii)
        compare(
            "distance",
            lambda: _loop_distance(index, dist[0], dist[1], metric),
            lambda: index.distance_range_many(
                dist[0], dist[1], metric, return_metrics=True, **budget
            ),
        )
    compare(
        f"knn k={args.k}",
        lambda: _loop_knn(index, centers, args.k, metric),
        lambda: index.knn_many(centers, args.k, metric, return_metrics=True, **budget),
    )
    if isinstance(index, HybridTree):
        with QuerySession(index, pin_levels=args.pin_levels) as session:
            compare(
                f"knn k={args.k} (session, {session.pinned_pages} pinned)",
                lambda: _loop_knn(index, centers, args.k, metric),
                lambda: session.knn_many(
                    centers, args.k, metric, return_metrics=True, **budget
                ),
            )

    print(render_table(rows, f"batch engine vs single-query loop ({args.index})"))
    for text in reports:
        print()
        print(text)

    if args.workers > 1 or args.mmap:
        print()
        _bench_parallel(args, index, boxes, dist, centers, metric, budget)
    return 0


def _bench_parallel(args, index, boxes, dist, centers, metric, budget) -> None:
    """Compare serial batch execution against a multi-worker engine.

    A hybrid tree is saved and reopened so process workers and mmap read
    handles are exercised; any other structure is parallelised live through
    thread-worker views of the index itself.
    """
    import os
    import tempfile
    import time

    from repro.engine import ParallelQueryEngine
    from repro.eval.report import render_table

    with tempfile.TemporaryDirectory() as tmpdir:
        if isinstance(index, HybridTree):
            source = os.path.join(tmpdir, "bench.tree")
            index.save(source)
            serial = HybridTree.open(source, mmap=args.mmap)
            mode = args.worker_mode
            title = "parallel engine vs serial batch (reopened tree)"
        else:
            serial = source = index
            mode = "thread"
            title = "parallel engine vs serial batch (live index, thread views)"
        specs = []
        if boxes is not None:
            specs.append(
                (
                    "range",
                    lambda: serial.range_search_many(
                        boxes, return_metrics=True, **budget
                    ),
                    lambda eng: eng.range_search_many(
                        boxes, return_metrics=True, **budget
                    ),
                )
            )
        if dist is not None:
            specs.append(
                (
                    "distance",
                    lambda: serial.distance_range_many(
                        dist[0], dist[1], metric, return_metrics=True, **budget
                    ),
                    lambda eng: eng.distance_range_many(
                        dist[0], dist[1], metric, return_metrics=True, **budget
                    ),
                )
            )
        specs.append(
            (
                f"knn k={args.k}",
                lambda: serial.knn_many(
                    centers, args.k, metric, return_metrics=True, **budget
                ),
                lambda eng: eng.knn_many(
                    centers, args.k, metric, return_metrics=True, **budget
                ),
            )
        )
        rows = []
        with ParallelQueryEngine(
            source, workers=args.workers, mode=mode, mmap=args.mmap
        ) as engine:
            for label, serial_fn, parallel_fn in specs:
                start = time.perf_counter()
                serial_results, serial_metrics = serial_fn()
                serial_wall = time.perf_counter() - start
                start = time.perf_counter()
                parallel_results, parallel_metrics = parallel_fn(engine)
                parallel_wall = time.perf_counter() - start
                rows.append(
                    {
                        "mode": label,
                        "workers": f"{args.workers}x{mode}",
                        "mmap": args.mmap,
                        "serial_s": round(serial_wall, 3),
                        "parallel_s": round(parallel_wall, 3),
                        "speedup": (
                            round(serial_wall / parallel_wall, 2)
                            if parallel_wall
                            else 0.0
                        ),
                        "serial_reads": serial_metrics.charged_reads,
                        "parallel_reads": parallel_metrics.charged_reads,
                        "identical": serial_results == parallel_results,
                    }
                )
        if serial is not index:
            serial.close()
        print(render_table(rows, title))


def _charged_reads(io) -> int:
    # Both access kinds: random-only accounting silently drops the
    # sequential reads that dominate seqscan/VA-file loops.
    return io.random_reads + io.sequential_reads


def _loop_range(index, boxes):
    """Single-query loop instrumented like the baselines' measured loop."""
    from repro.engine.metrics import LoopRecorder

    recorder = LoopRecorder("range-loop", index.io)
    reads0 = _charged_reads(index.io)
    results = []
    for box in boxes:
        recorder.start_query()
        results.append(index.range_search(box))
        recorder.end_query()
    return results, recorder.finish(charged_reads=_charged_reads(index.io) - reads0)


def _loop_distance(index, centers, radii, metric):
    from repro.engine.metrics import LoopRecorder

    recorder = LoopRecorder("distance-loop", index.io)
    reads0 = _charged_reads(index.io)
    results = []
    for center, radius in zip(centers, radii):
        recorder.start_query()
        results.append(index.distance_range(center, float(radius), metric=metric))
        recorder.end_query()
    return results, recorder.finish(charged_reads=_charged_reads(index.io) - reads0)


def _loop_knn(index, centers, k, metric):
    from repro.engine.metrics import LoopRecorder

    recorder = LoopRecorder("knn-loop", index.io)
    reads0 = _charged_reads(index.io)
    results = []
    for center in centers:
        recorder.start_query()
        results.append(index.knn(center, k, metric=metric))
        recorder.end_query()
    return results, recorder.finish(charged_reads=_charged_reads(index.io) - reads0)


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    from repro.eval.harness import INDEX_KINDS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid tree (ICDE 1999) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print the page-budget capacity model")
    p.add_argument("--dims", type=int, nargs="+", default=[8, 16, 32, 64])
    p.add_argument("--page-size", type=int, default=4096)
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("generate", help="generate a dataset (.npy)")
    p.add_argument("--dataset", choices=["colhist", "fourier", "uniform", "clustered"],
                   required=True)
    p.add_argument("--count", type=int, required=True)
    p.add_argument("--dims", type=int, required=True)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("build", help="build and save a hybrid tree")
    p.add_argument("--data", required=True, help="input .npy (n, dims) array")
    p.add_argument("--out", required=True, help="output page file")
    p.add_argument("--els-bits", type=int, default=4)
    p.add_argument("--bulk", action="store_true", help="bulk load (default: insert)")
    p.set_defaults(fn=cmd_build)

    p = sub.add_parser("query", help="query a saved hybrid tree")
    p.add_argument("--tree", required=True, help="saved page file")
    p.add_argument("--vector", help="comma-separated query vector")
    p.add_argument("--knn", type=int, help="k nearest neighbours")
    p.add_argument("--radius", type=float, help="distance range radius")
    p.add_argument("--box", help="box query 'low1,low2,...:high1,high2,...'")
    p.add_argument("--metric", default="l2", help="l1 | l2 | linf | <p>")
    p.add_argument(
        "--on-corruption",
        choices=["raise", "scan"],
        default="raise",
        help="on a corrupt page: fail (raise) or degrade to a sequential scan",
    )
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser(
        "checkpoint",
        help="fold a tree's write-ahead log into a fresh superblock",
    )
    p.add_argument("--tree", required=True, help="saved page file (with .wal sidecar)")
    p.set_defaults(fn=cmd_checkpoint)

    p = sub.add_parser("fsck", help="verify a saved tree file's integrity")
    p.add_argument("--tree", required=True, help="saved page file")
    p.set_defaults(fn=cmd_fsck)

    p = sub.add_parser(
        "salvage", help="rebuild a tree from the intact data pages of a damaged file"
    )
    p.add_argument("--tree", required=True, help="damaged page file")
    p.add_argument("--out", help="where to save the rebuilt tree")
    p.add_argument(
        "--page-size", type=int, help="override page size (skip superblock probe)"
    )
    p.set_defaults(fn=cmd_salvage)

    p = sub.add_parser("bench", help="run a paper-figure experiment")
    p.add_argument("--figure", choices=_BENCH_CHOICES, required=True)
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "bench-batch", help="compare the batch engine against a single-query loop"
    )
    p.add_argument(
        "--index",
        choices=list(INDEX_KINDS),
        default="hybrid",
        help="which index structure to drive through the traversal kernel",
    )
    p.add_argument(
        "--dataset",
        choices=["colhist", "fourier", "uniform", "clustered"],
        default="colhist",
    )
    p.add_argument("--count", type=int, default=20000)
    p.add_argument("--dims", type=int, default=16)
    p.add_argument("--queries", type=int, default=1000)
    p.add_argument("--selectivity", type=float, default=0.002)
    p.add_argument("--k", type=int, default=10)
    p.add_argument("--metric", default="l2", help="l1 | l2 | linf | <p>")
    p.add_argument(
        "--engine",
        choices=["object", "soa"],
        default="object",
        help="batch engine: walk live node objects, or compile the index "
        "to a struct-of-arrays snapshot and run the vectorized kernel",
    )
    p.add_argument("--pin-levels", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="also compare a multi-worker parallel engine over the saved tree",
    )
    p.add_argument(
        "--worker-mode",
        choices=["thread", "fork", "spawn"],
        default="thread",
        help="worker concurrency model for --workers > 1",
    )
    p.add_argument(
        "--mmap",
        action="store_true",
        help="reopen via the zero-copy mmap read path (fsck once at open)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="deadline in seconds applied to every batch call "
        "(typed QueryTimeoutError when it fires)",
    )
    p.add_argument(
        "--on-timeout",
        choices=["raise", "partial"],
        default="raise",
        help="when the deadline fires: raise, or keep the partial results "
        "salvaged before it (reported with a completed-query count)",
    )
    p.set_defaults(fn=cmd_bench_batch)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
