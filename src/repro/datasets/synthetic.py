"""Synthetic datasets for unit tests and ablations."""

from __future__ import annotations

import numpy as np


def uniform_dataset(count: int, dims: int, seed: int = 0) -> np.ndarray:
    """IID uniform points in [0, 1]^dims — the index-hostile worst case."""
    rng = np.random.default_rng(seed)
    return rng.random((count, dims)).astype(np.float32)


def clustered_dataset(
    count: int,
    dims: int,
    clusters: int = 10,
    spread: float = 0.05,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian clusters with centres uniform in [0, 1]^dims, clipped to the
    unit cube.  ``spread`` is the per-dimension standard deviation."""
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    rng = np.random.default_rng(seed)
    centers = rng.random((clusters, dims))
    assignment = rng.integers(0, clusters, size=count)
    points = centers[assignment] + rng.normal(0.0, spread, size=(count, dims))
    return np.clip(points, 0.0, 1.0).astype(np.float32)


def normalize_unit_cube(data: np.ndarray) -> np.ndarray:
    """Min-max normalize user data to [0, 1] per dimension.

    The paper assumes a normalized feature space; apply this to external
    feature vectors before indexing (constant dimensions map to 0).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ValueError("normalize_unit_cube requires a non-empty (n, k) array")
    lo = data.min(axis=0)
    hi = data.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return ((data - lo) / span).astype(np.float32)


def pad_with_nondiscriminating_dims(
    data: np.ndarray, extra_dims: int, jitter: float = 1e-3, seed: int = 0
) -> np.ndarray:
    """Append dimensions on which all vectors are (nearly) identical.

    Used by the Lemma 1 benchmark: the hybrid tree should never pick these
    dimensions for splitting (implicit dimensionality reduction), so query
    cost should barely change as they are added.
    """
    if extra_dims < 0:
        raise ValueError("extra_dims must be >= 0")
    data = np.asarray(data, dtype=np.float32)
    if extra_dims == 0:
        return data
    rng = np.random.default_rng(seed)
    constant = rng.random(extra_dims).astype(np.float32)
    pad = constant[None, :] + rng.normal(0.0, jitter, size=(len(data), extra_dims))
    return np.hstack([data, np.clip(pad, 0.0, 1.0).astype(np.float32)])
