"""COLHIST: synthetic color histograms with Corel-like cluster structure.

The paper's COLHIST dataset holds 4x4, 8x4 and 8x8 color histograms of ~70K
Corel stock photos.  Real image histograms have two properties that drive
every result in the paper's Figures 5-7:

1. **Sparsity** — an image uses a handful of dominant colors, so most of the
   64 bins are near zero.  This creates the "non-discriminating dimensions"
   the hybrid tree implicitly eliminates (Lemma 1).
2. **Cluster structure** — stock photo collections contain themes (sunsets,
   forests, underwater scenes) whose histograms are near-copies of a theme
   palette, so small regions of feature space are densely populated and a
   0.2%-selectivity query is geometrically tiny.

We synthesise both: themes are sparse Dirichlet palettes over the 8x8 grid,
and each image perturbs its theme palette with a Dirichlet resample.  The
16- and 32-bin variants aggregate the 8x8 histogram over the color grid,
exactly what extracting coarser histograms from the same images yields.
"""

from __future__ import annotations

import numpy as np

_VALID_DIMS = (16, 32, 64)


def colhist_dataset(
    count: int,
    dims: int = 64,
    themes: int = 60,
    palette_colors: float = 4.0,
    image_noise: float = 80.0,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``count`` color histograms with ``dims`` in {16, 32, 64}.

    Parameters
    ----------
    count:
        Number of images.
    dims:
        Histogram granularity: 64 = 8x8, 32 = 8x4, 16 = 4x4 (paper §4).
    themes:
        Number of photo themes (clusters).
    palette_colors:
        Expected dominant colors per theme; smaller = sparser histograms.
    image_noise:
        Dirichlet concentration of images around their theme: higher = tighter
        clusters.
    seed:
        Deterministic generator seed.

    Returns a ``(count, dims)`` ``float32`` array; rows are histograms in
    [0, 1]^dims summing to 1.
    """
    if dims not in _VALID_DIMS:
        raise ValueError(f"dims must be one of {_VALID_DIMS} (4x4, 8x4, 8x8 grids)")
    if themes < 1:
        raise ValueError("themes must be >= 1")
    rng = np.random.default_rng(seed)

    bins = 64
    # Sparse theme palettes: Dirichlet with alpha << 1 concentrates mass in
    # ~palette_colors bins.
    alpha = palette_colors / bins
    palettes = rng.dirichlet(np.full(bins, alpha), size=themes)

    theme_of = rng.integers(0, themes, size=count)
    # Image = Dirichlet around its theme palette.  A floor keeps alphas valid.
    alphas = palettes[theme_of] * image_noise + 1e-3
    histograms = rng.standard_gamma(alphas)
    histograms /= histograms.sum(axis=1, keepdims=True)

    grid = histograms.reshape(count, 8, 8)
    if dims == 64:
        out = histograms
    elif dims == 32:  # 8x4: merge adjacent saturation columns
        out = (grid[:, :, 0::2] + grid[:, :, 1::2]).reshape(count, 32)
    else:  # 16 = 4x4: merge adjacent hue rows as well
        coarse = grid[:, :, 0::2] + grid[:, :, 1::2]
        out = (coarse[:, 0::2, :] + coarse[:, 1::2, :]).reshape(count, 16)
    return np.ascontiguousarray(out, dtype=np.float32)
