"""Query workloads with constant selectivity (paper Section 4).

"The queries are randomly distributed in the data space with appropriately
chosen ranges to get constant selectivity" — 0.07% for FOURIER, 0.2% for
COLHIST.  With clustered feature data, uniformly placed queries would almost
always hit empty space, so (as is standard for feature-database evaluations)
query centres are drawn from the data distribution itself; the *range* is
then chosen for the target selectivity:

- box queries: a per-query side equal to twice the ``ceil(selectivity*n)``-th
  smallest Chebyshev (L-inf) distance from the centre — a cube query is an
  L-inf ball, so this meets the target selectivity exactly for every query
  (a single mean-calibrated side is also available via
  :func:`calibrate_box_side` for sensitivity studies);
- distance queries: a per-query radius equal to the distance of the
  ``ceil(selectivity * n)``-th nearest neighbour, which meets the target
  exactly for every query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distances import L2, Metric
from repro.geometry.rect import Rect


@dataclass
class QueryWorkload:
    """A reproducible batch of queries over one dataset.

    ``kind`` is ``"box"`` (bounding-box range queries of side ``box_side``)
    or ``"distance"`` (per-query radii under ``metric``).
    """

    kind: str
    centers: np.ndarray
    box_side: float = 0.0
    sides: np.ndarray = field(default_factory=lambda: np.empty(0))
    radii: np.ndarray = field(default_factory=lambda: np.empty(0))
    metric: Metric = L2
    target_selectivity: float = 0.0

    def __len__(self) -> int:
        return len(self.centers)

    def boxes(self) -> list[Rect]:
        """The query cubes; per-query sides when available, else the global
        ``box_side``."""
        if self.kind != "box":
            raise ValueError("boxes() is only defined for box workloads")
        sides = (
            self.sides
            if self.sides.size
            else np.full(len(self.centers), self.box_side)
        )
        return [
            Rect(c - s / 2.0, c + s / 2.0)
            for c, s in zip(self.centers.astype(np.float64), sides)
        ]


def _sample_centers(
    data: np.ndarray, num_queries: int, rng: np.random.Generator
) -> np.ndarray:
    idx = rng.choice(len(data), size=num_queries, replace=len(data) < num_queries)
    return data[idx].astype(np.float64)


def calibrate_box_side(
    data: np.ndarray,
    centers: np.ndarray,
    target_selectivity: float,
    tolerance: float = 0.1,
    max_iterations: int = 60,
) -> float:
    """Bisection for the box side whose mean selectivity hits the target.

    ``tolerance`` is relative (0.1 = within 10% of the target), mirroring the
    paper's "constant selectivity" without demanding exactness a global side
    cannot achieve.
    """
    if not 0.0 < target_selectivity < 1.0:
        raise ValueError("target_selectivity must be in (0, 1)")
    data64 = data.astype(np.float64)
    target = target_selectivity * len(data)

    def mean_hits(side: float) -> float:
        half = side / 2.0
        total = 0
        for c in centers:
            mask = np.all(np.abs(data64 - c) <= half, axis=1)
            total += int(mask.sum())
        return total / len(centers)

    lo, hi = 0.0, 2.0  # side 2 covers [0,1] from any in-space centre
    while mean_hits(hi) < target and hi < 64.0:
        hi *= 2.0
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        hits = mean_hits(mid)
        if abs(hits - target) <= tolerance * target:
            return mid
        if hits < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def range_workload(
    data: np.ndarray,
    num_queries: int,
    selectivity: float,
    seed: int = 0,
    per_query: bool = True,
    calibration_queries: int = 24,
) -> QueryWorkload:
    """Box range queries at constant selectivity.

    With ``per_query=True`` (default) every query's cube contains exactly
    ``ceil(selectivity * n)`` points (side = twice the k-th smallest L-inf
    distance from the centre); with ``per_query=False`` a single globally
    calibrated side is used and only the *mean* selectivity matches.
    ``box_side`` always carries the mean side (the hybrid tree's
    ``expected_query_side`` hint).
    """
    if not 0.0 < selectivity < 1.0:
        raise ValueError("selectivity must be in (0, 1)")
    rng = np.random.default_rng(seed)
    centers = _sample_centers(data, num_queries, rng)
    data64 = data.astype(np.float64)
    if per_query:
        k = max(1, int(np.ceil(selectivity * len(data))))
        sides = np.empty(len(centers))
        for i, c in enumerate(centers):
            linf = np.abs(data64 - c).max(axis=1)
            sides[i] = 2.0 * float(np.partition(linf, k - 1)[k - 1])
        return QueryWorkload(
            kind="box",
            centers=centers,
            box_side=float(sides.mean()),
            sides=sides,
            target_selectivity=selectivity,
        )
    calibration = _sample_centers(data, calibration_queries, rng)
    side = calibrate_box_side(data, calibration, selectivity)
    return QueryWorkload(
        kind="box", centers=centers, box_side=side, target_selectivity=selectivity
    )


def distance_workload(
    data: np.ndarray,
    num_queries: int,
    selectivity: float,
    metric: Metric = L2,
    seed: int = 0,
) -> QueryWorkload:
    """Distance range queries hitting the target selectivity exactly.

    Each query's radius is the distance to its ``ceil(selectivity * n)``-th
    nearest neighbour under ``metric`` (computed by brute force here, on the
    generator side — the indexes under test never see this)."""
    rng = np.random.default_rng(seed)
    centers = _sample_centers(data, num_queries, rng)
    k = max(1, int(np.ceil(selectivity * len(data))))
    data64 = data.astype(np.float64)
    radii = np.empty(len(centers))
    for i, c in enumerate(centers):
        dists = metric.distance_batch(data64, c)
        radii[i] = float(np.partition(dists, k - 1)[k - 1])
    return QueryWorkload(
        kind="distance",
        centers=centers,
        radii=radii,
        metric=metric,
        target_selectivity=selectivity,
    )
