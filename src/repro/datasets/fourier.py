"""FOURIER: Fourier coefficients of random polygon boundaries.

The paper's FOURIER dataset contains "1.2 million 16-d vectors produced by
fourier transformation of polygons"; 8-d and 12-d variants take the first 8
and 12 coefficients.  The original data is not public, so we regenerate the
construction: sample random star-shaped polygons, trace each boundary as a
complex signal, FFT it, and keep the magnitudes of the first harmonics.

Polygons are drawn from *shape families*: each family has a full spectral
signature (per-harmonic amplitude and phase, with a realistic power-law
amplitude decay), and each polygon jitters that signature — the way any real
polygon collection (CAD parts, cartographic shapes, segmented objects) is
populated by variations on recurring shapes.  Because the signature covers
every harmonic, all retained coefficient dimensions carry family structure
rather than independent noise, giving the coefficient space the moderate
cluster structure real Fourier descriptors exhibit.  Per-dimension min-max
normalization to [0, 1] (the paper assumes a normalized feature space) is
applied last.
"""

from __future__ import annotations

import numpy as np


def fourier_dataset(
    count: int,
    dims: int = 16,
    vertices: int = 32,
    families: int = 40,
    noise_scale: float = 0.10,
    spectral_decay: float = 1.2,
    amplitude_jitter: float = 0.15,
    phase_jitter: float = 0.12,
    radius_jitter: float = 0.04,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``count`` polygon Fourier descriptors of ``dims`` dimensions.

    Parameters
    ----------
    count:
        Number of polygons (feature vectors).
    dims:
        Harmonics kept (the paper uses 8, 12 and 16).
    vertices:
        Boundary samples per polygon; ``vertices // 2`` must exceed ``dims``.
    families:
        Number of shape families the polygons vary around.
    noise_scale / spectral_decay:
        Family signature amplitudes scale as
        ``noise_scale * harmonic ** -spectral_decay`` — the power-law energy
        decay of smooth boundaries.
    amplitude_jitter / phase_jitter / radius_jitter:
        Within-family variation of the signature and overall size.
    seed:
        Deterministic generator seed.

    Returns a ``(count, dims)`` ``float32`` array normalized to [0, 1]^dims.
    """
    if dims < 1:
        raise ValueError("dims must be >= 1")
    if vertices // 2 < dims:
        raise ValueError("vertices // 2 must be >= dims (need that many harmonics)")
    if families < 1:
        raise ValueError("families must be >= 1")
    rng = np.random.default_rng(seed)

    angles = np.linspace(0.0, 2.0 * np.pi, vertices, endpoint=False)
    harmonics = vertices // 2
    h = np.arange(1, harmonics)

    family_radius = rng.uniform(0.5, 1.5, families)
    family_amps = (
        noise_scale * h[None, :] ** (-spectral_decay) * rng.normal(0.0, 1.0, (families, harmonics - 1))
    )
    family_phis = rng.uniform(0.0, 2.0 * np.pi, (families, harmonics - 1))

    family = rng.integers(0, families, count)
    radius = family_radius[family][:, None] * (
        1.0 + rng.normal(0.0, radius_jitter, (count, 1))
    )
    amps = family_amps[family] * (
        1.0 + rng.normal(0.0, amplitude_jitter, (count, harmonics - 1))
    )
    phis = family_phis[family] + rng.normal(0.0, phase_jitter, (count, harmonics - 1))

    wave = (
        amps[:, :, None] * np.cos(h[None, :, None] * angles[None, None, :] + phis[:, :, None])
    ).sum(axis=1)
    radii = np.maximum(radius * (1.0 + wave), 0.05)

    boundary = radii * np.exp(1j * angles[None, :])
    spectrum = np.fft.fft(boundary, axis=1) / vertices
    # Skip the DC term (polygon centroid); keep magnitudes of harmonics 1..dims.
    features = np.abs(spectrum[:, 1 : dims + 1])

    lo = features.min(axis=0)
    hi = features.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return ((features - lo) / span).astype(np.float32)
