"""Dataset generators and query workloads (paper Section 4).

The paper evaluates on two proprietary datasets we cannot obtain:

- **FOURIER** — 1.2M 16-d vectors of Fourier coefficients of polygons
  (provided by Stefan Berchtold).  :mod:`repro.datasets.fourier` regenerates
  the construction itself: random polygons, FFT of the boundary signature,
  first 8/12/16 coefficients.
- **COLHIST** — 4x4 / 8x4 / 8x8 color histograms of ~70K Corel images.
  :mod:`repro.datasets.colhist` synthesises sparse, cluster-structured
  histograms (images as mixtures of a few dominant colors) and derives the
  16- and 32-bin variants by aggregating the 64-bin histograms, exactly as
  coarser histograms of the same images would be.

:mod:`repro.datasets.workload` generates the query mixes: box range queries
calibrated to a constant selectivity (0.07% FOURIER / 0.2% COLHIST) and
distance range queries whose radius is set per query to hit the target
selectivity exactly.
"""

from repro.datasets.colhist import colhist_dataset
from repro.datasets.fourier import fourier_dataset
from repro.datasets.synthetic import (
    clustered_dataset,
    normalize_unit_cube,
    pad_with_nondiscriminating_dims,
    uniform_dataset,
)
from repro.datasets.workload import (
    QueryWorkload,
    calibrate_box_side,
    distance_workload,
    range_workload,
)

__all__ = [
    "QueryWorkload",
    "calibrate_box_side",
    "clustered_dataset",
    "colhist_dataset",
    "distance_workload",
    "fourier_dataset",
    "normalize_unit_cube",
    "pad_with_nondiscriminating_dims",
    "range_workload",
    "uniform_dataset",
]
