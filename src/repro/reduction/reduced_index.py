"""GEMINI-style reduced-dimension indexing over a hybrid tree.

Pipeline: fit PCA, index the first ``m`` principal components in a hybrid
tree, keep the full vectors in a heap file.  Euclidean queries run on the
reduced index (the projection is contractive, so no true result is missed)
and survivors are verified against the heap — exact answers, fewer indexed
dimensions.

The class deliberately exposes the three limitations the paper's
introduction charges dimensionality reduction with:

1. *Correlation dependence*: ``m`` for a given energy target is small only
   when the data is strongly correlated; on sparse histogram data it stays
   near the original dimensionality (see ``PCA.dims_for_energy``).
2. *Fixed distance function*: only Euclidean queries are accepted — the
   contractive bound does not hold for an arbitrary query-time metric.
3. *Static bias*: inserts are supported but project onto the frozen basis;
   as the distribution drifts the captured energy decays (``refit`` rebuilds
   from scratch, which is exactly the maintenance cost the paper means by
   "not suitable for dynamic database environments").
"""

from __future__ import annotations

import numpy as np

from repro.core import HybridTree
from repro.distances import L2, LpMetric, Metric
from repro.geometry.rect import Rect
from repro.reduction.pca import PCA
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.page import PageLayout, data_node_capacity


class ReducedIndex:
    """Exact Euclidean search through a PCA-reduced hybrid tree."""

    def __init__(
        self,
        data: np.ndarray,
        *,
        reduced_dims: int | None = None,
        energy_target: float = 0.95,
        page_size: int = 4096,
        stats: IOStats | None = None,
        **tree_params,
    ):
        data = np.asarray(data, dtype=np.float32)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("ReducedIndex requires an (n >= 2, k) array")
        self.full_dims = data.shape[1]
        self.layout = PageLayout(page_size=page_size)
        self.heap_tuples_per_page = data_node_capacity(self.full_dims, self.layout)
        self.pca = PCA(data)
        self.reduced_dims = (
            reduced_dims
            if reduced_dims is not None
            else self.pca.dims_for_energy(energy_target)
        )
        if not 1 <= self.reduced_dims <= self.full_dims:
            raise ValueError("reduced_dims out of range")
        self._vectors = data.copy()
        reduced = self.pca.transform(data, self.reduced_dims)
        lo, hi = reduced.min(axis=0), reduced.max(axis=0)
        bounds = Rect(lo - 1e-6, hi + 1e-6)
        self.tree = HybridTree(
            self.reduced_dims,
            bounds=bounds,
            page_size=page_size,
            stats=stats,
            **tree_params,
        )
        from repro.core.bulkload import bulk_load_into

        bulk_load_into(self.tree, reduced.astype(np.float32))

    # ------------------------------------------------------------------
    @property
    def io(self) -> IOStats:
        return self.tree.io

    def __len__(self) -> int:
        return len(self.tree)

    def pages(self) -> int:
        """Reduced-tree pages + full-vector heap pages."""
        heap = -(-len(self._vectors) // self.heap_tuples_per_page)
        return self.tree.pages() + heap

    def energy(self) -> float:
        """Variance captured by the indexed components at fit time."""
        return self.pca.energy(self.reduced_dims)

    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int | None = None) -> int:
        """Insert a vector by projecting onto the *frozen* basis.

        Returns the assigned oid (its heap position).  Quality degrades as
        the distribution drifts away from the fitted basis; call
        :meth:`refit` to rebuild.
        """
        vector = np.asarray(vector, dtype=np.float32)
        if vector.shape != (self.full_dims,):
            raise ValueError(f"expected a {self.full_dims}-d vector")
        assigned = len(self._vectors)
        if oid is not None and oid != assigned:
            raise ValueError("ReducedIndex assigns oids by heap position")
        self._vectors = np.vstack([self._vectors, vector[None, :]])
        reduced = self.pca.transform_one(vector.astype(np.float64), self.reduced_dims)
        self.tree.insert(reduced.astype(np.float32), assigned)
        return assigned

    def refit(self, **kwargs) -> "ReducedIndex":
        """Rebuild basis and index from the current contents (full rebuild —
        the dynamic-environment cost the paper points at)."""
        return ReducedIndex(self._vectors, **kwargs)

    # ------------------------------------------------------------------
    def _check_metric(self, metric: Metric) -> None:
        if not (isinstance(metric, LpMetric) and metric.p == 2.0):
            raise ValueError(
                "the PCA lower bound only holds for Euclidean distance; "
                f"queries under {metric!r} are unsupported (paper Section 1, "
                "limitation 2 of dimensionality reduction)"
            )

    def range_search(self, query) -> list[int]:
        raise TypeError(
            "box queries in the original space do not map to boxes in the "
            "rotated reduced space; dimensionality reduction does not "
            "support them (use the hybrid tree directly)"
        )

    def _verify(self, candidates: list[int], q: np.ndarray) -> np.ndarray:
        """Fetch candidates' full vectors: one random read per heap page."""
        if not candidates:
            return np.empty(0)
        pages = {c // self.heap_tuples_per_page for c in candidates}
        self.io.record(AccessKind.RANDOM_READ, len(pages))
        rows = self._vectors[np.asarray(candidates)].astype(np.float64)
        return L2.distance_batch(rows, q)

    def distance_range(
        self, query: np.ndarray, radius: float, metric: Metric = L2
    ) -> list[tuple[int, float]]:
        self._check_metric(metric)
        q = np.asarray(query, dtype=np.float64)
        q_reduced = self.pca.transform_one(q, self.reduced_dims)
        # Contractive bound: every true result survives the reduced filter.
        candidates = [oid for oid, _ in self.tree.distance_range(q_reduced, radius)]
        dists = self._verify(candidates, q)
        return [
            (oid, float(d)) for oid, d in zip(candidates, dists) if d <= radius
        ]

    def knn(
        self, query: np.ndarray, k: int, metric: Metric = L2
    ) -> list[tuple[int, float]]:
        """Exact k-NN: reduced k-NN for an upper bound, then a reduced range
        query at that bound, then verification (the GEMINI recipe)."""
        self._check_metric(metric)
        if k < 1:
            raise ValueError("k must be >= 1")
        if len(self.tree) == 0:
            return []
        q = np.asarray(query, dtype=np.float64)
        q_reduced = self.pca.transform_one(q, self.reduced_dims)
        seeds = [oid for oid, _ in self.tree.knn(q_reduced, k)]
        seed_dists = self._verify(seeds, q)
        bound = float(seed_dists.max())
        candidates = [oid for oid, _ in self.tree.distance_range(q_reduced, bound)]
        dists = self._verify(candidates, q)
        ranked = sorted(zip(dists, candidates))[:k]
        return [(oid, float(d)) for d, oid in ranked]
