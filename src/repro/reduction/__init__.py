"""Dimensionality reduction (the paper's Section 1 alternative).

The hybrid-tree paper opens by weighing the competing approach to feature
indexing: reduce dimensionality first, then index the reduced space.  It
grants the approach merit but names three limitations — DR "works well only
when the data is strongly correlated", "usually do[es] not support
similarity queries based on arbitrary distance functions", and is "not
suitable for dynamic database environments".

This subpackage makes those claims testable: :class:`~repro.reduction.pca.PCA`
is a numpy principal-component transform, and
:class:`~repro.reduction.reduced_index.ReducedIndex` is the GEMINI-style
pipeline (index the first ``m`` components; answer Euclidean queries exactly
through the lower-bounding property + verification).  The extension
benchmark compares it against the plain hybrid tree on correlated and
uncorrelated data.
"""

from repro.reduction.pca import PCA
from repro.reduction.reduced_index import ReducedIndex

__all__ = ["PCA", "ReducedIndex"]
