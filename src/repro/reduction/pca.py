"""Principal component analysis via numpy SVD.

The transform is orthonormal, so Euclidean distances are preserved exactly
in the full rotated space and *lower-bounded* by any prefix of components:

    d2(T(x)[:m], T(y)[:m]) <= d2(T(x), T(y)) = d2(x, y)

— the contractive (GEMINI) property that makes exact query processing on a
reduced index possible.  ``energy(m)`` reports the variance fraction the
first ``m`` components capture, which is the paper's "strongly correlated
data" criterion made quantitative.
"""

from __future__ import annotations

import numpy as np


class PCA:
    """Orthonormal PCA fitted on a data sample."""

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] < 2:
            raise ValueError("PCA requires an (n >= 2, k) array")
        self.mean = data.mean(axis=0)
        centered = data - self.mean
        # SVD of the data matrix: rows of Vt are the principal directions.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components = vt  # (k, k) orthonormal rows
        self.explained_variance = (singular_values**2) / max(data.shape[0] - 1, 1)

    @property
    def dims(self) -> int:
        return self.components.shape[1]

    def energy(self, m: int) -> float:
        """Fraction of total variance captured by the first ``m`` components."""
        if not 1 <= m <= self.dims:
            raise ValueError(f"m must be in [1, {self.dims}]")
        total = float(self.explained_variance.sum())
        if total == 0.0:
            return 1.0
        return float(self.explained_variance[:m].sum()) / total

    def dims_for_energy(self, target: float) -> int:
        """Smallest ``m`` whose energy reaches ``target`` (0 < target <= 1)."""
        if not 0.0 < target <= 1.0:
            raise ValueError("target must be in (0, 1]")
        total = float(self.explained_variance.sum())
        if total == 0.0:
            return 1
        cumulative = np.cumsum(self.explained_variance) / total
        return int(np.searchsorted(cumulative, target - 1e-12) + 1)

    def transform(self, rows: np.ndarray, m: int | None = None) -> np.ndarray:
        """Project ``rows`` onto the first ``m`` components."""
        rows = np.asarray(rows, dtype=np.float64)
        projected = (rows - self.mean) @ self.components.T
        return projected if m is None else projected[:, :m]

    def transform_one(self, row: np.ndarray, m: int | None = None) -> np.ndarray:
        return self.transform(np.asarray(row)[None, :], m)[0]
