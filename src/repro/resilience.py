"""Resilient query execution: deadlines, cancellation, and admission.

The query stack (traversal kernel → SOA kernel → batch engine →
``ParallelQueryEngine``) is fast and crash-safe at rest, but a production
front end also needs a *runtime* failure story: a query must not run
unbounded when the index has degraded to a sequential scan, a wedged
worker must not hang a batch forever, and an over-admitted burst must be
rejected crisply instead of degrading every in-flight request.  This
module is the shared substrate all of that builds on:

- :class:`Deadline` / :class:`CancelToken` — cooperative cancellation.
  Every batch API accepts ``timeout=`` (seconds, or a ``Deadline`` so one
  budget can span several calls); the kernels check the deadline at
  frontier-round granularity and raise :class:`QueryTimeoutError` /
  :class:`QueryCancelledError`.
- :func:`deadline_scope` / :func:`active_deadline` — a ``contextvars``
  scope the kernels enter around a traversal, so layers that cannot take
  a parameter (``NodeManager`` retry backoff, the degraded sequential
  scan) still honor the caller's budget.
- :class:`PartialResult` — the ``on_timeout="partial"`` envelope: the
  per-query results accumulated before the deadline fired, an honest
  per-query completion mask, and the timeout error itself.
- :class:`QueryAdmissionController` — bounds concurrent in-flight batches
  and their estimated working-set bytes, raising :class:`AdmissionError`
  for over-budget work instead of letting it degrade everyone.

The error taxonomy (see INTERNALS "Failure semantics"): every runtime
failure surfaces as exactly one of :class:`QueryTimeoutError`,
:class:`QueryCancelledError`, :class:`WorkerCrashError`,
:class:`AdmissionError`, or a storage error from
:mod:`repro.storage.errors` — never a bare hang, a swallowed sibling
exception, or a leaked worker.

This module depends only on the standard library and numpy so both the
engine and the storage layers can import it without cycles.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AdmissionError",
    "CancelToken",
    "Deadline",
    "PartialResult",
    "QueryAdmissionController",
    "QueryCancelledError",
    "QueryTimeoutError",
    "WorkerCrashError",
    "active_deadline",
    "deadline_scope",
]


# ----------------------------------------------------------------------
# Typed runtime-failure errors
# ----------------------------------------------------------------------
class QueryExecutionError(Exception):
    """Base class for runtime query-execution failures.

    Distinct from :class:`repro.storage.errors.StorageError`: these are
    about *this execution* (budget, supervision), not about the bytes on
    disk — retrying with a larger budget may succeed.
    """


class QueryTimeoutError(QueryExecutionError, TimeoutError):
    """The query's deadline expired before the traversal finished.

    Carries the budget (``timeout``) and the wall time actually spent
    (``elapsed``), and — when the caller asked for ``on_timeout="raise"``
    — discards the partial work.  Under ``on_timeout="partial"`` the
    batch APIs return a :class:`PartialResult` carrying this error
    instead of raising it.
    """

    def __init__(self, message: str, timeout: float | None = None,
                 elapsed: float | None = None):
        super().__init__(message)
        self.timeout = timeout
        self.elapsed = elapsed

    def __reduce__(self):
        # Keep the extra attributes across pickling — supervised process
        # workers ship these back to the parent through a result queue.
        return (type(self), (self.args[0], self.timeout, self.elapsed))


class QueryCancelledError(QueryExecutionError):
    """The query's :class:`CancelToken` was cancelled mid-traversal.

    Raised by sibling partitions when the supervised parallel engine
    propagates another partition's failure: the cancelled workers unwind
    promptly instead of finishing work whose result will be discarded.
    """


class WorkerCrashError(QueryExecutionError):
    """A worker process died and the retry budget could not recover it.

    Carries the partition label and the number of attempts made; the
    batch that observed it has produced no results (supervision retries
    the lost partition on a respawned worker before giving up).
    """

    def __init__(self, message: str, partition: str | None = None,
                 attempts: int = 0):
        super().__init__(message)
        self.partition = partition
        self.attempts = attempts

    def __reduce__(self):
        return (type(self), (self.args[0], self.partition, self.attempts))


class AdmissionError(QueryExecutionError):
    """The admission controller rejected the batch before execution.

    Nothing ran: the caller can shed the request, retry after backoff, or
    split the batch.  ``reason`` is one of ``"batches"``, ``"queries"``
    or ``"bytes"`` — which budget the batch would have blown.
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.args[0], self.reason))


# ----------------------------------------------------------------------
# Deadlines and cooperative cancellation
# ----------------------------------------------------------------------
class CancelToken:
    """A thread-safe flag a supervisor sets to unwind cooperative workers.

    Workers never poll it directly — they carry a :class:`Deadline`
    holding the token and call :meth:`Deadline.check` at traversal
    checkpoints.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    def cancel(self, reason: str | None = None) -> None:
        if reason is not None and self.reason is None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class Deadline:
    """A wall-clock budget plus an optional cancellation token.

    Constructed once at the batch-API boundary and threaded down through
    every layer, so nested retries/partitions spend from one shared
    budget instead of each restarting the clock.
    """

    __slots__ = ("started_at", "expires_at", "timeout", "token", "checks")

    def __init__(self, timeout: float | None = None,
                 token: CancelToken | None = None):
        if timeout is not None and timeout < 0:
            raise ValueError("timeout must be >= 0")
        self.started_at = time.perf_counter()
        self.timeout = timeout
        self.expires_at = (
            self.started_at + timeout if timeout is not None else math.inf
        )
        self.token = token
        # How many cancellation points this budget has passed through —
        # observability for "how responsive would a cancel have been",
        # and the basis for the benchmark's direct overhead accounting.
        self.checks = 0

    @classmethod
    def coerce(cls, timeout, token: CancelToken | None = None) -> "Deadline | None":
        """Normalise a batch API's ``timeout=`` argument.

        ``None`` → no deadline; a number → a fresh budget of that many
        seconds; an existing :class:`Deadline` passes through unchanged
        (so one budget can span several calls).
        """
        if timeout is None:
            return cls(None, token) if token is not None else None
        if isinstance(timeout, Deadline):
            return timeout
        return cls(float(timeout), token)

    # -- queries --------------------------------------------------------
    def remaining(self) -> float:
        """Seconds left (``inf`` when untimed); never negative."""
        return max(0.0, self.expires_at - time.perf_counter())

    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    @property
    def expired(self) -> bool:
        return time.perf_counter() >= self.expires_at

    @property
    def cancelled(self) -> bool:
        return self.token is not None and self.token.cancelled

    def check(self) -> None:
        """Raise the matching typed error if the budget is gone.

        Cancellation wins over expiry: a cancelled worker's partial work
        is being discarded by its supervisor, so reporting a timeout
        would be a lie about what happened.
        """
        self.checks += 1
        if self.token is not None and self.token.cancelled:
            reason = self.token.reason or "query cancelled"
            raise QueryCancelledError(reason)
        now = time.perf_counter()
        if now >= self.expires_at:
            raise QueryTimeoutError(
                f"query deadline of {self.timeout:.6g}s exceeded "
                f"({now - self.started_at:.6g}s elapsed)",
                timeout=self.timeout,
                elapsed=now - self.started_at,
            )

    def sleep_budget(self, wanted: float) -> float:
        """Clamp a backoff sleep so it cannot outlive the deadline."""
        return min(wanted, self.remaining())


# The deadline active for the current (thread of) execution.  Kernels set
# it around a traversal; layers without a deadline parameter (NodeManager
# retries, the degraded sequential scan) read it here.  ``contextvars``
# gives each worker thread its own slot, so parallel partitions carrying
# different deadlines never observe each other's.
_ACTIVE_DEADLINE: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_active_deadline", default=None
)


def active_deadline() -> Deadline | None:
    """The deadline governing the current execution context, if any."""
    return _ACTIVE_DEADLINE.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None):
    """Make ``deadline`` visible to nested layers for the duration."""
    if deadline is None:
        yield
        return
    token = _ACTIVE_DEADLINE.set(deadline)
    try:
        yield
    finally:
        _ACTIVE_DEADLINE.reset(token)


# ----------------------------------------------------------------------
# Partial results
# ----------------------------------------------------------------------
@dataclass
class PartialResult:
    """What a timed-out batch managed to finish (``on_timeout="partial"``).

    ``results`` is positionally aligned with the request: one entry per
    query, holding the hits accumulated before the deadline fired.
    ``completed`` marks the queries whose entry is *known complete* —
    conservative at kernel granularity (a mid-traversal timeout marks the
    whole partition incomplete) and exact at partition granularity (the
    parallel engine marks finished partitions complete).  A query marked
    incomplete may still hold hits; they are real, just not exhaustive.

    The envelope quacks like the results list (len / index / iterate), so
    ``on_timeout="partial"`` callers that only want best-effort answers
    need not change shape.
    """

    results: list
    completed: np.ndarray
    error: QueryTimeoutError | None = None

    def __post_init__(self) -> None:
        self.completed = np.asarray(self.completed, dtype=bool)
        if len(self.results) != self.completed.size:
            raise ValueError("completed mask must align with results")

    @property
    def complete(self) -> bool:
        return bool(self.completed.all())

    @property
    def completed_queries(self) -> int:
        return int(self.completed.sum())

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, i):
        return self.results[i]

    def __iter__(self):
        return iter(self.results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PartialResult({self.completed_queries}/{len(self.results)} "
            f"queries complete, error={self.error!r})"
        )


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
@dataclass
class AdmissionTicket:
    """A context manager releasing an admitted batch's reservation."""

    controller: "QueryAdmissionController"
    queries: int
    est_bytes: int
    _released: bool = field(default=False, repr=False)

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.controller._release(self)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class QueryAdmissionController:
    """Bounds the concurrent work a query front end accepts.

    Three independent budgets, any of which may be ``None`` (unlimited):

    ``max_batches``
        Concurrent in-flight batches (one reservation per batch call).
    ``max_queries``
        Total queries across in-flight batches.
    ``max_bytes``
        Estimated working-set bytes across in-flight batches; a batch is
        estimated at ``n_queries × dims × 8`` (the float64 query matrix)
        times ``bytes_per_query_factor`` to account for result buffers.

    :meth:`admit` either returns an :class:`AdmissionTicket` (a context
    manager; the reservation is held until released) or raises
    :class:`AdmissionError` *before any work runs* — shedding load
    crisply beats degrading every in-flight query.  Thread-safe; the
    parallel engine and query sessions share one controller per front
    end.
    """

    def __init__(
        self,
        max_batches: int | None = None,
        max_queries: int | None = None,
        max_bytes: int | None = None,
        bytes_per_query_factor: float = 2.0,
    ):
        for name, value in (
            ("max_batches", max_batches),
            ("max_queries", max_queries),
            ("max_bytes", max_bytes),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 or None")
        self.max_batches = max_batches
        self.max_queries = max_queries
        self.max_bytes = max_bytes
        self.bytes_per_query_factor = float(bytes_per_query_factor)
        self._lock = threading.Lock()
        self.in_flight_batches = 0
        self.in_flight_queries = 0
        self.in_flight_bytes = 0
        self.admitted_total = 0
        self.rejected_total = 0

    def estimate_bytes(self, n_queries: int, dims: int) -> int:
        return int(n_queries * dims * 8 * self.bytes_per_query_factor)

    def admit(self, n_queries: int, dims: int) -> AdmissionTicket:
        """Reserve capacity for a batch or raise :class:`AdmissionError`."""
        est = self.estimate_bytes(n_queries, dims)
        with self._lock:
            if (
                self.max_batches is not None
                and self.in_flight_batches + 1 > self.max_batches
            ):
                self.rejected_total += 1
                raise AdmissionError(
                    f"admission rejected: {self.in_flight_batches} batches "
                    f"in flight (limit {self.max_batches})",
                    reason="batches",
                )
            if (
                self.max_queries is not None
                and self.in_flight_queries + n_queries > self.max_queries
            ):
                self.rejected_total += 1
                raise AdmissionError(
                    f"admission rejected: batch of {n_queries} queries would "
                    f"exceed the in-flight query budget "
                    f"({self.in_flight_queries}/{self.max_queries} used)",
                    reason="queries",
                )
            if self.max_bytes is not None and self.in_flight_bytes + est > self.max_bytes:
                self.rejected_total += 1
                raise AdmissionError(
                    f"admission rejected: batch estimated at {est} bytes would "
                    f"exceed the memory budget "
                    f"({self.in_flight_bytes}/{self.max_bytes} bytes reserved)",
                    reason="bytes",
                )
            self.in_flight_batches += 1
            self.in_flight_queries += n_queries
            self.in_flight_bytes += est
            self.admitted_total += 1
        return AdmissionTicket(self, n_queries, est)

    def _release(self, ticket: AdmissionTicket) -> None:
        with self._lock:
            self.in_flight_batches -= 1
            self.in_flight_queries -= ticket.queries
            self.in_flight_bytes -= ticket.est_bytes

    def snapshot(self) -> dict:
        """Current occupancy, for metrics endpoints and tests."""
        with self._lock:
            return {
                "in_flight_batches": self.in_flight_batches,
                "in_flight_queries": self.in_flight_queries,
                "in_flight_bytes": self.in_flight_bytes,
                "admitted_total": self.admitted_total,
                "rejected_total": self.rejected_total,
            }
