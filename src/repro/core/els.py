"""Encoded Live Space (ELS) — dead-space elimination (paper Section 3.4).

SP-based structures index *dead space*: regions containing no data.  Storing
exact live-space boxes would turn the hybrid tree into a DP structure and
re-couple fanout to dimensionality, so the paper instead quantizes each
child's live-space box onto a ``2^bits``-cell grid spanned by the child's kd
region, using ``bits`` per boundary.  The quantized box is a superset of the
true live box (low boundaries round down, high boundaries round up), so
pruning with it is always safe; with ~4 bits it eliminates most dead space.

Per Section 3.4 the codes live in memory rather than in node pages; this
module provides the quantizer and the in-memory table with its byte-footprint
accounting (reported, never charged against page budgets).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rect import Rect


def quantize_live_rect(live: Rect, region: Rect, bits: int) -> Rect:
    """Snap ``live`` outward onto the ``2^bits`` grid of ``region``.

    Models exactly what decoding an ELS code yields: the returned rect
    contains ``live`` and is contained in ``region``.  ``bits == 0`` degrades
    to the region itself (ELS disabled); ``bits`` is capped at 16 as in the
    serialized format.
    """
    if not 0 <= bits <= 16:
        raise ValueError("bits must be in [0, 16]")
    if bits == 0:
        return region
    cells = float(1 << bits)
    extent = region.high - region.low
    # Degenerate region sides (extent 0) encode trivially to themselves.
    safe = np.where(extent > 0, extent, 1.0)
    lo_cell = np.floor((live.low - region.low) / safe * cells)
    hi_cell = np.ceil((live.high - region.low) / safe * cells)
    lo_cell = np.clip(lo_cell, 0, cells)
    hi_cell = np.clip(hi_cell, lo_cell, cells)
    low = region.low + lo_cell / cells * extent
    high = region.low + hi_cell / cells * extent
    # Guard against float round-off pushing boundaries inside the live box.
    low = np.minimum(low, live.low)
    high = np.maximum(high, live.high)
    return Rect(np.maximum(low, region.low), np.minimum(high, region.high))


def encode_cells(live: Rect, region: Rect, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """The integer grid coordinates actually stored: ``2 * dims * bits`` bits."""
    if bits <= 0:
        raise ValueError("encode_cells requires bits >= 1")
    cells = float(1 << bits)
    extent = region.high - region.low
    safe = np.where(extent > 0, extent, 1.0)
    lo = np.clip(np.floor((live.low - region.low) / safe * cells), 0, cells).astype(np.uint32)
    hi = np.clip(np.ceil((live.high - region.low) / safe * cells), 0, cells).astype(np.uint32)
    return lo, hi


class ELSTable:
    """In-memory live-space boxes, one per tree node, quantized on use.

    The table stores exact live boxes (floats) and applies
    :func:`quantize_live_rect` at check time, so the *pruning behaviour*
    matches a ``bits``-per-boundary code while updates stay cheap.  Live
    boxes only ever grow on insert and are left stale (a superset) on delete,
    preserving the superset safety property; ``recompute`` tightens them.
    """

    def __init__(self, dims: int, bits: int):
        if not 0 <= bits <= 16:
            raise ValueError("bits must be in [0, 16]")
        self.dims = dims
        self.bits = bits
        self._live: dict[int, Rect] = {}
        self._track: set[int] | None = None

    @property
    def enabled(self) -> bool:
        return self.bits > 0

    def begin_tracking(self) -> None:
        """Record which node ids :meth:`set`/:meth:`merge_point`/:meth:`drop`
        touch (the write-ahead log commits the delta, not the whole table)."""
        self._track = set()

    def end_tracking(self) -> dict[int, Rect | None]:
        """Stop tracking; map of touched ids to their final live box
        (``None`` for dropped entries)."""
        touched = self._track or set()
        self._track = None
        return {node_id: self._live.get(node_id) for node_id in touched}

    def set(self, node_id: int, live: Rect) -> None:
        if self._track is not None:
            self._track.add(node_id)
        self._live[node_id] = live

    def get(self, node_id: int) -> Rect | None:
        return self._live.get(node_id)

    def drop(self, node_id: int) -> None:
        if self._track is not None:
            self._track.add(node_id)
        self._live.pop(node_id, None)

    def copy(self) -> "ELSTable":
        """An independent table with the same entries (``Rect`` values are
        immutable once stored, so sharing them is safe)."""
        dup = ELSTable(self.dims, self.bits)
        dup._live = dict(self._live)
        return dup

    def items(self) -> list[tuple[int, Rect]]:
        """Snapshot of ``(node_id, live box)`` pairs, sorted by node id.

        The public view persistence and diagnostics iterate — callers never
        touch the underlying table."""
        return sorted(self._live.items())

    def merge_point(self, node_id: int, point: np.ndarray) -> None:
        """Grow a node's live box to absorb a newly inserted point."""
        if self._track is not None:
            self._track.add(node_id)
        live = self._live.get(node_id)
        self._live[node_id] = (
            live.merge_point(point)
            if live is not None
            else Rect(np.asarray(point, dtype=np.float64), np.asarray(point, dtype=np.float64))
        )

    def effective_rect(self, node_id: int, region: Rect) -> Rect:
        """What the search actually prunes with: the quantized live box, or
        the full region when ELS is disabled or the node is unknown."""
        if not self.enabled:
            return region
        live = self._live.get(node_id)
        if live is None:
            return region
        clipped = live.intersection(region)
        if clipped is None:
            # A stale live box can drift outside a shrunk region; fall back.
            return region
        return quantize_live_rect(clipped, region, self.bits)

    @property
    def memory_bytes(self) -> int:
        """Side-table footprint: ``2 * dims * bits`` bits per node."""
        if not self.enabled:
            return 0
        return (2 * self.dims * self.bits * len(self._live) + 7) // 8

    def __len__(self) -> int:
        return len(self._live)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._live
