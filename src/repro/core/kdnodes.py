"""The modified intranode kd-tree (paper Section 3.1).

Every hybrid-tree *index node* organises its children as a small kd-tree kept
inside the node's page.  The modification over a regular kd-tree is that each
internal node carries **two** split positions:

- ``lsp`` — the high boundary of the left (lower-side) partition, and
- ``rsp`` — the low boundary of the right (higher-side) partition.

``lsp == rsp`` is a clean (disjoint) split; ``lsp > rsp`` is an overlapping
split, the relaxation that lets the hybrid tree avoid the KDB-tree's cascading
splits.  ``lsp < rsp`` (a coverage gap) is never produced; the invariant
``lsp >= rsp`` is asserted throughout and checked by ``validate_kdtree``.

The child bounding regions are never stored: they are *derived* from the kd
structure by the recursive mapping of Section 3.1 (``leaves_with_regions``),
so the fanout stays independent of dimensionality.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.geometry.rect import Rect


class KDLeaf:
    """A kd-tree leaf: a pointer to one child page of the index node."""

    __slots__ = ("child_id",)

    def __init__(self, child_id: int):
        self.child_id = child_id

    def __repr__(self) -> str:
        return f"KDLeaf({self.child_id})"


class KDInternal:
    """A kd split with dual positions; children are ``KDLeaf | KDInternal``."""

    __slots__ = ("dim", "lsp", "rsp", "left", "right")

    def __init__(
        self,
        dim: int,
        lsp: float,
        rsp: float,
        left: "KDNode",
        right: "KDNode",
    ):
        if lsp < rsp:
            raise ValueError(f"coverage gap: lsp ({lsp}) < rsp ({rsp})")
        self.dim = dim
        self.lsp = float(lsp)
        self.rsp = float(rsp)
        self.left = left
        self.right = right

    @property
    def overlap(self) -> float:
        """Width of the overlap zone along the split dimension."""
        return self.lsp - self.rsp

    def __repr__(self) -> str:
        return f"KDInternal(dim={self.dim}, lsp={self.lsp}, rsp={self.rsp})"


KDNode = KDLeaf | KDInternal


def count_leaves(node: KDNode) -> int:
    """Number of children the index node has (kd leaves).

    Iterative, like the codec's kd walks: a degenerate intranode kd-tree
    on a large page can be deeper than the interpreter's recursion limit.
    """
    count = 0
    stack = [node]
    while stack:
        kd = stack.pop()
        if isinstance(kd, KDLeaf):
            count += 1
        else:
            stack.append(kd.right)
            stack.append(kd.left)
    return count


def count_internals(node: KDNode) -> int:
    if isinstance(node, KDLeaf):
        return 0
    return 1 + count_internals(node.left) + count_internals(node.right)


def depth(node: KDNode) -> int:
    """Longest root-to-leaf path length (0 for a single leaf)."""
    if isinstance(node, KDLeaf):
        return 0
    return 1 + max(depth(node.left), depth(node.right))


def iter_leaves(node: KDNode) -> Iterator[KDLeaf]:
    """Yield kd leaves left-to-right (iterative; see :func:`count_leaves`)."""
    stack = [node]
    while stack:
        kd = stack.pop()
        if isinstance(kd, KDLeaf):
            yield kd
        else:
            stack.append(kd.right)
            stack.append(kd.left)


def iter_internals(node: KDNode) -> Iterator[KDInternal]:
    if isinstance(node, KDInternal):
        yield node
        yield from iter_internals(node.left)
        yield from iter_internals(node.right)


def child_ids(node: KDNode) -> list[int]:
    """Page ids of all children, left-to-right."""
    return [leaf.child_id for leaf in iter_leaves(node)]


def leaves_with_regions(node: KDNode, region: Rect) -> Iterator[tuple[KDLeaf, Rect]]:
    """The Section 3.1 mapping: derive each child's bounding region.

    Given the index node's own region, the left child of a split on
    ``(dim, lsp, rsp)`` gets ``region ∩ {x_dim <= lsp}`` and the right child
    ``region ∩ {x_dim >= rsp}``; applied recursively down to the kd leaves.
    """
    if isinstance(node, KDLeaf):
        yield node, region
        return
    yield from leaves_with_regions(node.left, region.clip_below(node.dim, node.lsp))
    yield from leaves_with_regions(node.right, region.clip_above(node.dim, node.rsp))


def region_of_child(node: KDNode, region: Rect, child_id: int) -> Rect:
    """Region of one specific child (raises ``KeyError`` if absent)."""
    for leaf, leaf_region in leaves_with_regions(node, region):
        if leaf.child_id == child_id:
            return leaf_region
    raise KeyError(f"child {child_id} not in this kd-tree")


def replace_leaf(node: KDNode, child_id: int, replacement: KDNode) -> KDNode:
    """Return the kd-tree with the leaf for ``child_id`` swapped for
    ``replacement`` (identity elsewhere).  Used when a child splits: its leaf
    becomes a fresh ``KDInternal`` over the two halves.
    """
    if isinstance(node, KDLeaf):
        return replacement if node.child_id == child_id else node
    node.left = replace_leaf(node.left, child_id, replacement)
    node.right = replace_leaf(node.right, child_id, replacement)
    return node


def remove_leaf(node: KDNode, child_id: int) -> KDNode | None:
    """Return the kd-tree with the leaf for ``child_id`` pruned.

    The leaf's sibling subtree is promoted into its parent's place, which
    implicitly widens the regions of the surviving side (their constraints
    from the removed internal node disappear) without disturbing any other
    pairwise separation.  Returns ``None`` if the whole tree was that leaf.
    """
    if isinstance(node, KDLeaf):
        return None if node.child_id == child_id else node
    left = remove_leaf(node.left, child_id)
    if left is None:
        return node.right
    right = remove_leaf(node.right, child_id)
    if right is None:
        return left
    node.left = left
    node.right = right
    return node


def prune_to_children(node: KDNode, keep: set[int]) -> KDNode | None:
    """Restrict the kd-tree to the children in ``keep`` (index-node split).

    Internal nodes left with a single side are elided.  Because any two kept
    children retain their lowest common ancestor split, every pairwise
    separation (in particular the disjointness of data-level regions) is
    preserved exactly — this is why the hybrid tree *prunes* rather than
    rebuilds when an index node splits.
    """
    if isinstance(node, KDLeaf):
        return node if node.child_id in keep else None
    left = prune_to_children(node.left, keep)
    right = prune_to_children(node.right, keep)
    if left is None:
        return right
    if right is None:
        return left
    return KDInternal(node.dim, node.lsp, node.rsp, left, right)


def split_dimensions(node: KDNode) -> set[int]:
    """Dimensions actually used by splits in this kd-tree (Lemma 1 support)."""
    return {internal.dim for internal in iter_internals(node)}


def validate_kdtree(node: KDNode, region: Rect) -> None:
    """Assert structural invariants; raises ``AssertionError`` on violation.

    Checks ``lsp >= rsp`` everywhere, split positions within the region, and
    that derived child regions are proper sub-rectangles of the node region.
    """
    if isinstance(node, KDLeaf):
        return
    assert node.lsp >= node.rsp, f"gap at {node!r}"
    assert 0 <= node.dim < region.dims, f"bad dim at {node!r}"
    left_region = region.clip_below(node.dim, node.lsp)
    right_region = region.clip_above(node.dim, node.rsp)
    assert region.contains_rect(left_region)
    assert region.contains_rect(right_region)
    validate_kdtree(node.left, left_region)
    validate_kdtree(node.right, right_region)
