"""Structural statistics of a hybrid tree (Tables 1 and 2 evidence).

``compute_stats`` walks the tree once (uncharged accesses) and measures the
quantities the paper argues about: fanout (dimension-independence), node
utilization (the guarantee KDB-trees lack), the degree of overlap introduced
by relaxed splits, the set of dimensions actually used for splitting
(Lemma 1's implicit dimensionality reduction), and the ELS memory overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import kdnodes
from repro.core.nodes import DataNode, IndexNode
from repro.geometry.rect import Rect


@dataclass
class TreeStats:
    """Measured structural properties of one tree instance."""

    count: int = 0
    height: int = 0
    num_data_nodes: int = 0
    num_index_nodes: int = 0
    pages: int = 0
    avg_index_fanout: float = 0.0
    max_index_fanout: int = 0
    avg_data_utilization: float = 0.0
    min_data_utilization: float = 1.0
    kd_internal_count: int = 0
    overlapping_split_count: int = 0
    avg_normalized_overlap: float = 0.0
    split_dims_used: set[int] = field(default_factory=set)
    data_level_overlap_volume: float = 0.0
    els_memory_bytes: int = 0

    @property
    def overlap_fraction(self) -> float:
        """Fraction of kd splits that are overlapping (lsp > rsp)."""
        if self.kd_internal_count == 0:
            return 0.0
        return self.overlapping_split_count / self.kd_internal_count


def compute_stats(tree) -> TreeStats:
    """Measure a :class:`~repro.core.hybridtree.HybridTree` (or any index
    exposing the same node shapes)."""
    stats = TreeStats(count=len(tree), height=tree.height, pages=tree.pages())
    fanouts: list[int] = []
    utils: list[float] = []
    overlaps: list[float] = []
    data_regions: list[Rect] = []

    def walk(node_id: int, region: Rect) -> None:
        node = tree.nm.get(node_id, charge=False)
        if isinstance(node, DataNode):
            stats.num_data_nodes += 1
            utils.append(node.utilization())
            data_regions.append(region)
            return
        assert isinstance(node, IndexNode)
        stats.num_index_nodes += 1
        fanouts.append(node.fanout)
        for internal in kdnodes.iter_internals(node.kd_root):
            stats.kd_internal_count += 1
            stats.split_dims_used.add(internal.dim)
            span = region.high[internal.dim] - region.low[internal.dim]
            if internal.overlap > 0:
                stats.overlapping_split_count += 1
                overlaps.append(internal.overlap / span if span > 0 else 0.0)
            else:
                overlaps.append(0.0)
        for child_id, child_region in node.children_with_regions(region):
            walk(child_id, child_region)

    walk(tree.root_id, tree.bounds)
    if fanouts:
        stats.avg_index_fanout = float(np.mean(fanouts))
        stats.max_index_fanout = int(max(fanouts))
    if utils:
        stats.avg_data_utilization = float(np.mean(utils))
        stats.min_data_utilization = float(min(utils))
    if overlaps:
        stats.avg_normalized_overlap = float(np.mean(overlaps))
    stats.data_level_overlap_volume = _pairwise_overlap_volume(data_regions)
    stats.els_memory_bytes = tree.els.memory_bytes
    return stats


def _pairwise_overlap_volume(regions: list[Rect], sample_cap: int = 400) -> float:
    """Total pairwise intersection volume of data-level regions.

    Data-node *splits* are always clean (paper Section 3.6), so this is
    exactly zero until an overlapping *index* split above the data level
    lets regions in the two subtrees overlap; even then it stays orders of
    magnitude below the R-tree family's sibling overlap.  Quadratic, so
    capped at a deterministic sample for very large trees.
    """
    if len(regions) > sample_cap:
        step = len(regions) / sample_cap
        regions = [regions[int(i * step)] for i in range(sample_cap)]
    total = 0.0
    for i, a in enumerate(regions):
        for b in regions[i + 1 :]:
            total += a.overlap_volume(b)
    return total
