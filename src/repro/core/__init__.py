"""The hybrid tree — the paper's core contribution.

Public entry point: :class:`~repro.core.hybridtree.HybridTree`.  Supporting
modules implement the intranode kd representation (:mod:`~repro.core.kdnodes`),
node types (:mod:`~repro.core.nodes`), the EDA-optimal split algorithms
(:mod:`~repro.core.splits`), encoded live space (:mod:`~repro.core.els`),
bulk loading (:mod:`~repro.core.bulkload`) and structural statistics
(:mod:`~repro.core.stats`).
"""

from repro.core.els import ELSTable, quantize_live_rect
from repro.core.hybridtree import HybridTree
from repro.core.nodes import MAX_OID, OidRangeError
from repro.core.splits import (
    POLICY_EDA,
    POLICY_RR,
    POLICY_VAM,
    POSITION_MEDIAN,
    POSITION_MIDDLE,
    bipartition_intervals,
    choose_data_split,
    choose_index_split,
    reset_round_robin,
)
from repro.core.stats import TreeStats, compute_stats

__all__ = [
    "ELSTable",
    "HybridTree",
    "MAX_OID",
    "OidRangeError",
    "POLICY_EDA",
    "POLICY_RR",
    "POLICY_VAM",
    "POSITION_MEDIAN",
    "POSITION_MIDDLE",
    "TreeStats",
    "bipartition_intervals",
    "choose_data_split",
    "choose_index_split",
    "compute_stats",
    "quantize_live_rect",
    "reset_round_robin",
]
