"""The hybrid tree (paper Section 3): public API and tree operations.

A paged, height-balanced multidimensional index.  Index nodes organise their
children as intranode kd-trees with dual split positions (``lsp``/``rsp``),
so fanout is independent of dimensionality and intranode search is
logarithmic; regions may overlap only where a clean split would force
downward cascading splits — the paper's "hybrid" of space- and
data-partitioning.  Data nodes split cleanly on the EDA-optimal (maximum
extent) dimension; index nodes split by the 1-d interval bipartition and the
EDA criterion ``(w + r)/(s + r)``.  Dead space is eliminated with Encoded
Live Space (ELS) boxes kept in memory.

Supported queries: bounding-box range, point lookup, distance range and
exact/approximate k-nearest-neighbour under any
:class:`~repro.distances.Metric` supplied at query time.  All operations are
fully dynamic (inserts and deletes interleave with queries), and the tree can
be saved to / reopened from a real page file.
"""

from __future__ import annotations

import heapq
import io
import itertools
import operator
import os
import struct
import threading
import zlib

import numpy as np

from repro.core import kdnodes
from repro.core.els import ELSTable
from repro.core.kdnodes import KDInternal, KDLeaf, KDNode
from repro.core.nodes import MAX_OID, DataNode, IndexNode, OidRangeError
from repro.core.splits import (
    POLICY_EDA,
    POLICY_RR,
    POSITION_MIDDLE,
    choose_data_split,
    choose_index_split,
    reset_round_robin,
)
from repro.distances import L2, Metric
from repro.geometry.rect import Rect
from repro.storage import superblock as superblock_io
from repro.storage import wal as wal_io
from repro.storage.errors import PageCorruptionError, ReadOnlyStoreError
from repro.storage.iostats import AccessKind, IOStats
from repro.storage.nodemanager import NodeManager
from repro.storage.page import (
    PageLayout,
    data_node_capacity,
    kdtree_node_capacity,
)
from repro.storage.pagestore import (
    FilePageStore,
    OverlayPageStore,
    PageStore,
    SnapshotPageStore,
    VersionedOverlayStore,
)

ON_CORRUPTION_POLICIES = ("raise", "scan")


def _save_store(path: str, page_size: int) -> FilePageStore:
    """Open the store ``save`` writes through (crash tests swap this in
    for a :class:`~repro.storage.faults.FaultInjectingPageStore`)."""
    return FilePageStore(path, page_size, checksums=True)


def _f32(x: float) -> float:
    """Round a split position to float32, the precision pages store."""
    return float(np.float32(x))


class HybridTree:
    """Hybrid tree over a ``dims``-dimensional normalized feature space.

    Parameters
    ----------
    dims:
        Dimensionality of the feature vectors.
    page_size:
        Disk page size in bytes; node capacities derive from it (default
        4096, the paper's setting).
    min_fill:
        Utilization guarantee as a fraction of capacity (default 0.4).
    split_policy:
        ``"eda"`` for the paper's EDA-optimal splits, ``"vam"`` for the
        VAMSplit baseline of Figure 5(a,b).
    split_position:
        ``"middle"`` (paper, more cubic regions) or ``"median"`` ablation.
    els_bits:
        Encoded-live-space precision in bits per boundary; 0 disables ELS
        (Figure 5(c) sweeps this).
    expected_query_side:
        The query side length ``r`` the index-node EDA criterion optimizes
        for (Section 3.3; the paper's experiments use a fixed ``r``).
    bounds:
        The data space; defaults to the unit cube and grows automatically if
        out-of-range points arrive.
    store / stats:
        Optional page store and shared I/O accountant.
    on_corruption:
        Query-time policy when a page fails its integrity check
        (:class:`PageCorruptionError`).  ``"raise"`` (default) propagates
        the error; ``"scan"`` degrades the query to a sequential scan over
        the intact data pages of the backing file — answers stay available
        mid-workload, minus any entries whose data pages were lost.
    """

    def __init__(
        self,
        dims: int,
        *,
        page_size: int = 4096,
        min_fill: float = 0.4,
        split_policy: str = POLICY_EDA,
        split_position: str = POSITION_MIDDLE,
        els_bits: int = 4,
        expected_query_side: float = 0.1,
        bounds: Rect | None = None,
        store: PageStore | None = None,
        stats: IOStats | None = None,
        on_corruption: str = "raise",
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.dims = dims
        self.layout = PageLayout(page_size=page_size)
        self.data_capacity = data_node_capacity(dims, self.layout)
        self.index_capacity = kdtree_node_capacity(dims, self.layout)
        self.min_fill = min_fill
        self.split_policy = split_policy
        self.split_position = split_position
        self.expected_query_side = expected_query_side
        self.bounds = bounds if bounds is not None else Rect.unit(dims)
        if self.bounds.dims != dims:
            raise ValueError("bounds dimensionality mismatch")
        if split_policy == POLICY_RR:
            reset_round_robin()
        if on_corruption not in ON_CORRUPTION_POLICIES:
            raise ValueError(f"on_corruption must be one of {ON_CORRUPTION_POLICIES}")
        self.on_corruption = on_corruption
        self.degraded_queries = 0
        self.source_path: str | None = None
        self.read_only = False
        self.modified_since_save = False
        self.nm = NodeManager(store=store, stats=stats)
        self.els = ELSTable(dims, els_bits)
        self._root_id = self.nm.allocate()
        self.nm.put(self._root_id, DataNode(dims, self.data_capacity), charge=False)
        self._height = 1
        self._count = 0
        self._init_wal_state()

    def _init_wal_state(self) -> None:
        """Per-instance write-ahead-log state (no log attached yet)."""
        self.generation = 0
        self.wal: wal_io.WriteAheadLog | None = None
        self.wal_replayed_transactions = 0
        self._wal_depth = 0
        self._commit_lock = threading.RLock()
        self._carry_written: set[int] = set()
        self._carry_freed: set[int] = set()
        self._carry_els: dict[int, Rect | None] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Number of levels (1 = the root is a data node)."""
        return self._height

    @property
    def root_id(self) -> int:
        return self._root_id

    @property
    def io(self) -> IOStats:
        """The I/O accountant shared with the page store."""
        return self.nm.stats

    def pages(self) -> int:
        """Pages occupied by the tree."""
        return self.nm.store.allocated_pages

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls, vectors: np.ndarray, oids: np.ndarray | None = None, **kwargs
    ) -> "HybridTree":
        """Build a tree top-down from a full dataset (see
        :mod:`repro.core.bulkload`).  ``kwargs`` are constructor options."""
        from repro.core.bulkload import bulk_load_into

        vectors = np.asarray(vectors, dtype=np.float32)
        tree = cls(vectors.shape[1], **kwargs)
        bulk_load_into(tree, vectors, oids)
        return tree

    # ------------------------------------------------------------------
    # Insertion (Section 3.5; descent as in R-trees, kd-navigated)
    # ------------------------------------------------------------------
    def insert(self, vector: np.ndarray, oid: int) -> None:
        """Insert ``(vector, oid)``.  Duplicate vectors/oids are allowed."""
        v = self._check_vector(vector)
        oid = self._check_oid(oid)
        owns = self._wal_begin()
        try:
            self._insert_inner(v, oid)
        except BaseException:
            self._wal_abort(owns)
            raise
        self._wal_end(owns, "insert")

    def _insert_inner(self, v: np.ndarray, oid: int) -> None:
        if not self.bounds.contains_point(v):
            self.bounds = self.bounds.merge_point(v)

        # Prefer a root-to-leaf path whose regions all contain the point
        # (backtracking over overlap zones): no region ever widens, so the
        # data level stays overlap-free (Section 3.6).  Only when
        # overlapping index splits have left the point in a coverage hole
        # on *every* path does the greedy descent widen kd positions.
        descent = self._containment_descent(self._root_id, self.bounds, v)
        if descent is None:
            descent = self._greedy_descent(v)
        path, (node_id, node, _region) = descent[:-1], descent[-1]
        for ancestor_id, _, _ in path:
            self.els.merge_point(ancestor_id, v)
        self.els.merge_point(node_id, v)
        if not node.is_full:
            node.add(v, oid)
            self.nm.put(node_id, node)
        else:
            self._split_data_node(path, node_id, node, v, oid)
        self._count += 1
        self.modified_since_save = True
        self.invalidate_snapshot()

    def _containment_descent(
        self, node_id: int, region: Rect, v: np.ndarray
    ) -> list[tuple[int, object, Rect]] | None:
        """Depth-first search for a fully containing path; smallest-region
        children first (the zero-enlargement, min-volume R-tree rule)."""
        node = self.nm.get(node_id)
        if isinstance(node, DataNode):
            return [(node_id, node, region)]
        containing: list[tuple[float, int, Rect]] = []

        def collect(kd: KDNode, kd_region: Rect) -> None:
            if isinstance(kd, KDLeaf):
                containing.append((kd_region.volume(), kd.child_id, kd_region))
                return
            x = v[kd.dim]
            if x <= kd.lsp:
                collect(kd.left, kd_region.clip_below(kd.dim, kd.lsp))
            if x >= kd.rsp:
                collect(kd.right, kd_region.clip_above(kd.dim, kd.rsp))

        collect(node.kd_root, region)
        containing.sort(key=lambda t: t[0])
        for _, child_id, child_region in containing:
            sub = self._containment_descent(child_id, child_region, v)
            if sub is not None:
                return [(node_id, node, region)] + sub
        return None

    def _greedy_descent(self, v: np.ndarray) -> list[tuple[int, object, Rect]]:
        """Fallback descent that widens kd positions to absorb the point."""
        descent: list[tuple[int, object, Rect]] = []
        node_id, region = self._root_id, self.bounds
        node = self.nm.get(node_id)
        while isinstance(node, IndexNode):
            descent.append((node_id, node, region))
            node_id, region = self._choose_child(node, region, v)
            node = self.nm.get(node_id)
        descent.append((node_id, node, region))
        return descent

    def _check_vector(self, vector: np.ndarray) -> np.ndarray:
        v = np.asarray(vector, dtype=np.float32).astype(np.float64)
        if v.shape != (self.dims,):
            raise ValueError(f"expected a {self.dims}-d vector, got shape {v.shape}")
        if not np.all(np.isfinite(v)):
            raise ValueError("vector must be finite")
        return v

    def _check_oid(self, oid) -> int:
        """Validate an object id fits the uint32 slot data pages store.

        ``np.uint32(oid)`` would silently wrap out-of-range values (so a
        lookup or delete by the original oid would miss forever); reject
        them up front with a typed error instead.
        """
        try:
            value = operator.index(oid)
        except TypeError as exc:
            raise OidRangeError(
                f"oid must be an integer, got {type(oid).__name__}"
            ) from exc
        if not 0 <= value <= MAX_OID:
            raise OidRangeError(
                f"oid {value} is outside [0, {MAX_OID}], the uint32 range "
                "data pages store"
            )
        return value

    # ------------------------------------------------------------------
    # Write-ahead logging (repro.storage.wal)
    # ------------------------------------------------------------------
    def _wal_begin(self) -> bool:
        """Enter a mutation; returns True when this call owns the WAL
        transaction (the outermost mutation — deletes reinsert through
        :meth:`insert`, and those nested calls must not commit halfway)."""
        if isinstance(self.nm.store, SnapshotPageStore):
            raise ReadOnlyStoreError(
                "snapshot views are read-only; mutate through the owning tree"
            )
        if self.wal is None:
            return False
        self._wal_depth += 1
        if self._wal_depth > 1:
            return False
        self._commit_lock.acquire()
        self.nm.begin_mutation_tracking()
        self.els.begin_tracking()
        return True

    def _wal_abort(self, owns: bool) -> None:
        """Unwind a mutation that raised.  Nothing is logged — the durable
        state stays at the last commit — but the in-memory tree may be
        half-mutated, so the touched page/ELS sets are carried over into
        the next successful commit, which re-logs them and brings the log
        back in line with memory."""
        if self.wal is None:
            return
        self._wal_depth -= 1
        if not owns:
            return
        try:
            written, freed = self.nm.end_mutation_tracking()
            self._carry_written |= written
            self._carry_freed |= freed
            self._carry_els.update(self.els.end_tracking())
        finally:
            self._commit_lock.release()

    def _wal_end(self, owns: bool, kind: str) -> None:
        """Commit the outermost mutation: log full images of every touched
        live page, then the metadata delta, fsync (group commit), and only
        then write the pages through to the overlay store — so concurrent
        snapshot readers flip between committed states, never through the
        middle of a transaction."""
        if self.wal is None:
            return
        self._wal_depth -= 1
        if not owns:
            return
        try:
            written, freed = self.nm.end_mutation_tracking()
            els_delta = self.els.end_tracking()
            written |= self._carry_written
            freed |= self._carry_freed
            if self._carry_els:
                merged = dict(self._carry_els)
                merged.update(els_delta)
                els_delta = merged
            self._carry_written = set()
            self._carry_freed = set()
            self._carry_els = {}
            if not written and not freed and not els_delta:
                return  # a no-op mutation (e.g. delete of a missing entry)
            store = self.nm.store
            free_now = set(store.free_page_ids)
            live = [pid for pid in sorted(written) if pid not in free_now]
            images = {
                pid: self.nm.codec.encode(self.nm.get(pid, charge=False))
                for pid in live
            }
            for pid in live:
                self.wal.append_page(pid, images[pid])
            self.wal.append_commit(
                {
                    "kind": kind,
                    "count": self._count,
                    "root_id": self._root_id,
                    "height": self._height,
                    "bounds": [self.bounds.low.tolist(), self.bounds.high.tolist()],
                    "els": {
                        str(nid): (
                            None
                            if rect is None
                            else [rect.low.tolist(), rect.high.tolist()]
                        )
                        for nid, rect in sorted(els_delta.items())
                    },
                    "free_ids": sorted(free_now),
                    "next_id": store._next_id,
                }
            )
            self.wal.commit()
            # Write-through: the overlay now holds exactly the committed
            # images (snapshot COW preserves the pre-write versions), and
            # a later flush() will not redo the work.
            for pid, image in images.items():
                store.write(pid, image, charge=False)
                self.nm._dirty.discard(pid)
        finally:
            self._commit_lock.release()

    def snapshot_view(self) -> "HybridTree":
        """A read-only tree serving this tree's current *committed* state.

        Requires a WAL-enabled tree (``open(..., wal=True)``).  The view
        pins a page-version snapshot on the underlying
        :class:`VersionedOverlayStore`: a concurrent writer keeps
        inserting/deleting while every query on the view answers from the
        exact state at pin time, bit-identically.  The view carries its own
        :class:`IOStats` and node cache; :meth:`close` releases the pin
        (and the page versions it kept alive).
        """
        if self.wal is None or not isinstance(self.nm.store, VersionedOverlayStore):
            raise ValueError(
                "snapshot_view() requires a WAL-enabled tree (open(..., wal=True))"
            )
        from repro.storage.serialization import HybridNodeCodec

        with self._commit_lock:  # pin only at a transaction boundary
            store = SnapshotPageStore(self.nm.store)
            view = type(self).__new__(type(self))
            view.dims = self.dims
            view.layout = self.layout
            view.data_capacity = self.data_capacity
            view.index_capacity = self.index_capacity
            view.min_fill = self.min_fill
            view.split_policy = self.split_policy
            view.split_position = self.split_position
            view.expected_query_side = self.expected_query_side
            view.bounds = self.bounds
            view.on_corruption = self.on_corruption
            view.degraded_queries = 0
            view.source_path = self.source_path
            view.read_only = True
            view.modified_since_save = False
            view.nm = NodeManager(
                store=store,
                codec=HybridNodeCodec(
                    self.dims, self.data_capacity, self.layout.page_size
                ),
                stats=store.stats,
            )
            view.els = self.els.copy()
            view._root_id = self._root_id
            view._height = self._height
            view._count = self._count
            view._soa_snapshot = None
            view._soa_load_error = None
            view._init_wal_state()
            view.generation = self.generation
        return view

    def checkpoint(self) -> dict:
        """Fold the write-ahead log into a fresh superblock.

        Publishes the full tree state through :meth:`save`'s atomic
        tmp+rename (generation + 1), then resets the log pinned to the new
        generation.  Crash-safe at every point: before the rename the old
        file + old log reproduce the committed state; after the rename a
        not-yet-reset log has a stale generation and replay ignores it.
        Returns checkpoint statistics.
        """
        if self.wal is None:
            raise ValueError(
                "checkpoint() requires a WAL-enabled tree (open(..., wal=True))"
            )
        if self.source_path is None:
            raise ValueError("checkpoint() needs a source path; save() first")
        with self._commit_lock:
            folded_bytes = self.wal.size_bytes
            commits = self.wal.commit_count
            syncs = self.wal.sync_count
            self.save(self.source_path)
            return {
                "generation": self.generation,
                "wal_bytes_folded": folded_bytes,
                "commit_count": commits,
                "sync_count": syncs,
            }

    def _choose_child(
        self, node: IndexNode, region: Rect, point: np.ndarray
    ) -> tuple[int, Rect]:
        """Pick the child to descend into (min enlargement, ties by volume).

        Children tile or overlap the node's region, so a containing child
        almost always exists; among containing children the smallest region
        wins (zero enlargement for all of them).  If no child contains the
        point (possible after overlapping splits leave a one-sided hole), the
        least-enlargement leaf is chosen and the split positions on its kd
        path are widened to absorb the point — the hybrid-tree analogue of
        R-tree region enlargement.
        """
        containing: list[tuple[float, KDLeaf, Rect]] = []

        def collect(kd: KDNode, kd_region: Rect) -> None:
            if isinstance(kd, KDLeaf):
                containing.append((kd_region.volume(), kd, kd_region))
                return
            x = point[kd.dim]
            if x <= kd.lsp:
                collect(kd.left, kd_region.clip_below(kd.dim, kd.lsp))
            if x >= kd.rsp:
                collect(kd.right, kd_region.clip_above(kd.dim, kd.rsp))

        collect(node.kd_root, region)
        if containing:
            _, leaf, leaf_region = min(containing, key=lambda t: t[0])
            return leaf.child_id, leaf_region

        # No containing leaf: widen the cheapest leaf's kd path.
        best_leaf_id: int | None = None
        best_cost = (np.inf, np.inf)
        for leaf, leaf_region in kdnodes.leaves_with_regions(node.kd_root, region):
            cost = (leaf_region.enlargement(point), leaf_region.volume())
            if cost < best_cost:
                best_cost = cost
                best_leaf_id = leaf.child_id
        assert best_leaf_id is not None
        self._widen_path_to(node.kd_root, best_leaf_id, point)
        leaf_region = kdnodes.region_of_child(node.kd_root, region, best_leaf_id)
        return best_leaf_id, leaf_region

    def _widen_path_to(self, kd: KDNode, child_id: int, point: np.ndarray) -> bool:
        """Adjust lsp/rsp along the path to ``child_id`` so its region
        contains ``point``.  Widening only increases overlap, never creates
        gaps (``lsp`` grows / ``rsp`` shrinks)."""
        if isinstance(kd, KDLeaf):
            return kd.child_id == child_id
        if self._widen_path_to(kd.left, child_id, point):
            if point[kd.dim] > kd.lsp:
                kd.lsp = _f32(point[kd.dim])
            return True
        if self._widen_path_to(kd.right, child_id, point):
            if point[kd.dim] < kd.rsp:
                kd.rsp = _f32(point[kd.dim])
            return True
        return False

    # ------------------------------------------------------------------
    # Splitting
    # ------------------------------------------------------------------
    def _split_data_node(
        self,
        path: list[tuple[int, IndexNode, Rect]],
        node_id: int,
        node: DataNode,
        vector: np.ndarray,
        oid: int,
    ) -> None:
        points = np.vstack([node.points(), np.asarray(vector, dtype=np.float32)])
        oids = np.append(node.live_oids(), np.uint32(oid))
        split = choose_data_split(
            points, self.min_fill, self.split_policy, self.split_position
        )
        left = DataNode(self.dims, self.data_capacity)
        right = DataNode(self.dims, self.data_capacity)
        for idx in split.left_indices:
            left.add(points[idx], int(oids[idx]))
        for idx in split.right_indices:
            right.add(points[idx], int(oids[idx]))
        right_id = self.nm.allocate()
        self.nm.put(node_id, left)
        self.nm.put(right_id, right)
        self.els.set(node_id, left.live_rect())
        self.els.set(right_id, right.live_rect())
        pos = _f32(split.position)
        self._install_split(path, node_id, right_id, split.dim, pos, pos)

    def _split_index_node(self, path: list[tuple[int, IndexNode, Rect]]) -> None:
        node_id, node, region = path.pop()
        children = node.children_with_regions(region)
        split = choose_index_split(
            children, self.min_fill, self.expected_query_side, self.split_policy
        )
        left_kd = kdnodes.prune_to_children(node.kd_root, set(split.left_ids))
        right_kd = kdnodes.prune_to_children(node.kd_root, set(split.right_ids))
        assert left_kd is not None and right_kd is not None
        left_node = IndexNode(left_kd, node.level)
        right_node = IndexNode(right_kd, node.level)
        right_id = self.nm.allocate()
        self.nm.put(node_id, left_node)
        self.nm.put(right_id, right_node)
        self._refresh_els_from_children(node_id, left_node, region)
        self._refresh_els_from_children(right_id, right_node, region)
        self._install_split(
            path, node_id, right_id, split.dim, _f32(split.lsp), _f32(split.rsp)
        )

    def _refresh_els_from_children(
        self, node_id: int, node: IndexNode, region: Rect
    ) -> None:
        rects = []
        for child_id, child_region in node.children_with_regions(region):
            live = self.els.get(child_id)
            rects.append(live if live is not None else child_region)
        self.els.set(node_id, Rect.merge_all(rects))

    def _install_split(
        self,
        path: list[tuple[int, IndexNode, Rect]],
        old_id: int,
        new_id: int,
        dim: int,
        lsp: float,
        rsp: float,
    ) -> None:
        """Post a child split ``old -> (old, new)`` to the parent: the child's
        kd leaf becomes a fresh dual-position internal node.  Cascades upward
        (never downward) when the parent overflows; splits the root by
        growing a new root, keeping the tree height-balanced."""
        new_internal = KDInternal(dim, lsp, rsp, KDLeaf(old_id), KDLeaf(new_id))
        if not path:
            root = IndexNode(new_internal, level=self._height)
            new_root_id = self.nm.allocate()
            self.nm.put(new_root_id, root)
            self._root_id = new_root_id
            self._height += 1
            self._refresh_els_from_children(new_root_id, root, self.bounds)
            return
        parent_id, parent, _parent_region = path[-1]
        parent.kd_root = kdnodes.replace_leaf(parent.kd_root, old_id, new_internal)
        self.nm.put(parent_id, parent)
        if parent.fanout > self.index_capacity:
            self._split_index_node(path)

    # ------------------------------------------------------------------
    # Deletion (eliminate-and-reinsert, Section 3.5 / Guttman)
    # ------------------------------------------------------------------
    def delete(self, vector: np.ndarray, oid: int) -> bool:
        """Remove one entry matching ``(vector, oid)`` exactly.

        Returns ``True`` if an entry was removed.  Underfull data nodes are
        eliminated and their surviving entries reinserted; underfull index
        nodes are eliminated and their child subtrees reinserted at the
        correct level (the R-tree CondenseTree policy).
        """
        v = self._check_vector(vector)
        owns = self._wal_begin()
        try:
            removed = self._delete_inner(v, oid)
        except BaseException:
            self._wal_abort(owns)
            raise
        self._wal_end(owns, "delete")
        return removed

    def _delete_inner(self, v: np.ndarray, oid: int) -> bool:
        found = self._find_entry(v, oid)
        if found is None:
            return False
        path, node_id, node, entry_idx = found
        node.remove_at(entry_idx)
        self.nm.put(node_id, node)
        self._count -= 1
        self.modified_since_save = True
        self.invalidate_snapshot()
        min_entries = max(1, int(np.floor(self.min_fill * self.data_capacity)))
        if node.count >= min_entries or not path:
            if node.count > 0:
                self.els.set(node_id, node.live_rect())  # tighten eagerly
            elif not path:
                self.els.drop(node_id)
            return True
        # Underflow: eliminate the node and reinsert its entries.
        survivors = [
            (node.points()[i].copy(), int(node.live_oids()[i])) for i in range(node.count)
        ]
        self._remove_child(path, node_id)
        self._count -= len(survivors)
        for point, point_oid in survivors:
            self.insert(point, point_oid)
        return True

    def _find_entry(
        self, v: np.ndarray, oid: int
    ) -> tuple[list[tuple[int, IndexNode, Rect]], int, DataNode, int] | None:
        """DFS for the data node holding ``(v, oid)``, returning its path."""
        stack: list[tuple[int, Rect, list]] = [(self._root_id, self.bounds, [])]
        target = np.asarray(v, dtype=np.float32)
        while stack:
            node_id, region, path = stack.pop()
            node = self.nm.get(node_id)
            if isinstance(node, DataNode):
                idx = node.find_entry(target, oid)
                if idx is not None:
                    return path, node_id, node, idx
                continue
            new_path = path + [(node_id, node, region)]
            for child_id, child_region in node.children_with_regions(region):
                if not child_region.contains_point(v):
                    continue
                live = self.els.effective_rect(child_id, child_region)
                if live.contains_point(v):
                    stack.append((child_id, child_region, new_path))
        return None

    def _remove_child(
        self, path: list[tuple[int, IndexNode, Rect]], child_id: int
    ) -> None:
        parent_id, parent, parent_region = path[-1]
        parent.kd_root = kdnodes.remove_leaf(parent.kd_root, child_id)
        assert parent.kd_root is not None, "index nodes always hold >= 2 children"
        self.nm.free(child_id)
        self.els.drop(child_id)
        self.nm.put(parent_id, parent)
        min_children = max(2, int(np.floor(self.min_fill * self.index_capacity)))
        if parent_id == self._root_id:
            if parent.fanout == 1:
                only = parent.child_ids()[0]
                self.nm.free(parent_id)
                self.els.drop(parent_id)
                self._root_id = only
                self._height -= 1
            return
        if parent.fanout >= min_children:
            return
        # Index-node underflow: eliminate the parent, reinsert its subtrees.
        orphans = parent.children_with_regions(parent_region)
        self._remove_child(path[:-1], parent_id)
        for orphan_id, _orphan_region in orphans:
            self._reinsert_subtree(orphan_id, parent.level - 1)

    def _reinsert_subtree(self, subtree_id: int, subtree_level: int) -> None:
        """Re-attach an orphaned subtree at its original level.

        Descends by least enlargement of the subtree's live box, then pairs
        the orphan with the best-matching kd leaf under a new clean/minimal
        dual-position internal node.  Overflow is handled by the normal
        index-node split path.
        """
        live = self.els.get(subtree_id)
        if live is None:
            live = self.bounds
        center = live.center
        path: list[tuple[int, IndexNode, Rect]] = []
        node_id, region = self._root_id, self.bounds
        node = self.nm.get(node_id)
        while isinstance(node, IndexNode) and node.level > subtree_level + 1:
            path.append((node_id, node, region))
            self.els.set(node_id, (self.els.get(node_id) or live).merge(live))
            node_id, region = self._choose_child(node, region, center)
            node = self.nm.get(node_id)
        if not isinstance(node, IndexNode):
            raise RuntimeError("reinsert descended past the target level")
        # Attach: pair with the leaf whose region is cheapest to merge with.
        best: tuple[float, int, Rect] | None = None
        for leaf, leaf_region in kdnodes.leaves_with_regions(node.kd_root, region):
            cost = leaf_region.enlargement_rect(live)
            if best is None or cost < best[0]:
                best = (cost, leaf.child_id, leaf_region)
        assert best is not None
        _, buddy_id, buddy_region = best
        pair_kd = self._pair_children(buddy_id, buddy_region, subtree_id, live)
        node.kd_root = kdnodes.replace_leaf(node.kd_root, buddy_id, pair_kd)
        self.nm.put(node_id, node)
        self.els.set(node_id, (self.els.get(node_id) or live).merge(live))
        path.append((node_id, node, region))
        if node.fanout > self.index_capacity:
            self._split_index_node(path)

    def _pair_children(
        self, left_id: int, left_rect: Rect, right_id: int, right_rect: Rect
    ) -> KDInternal:
        """Build a dual-position internal separating two sibling regions on
        the dimension where they are most cleanly separable."""
        gaps = right_rect.low - left_rect.high  # >0 means clean gap
        reverse_gaps = left_rect.low - right_rect.high
        if float(reverse_gaps.max()) > float(gaps.max()):
            return self._pair_children(right_id, right_rect, left_id, left_rect)
        dim = int(np.argmax(gaps))
        lsp = _f32(left_rect.high[dim])
        rsp = _f32(right_rect.low[dim])
        if lsp < rsp:
            lsp = rsp = _f32((lsp + rsp) / 2.0)
        return KDInternal(dim, lsp, rsp, KDLeaf(left_id), KDLeaf(right_id))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_search(self, query: Rect) -> list[int]:
        """Object ids of all points inside the closed box ``query``."""
        if query.dims != self.dims:
            raise ValueError("query dimensionality mismatch")
        results: list[np.ndarray] = []

        def visit(node_id: int, region: Rect) -> None:
            node = self.nm.get(node_id)
            if isinstance(node, DataNode):
                if node.count:
                    mask = query.contains_points_mask(node.points())
                    if mask.any():
                        results.append(node.live_oids()[mask])
                return
            walk(node.kd_root, region)

        def walk(kd: KDNode, region: Rect) -> None:
            if isinstance(kd, KDLeaf):
                live = self.els.effective_rect(kd.child_id, region)
                if query.intersects(live):
                    visit(kd.child_id, region)
                return
            if query.low[kd.dim] <= kd.lsp:
                walk(kd.left, region.clip_below(kd.dim, kd.lsp))
            if query.high[kd.dim] >= kd.rsp:
                walk(kd.right, region.clip_above(kd.dim, kd.rsp))

        try:
            visit(self._root_id, self.bounds)
        except PageCorruptionError as exc:
            vectors, oids = self._degrade(exc)
            return [int(o) for o in oids[query.contains_points_mask(vectors)]]
        return [int(o) for arr in results for o in arr]

    def point_search(self, vector: np.ndarray) -> list[int]:
        """Object ids stored at exactly ``vector`` (float32 equality)."""
        v32 = np.asarray(vector, dtype=np.float32).astype(np.float64)
        return self.range_search(Rect(v32, v32))

    def distance_range(
        self, query: np.ndarray, radius: float, metric: Metric = L2
    ) -> list[tuple[int, float]]:
        """All ``(oid, distance)`` with ``distance <= radius`` under
        ``metric`` — the paper's distance-based range query, usable with a
        different metric on every call."""
        q = self._check_vector(query)
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out: list[tuple[int, float]] = []

        def visit(node_id: int, region: Rect) -> None:
            node = self.nm.get(node_id)
            if isinstance(node, DataNode):
                if node.count:
                    dists = metric.distance_batch(node.points().astype(np.float64), q)
                    for i in np.flatnonzero(dists <= radius):
                        out.append((int(node.live_oids()[i]), float(dists[i])))
                return
            walk(node.kd_root, region)

        def walk(kd: KDNode, region: Rect) -> None:
            if isinstance(kd, KDLeaf):
                live = self.els.effective_rect(kd.child_id, region)
                if metric.mindist_rect(q, live.low, live.high) <= radius:
                    visit(kd.child_id, region)
                return
            left_region = region.clip_below(kd.dim, kd.lsp)
            if metric.mindist_rect(q, left_region.low, left_region.high) <= radius:
                walk(kd.left, left_region)
            right_region = region.clip_above(kd.dim, kd.rsp)
            if metric.mindist_rect(q, right_region.low, right_region.high) <= radius:
                walk(kd.right, right_region)

        try:
            visit(self._root_id, self.bounds)
        except PageCorruptionError as exc:
            vectors, oids = self._degrade(exc)
            dists = metric.distance_batch(vectors.astype(np.float64), q)
            return [
                (int(oids[i]), float(dists[i]))
                for i in np.flatnonzero(dists <= radius)
            ]
        return out

    def knn(
        self,
        query: np.ndarray,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
    ) -> list[tuple[int, float]]:
        """The ``k`` nearest neighbours of ``query`` under ``metric``.

        Best-first branch-and-bound (Hjaltason & Samet style) over live-space
        boxes.  With ``approximation_factor = eps > 0`` the search prunes
        nodes whose lower bound exceeds ``best_k / (1 + eps)``, returning
        neighbours within a ``(1 + eps)`` factor of optimal — the paper's
        future-work approximate-NN mode.
        """
        q = self._check_vector(query)
        if k < 1:
            raise ValueError("k must be >= 1")
        if approximation_factor < 0:
            raise ValueError("approximation_factor must be >= 0")
        shrink = 1.0 / (1.0 + approximation_factor)
        counter = itertools.count()
        frontier: list[tuple[float, int, int, Rect]] = [
            (0.0, next(counter), self._root_id, self.bounds)
        ]
        # Max-heap of the best k, keyed by (distance, oid) with both parts
        # negated so the root is the *worst* retained neighbour.  The oid
        # component breaks kth-distance ties deterministically (smallest oid
        # wins), so repeated runs — and the batch engine — agree exactly.
        best: list[tuple[float, int]] = []

        def kth() -> float:
            return -best[0][0] if len(best) >= k else np.inf

        try:
            while frontier:
                bound, _, node_id, region = heapq.heappop(frontier)
                if bound > kth() * shrink:
                    break
                node = self.nm.get(node_id)
                if isinstance(node, DataNode):
                    if not node.count:
                        continue
                    dists = metric.distance_batch(node.points().astype(np.float64), q)
                    for i, dist in enumerate(dists):
                        dist = float(dist)
                        oid = int(node.live_oids()[i])
                        if len(best) < k:
                            heapq.heappush(best, (-dist, -oid))
                        elif (dist, oid) < (-best[0][0], -best[0][1]):
                            heapq.heapreplace(best, (-dist, -oid))
                    continue
                for child_id, child_region in node.children_with_regions(region):
                    live = self.els.effective_rect(child_id, child_region)
                    child_bound = metric.mindist_rect(q, live.low, live.high)
                    if child_bound <= kth() * shrink:
                        heapq.heappush(
                            frontier,
                            (child_bound, next(counter), child_id, child_region),
                        )
        except PageCorruptionError as exc:
            vectors, oids = self._degrade(exc)
            dists = metric.distance_batch(vectors.astype(np.float64), q)
            # Same deterministic (distance, oid) order the traversal returns.
            order = np.lexsort((oids, dists))[:k]
            return [(int(oids[i]), float(dists[i])) for i in order]
        return sorted(
            ((-neg_oid, -neg_dist) for neg_dist, neg_oid in best),
            key=lambda t: (t[1], t[0]),
        )

    def nearest_iter(self, query: np.ndarray, metric: Metric = L2):
        """Yield ``(oid, distance)`` in non-decreasing distance order.

        Hjaltason-Samet distance browsing: a single priority queue holds
        tree nodes (keyed by their live-box lower bound) and already-scored
        points; a point is emitted only once no pending node could beat it.
        This is the primitive behind ranked similarity queries (MARS-style
        "give me results until the user stops"), where k is unknown upfront.
        """
        q = self._check_vector(query)
        counter = itertools.count()
        # Entries: (key, tiebreak, kind, payload); kind 0 = point, 1 = node.
        heap: list[tuple[float, int, int, object]] = [
            (0.0, next(counter), 1, (self._root_id, self.bounds))
        ]
        while heap:
            key, _, kind, payload = heapq.heappop(heap)
            if kind == 0:
                yield payload, key  # (oid, distance)
                continue
            node_id, region = payload
            node = self.nm.get(node_id)
            if isinstance(node, DataNode):
                if node.count:
                    dists = metric.distance_batch(node.points().astype(np.float64), q)
                    for i, dist in enumerate(dists):
                        heapq.heappush(
                            heap,
                            (float(dist), next(counter), 0, int(node.live_oids()[i])),
                        )
                continue
            for child_id, child_region in node.children_with_regions(region):
                live = self.els.effective_rect(child_id, child_region)
                bound = metric.mindist_rect(q, live.low, live.high)
                heapq.heappush(
                    heap, (bound, next(counter), 1, (child_id, child_region))
                )

    def count_range(self, query: Rect) -> int:
        """Number of points in the closed box (same traversal/I/O as
        :meth:`range_search`, no result materialisation)."""
        if query.dims != self.dims:
            raise ValueError("query dimensionality mismatch")
        total = 0

        def visit(node_id: int, region: Rect) -> None:
            nonlocal total
            node = self.nm.get(node_id)
            if isinstance(node, DataNode):
                if node.count:
                    total += int(query.contains_points_mask(node.points()).sum())
                return
            walk(node.kd_root, region)

        def walk(kd: KDNode, region: Rect) -> None:
            if isinstance(kd, KDLeaf):
                live = self.els.effective_rect(kd.child_id, region)
                if query.intersects(live):
                    visit(kd.child_id, region)
                return
            if query.low[kd.dim] <= kd.lsp:
                walk(kd.left, region.clip_below(kd.dim, kd.lsp))
            if query.high[kd.dim] >= kd.rsp:
                walk(kd.right, region.clip_above(kd.dim, kd.rsp))

        try:
            visit(self._root_id, self.bounds)
        except PageCorruptionError as exc:
            vectors, _ = self._degrade(exc)
            return int(query.contains_points_mask(vectors).sum())
        return total

    # ------------------------------------------------------------------
    # Graceful degradation (``on_corruption="scan"``)
    # ------------------------------------------------------------------
    def _degrade(self, exc: PageCorruptionError) -> tuple[np.ndarray, np.ndarray]:
        """Handle a corrupt page hit mid-query per ``self.on_corruption``.

        Policy ``"raise"`` re-raises the typed error; ``"scan"`` abandons
        the index traversal and answers from a sequential scan of the
        intact data pages (see :meth:`_scan_entries`), trading the index's
        pruning for availability.
        """
        if self.on_corruption != "scan" or self.nm.codec is None:
            raise exc
        self.degraded_queries += 1
        return self._scan_entries()

    def _scan_entries(self) -> tuple[np.ndarray, np.ndarray]:
        """Sequentially scan every allocated page, collecting the entries of
        all data pages that still verify; corrupt or non-data pages are
        skipped.  Charges one sequential read per page scanned (the
        degraded query pays a relation-scan cost, not an index cost).

        Answers reflect the pages as persisted — the last ``save()`` plus
        any flushed mutations — which is exactly what survives a crash.

        Honors any ambient query deadline (``repro.resilience``): a
        degraded-to-scan query inside a ``timeout=`` batch can't run
        unbounded, and the pages scanned before the budget expired stay
        billed.
        """
        from repro.resilience import active_deadline

        deadline = active_deadline()
        store = self.nm.store
        vec_parts: list[np.ndarray] = []
        oid_parts: list[np.ndarray] = []
        for page_id in range(store._next_id):
            if deadline is not None and page_id % 128 == 0:
                deadline.check()
            self.nm.stats.record(AccessKind.SEQUENTIAL_READ)
            try:
                node = self.nm.codec.decode(store.read(page_id, charge=False))
            except (PageCorruptionError, ValueError, KeyError):
                continue
            if isinstance(node, DataNode) and node.count:
                vec_parts.append(node.points().copy())
                oid_parts.append(node.live_oids().copy())
        if not vec_parts:
            return (
                np.empty((0, self.dims), dtype=np.float32),
                np.empty(0, dtype=np.int64),
            )
        return np.vstack(vec_parts), np.concatenate(oid_parts).astype(np.int64)

    # ------------------------------------------------------------------
    # Batch queries (repro.engine: one shared traversal serves the batch)
    # ------------------------------------------------------------------
    def range_search_many(
        self, queries, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        """Batch form of :meth:`range_search`: one traversal, bit-identical
        results, each node charged once for the whole batch.  ``timeout``
        (seconds or a :class:`~repro.resilience.Deadline`) bounds the wall
        clock; ``on_timeout="partial"`` returns a
        :class:`~repro.resilience.PartialResult` instead of raising."""
        from repro.engine import range_search_many

        return range_search_many(self, queries, return_metrics, timeout, on_timeout)

    def distance_range_many(
        self, centers, radii, metric: Metric = L2, return_metrics: bool = False,
        timeout=None, on_timeout: str = "raise",
    ):
        """Batch form of :meth:`distance_range` (scalar or per-query radii)."""
        from repro.engine import distance_range_many

        return distance_range_many(
            self, centers, radii, metric, return_metrics, timeout, on_timeout
        )

    def knn_many(
        self,
        centers,
        k: int,
        metric: Metric = L2,
        approximation_factor: float = 0.0,
        return_metrics: bool = False,
        timeout=None,
        on_timeout: str = "raise",
    ):
        """Batch form of :meth:`knn` over a shared branch-and-bound pass."""
        from repro.engine import knn_many

        return knn_many(
            self, centers, k, metric, approximation_factor, return_metrics,
            timeout, on_timeout,
        )

    # -- struct-of-arrays snapshot lifecycle ---------------------------
    @property
    def soa_snapshot(self):
        """The attached SOA snapshot, or None (see :mod:`repro.engine.soa`)."""
        return getattr(self, "_soa_snapshot", None)

    def compile_snapshot(self, force: bool = False):
        """Compile (and attach) a struct-of-arrays snapshot of this tree.

        While attached, the batch query methods run on the vectorized SOA
        kernel (bit-identical results); ``save()`` persists it as a
        checksummed section and ``open()`` re-attaches it.  Cached until
        :meth:`invalidate_snapshot`; ``force=True`` recompiles."""
        from repro.engine.soa import compile_snapshot

        snap = getattr(self, "_soa_snapshot", None)
        if snap is None or force:
            snap = compile_snapshot(self)
            self._soa_snapshot = snap
        return snap

    def invalidate_snapshot(self) -> None:
        """Drop the attached snapshot (every mutation calls this)."""
        self._soa_snapshot = None

    def session(
        self,
        pin_levels: int = 2,
        workers: int = 1,
        mode: str = "thread",
        timeout=None,
        on_timeout: str = "raise",
        admission=None,
    ):
        """Open a :class:`repro.engine.QuerySession` pinning the hot upper
        ``pin_levels`` directory levels (each page charged once).  With
        ``workers > 1`` the session's batch queries run on a
        :class:`repro.engine.ParallelQueryEngine` over this tree's saved
        file (requires the tree to come from ``save``/``open``).
        ``timeout``/``on_timeout`` set session-default deadline semantics;
        ``admission`` attaches a
        :class:`~repro.resilience.QueryAdmissionController`."""
        from repro.engine import QuerySession

        return QuerySession(
            self, pin_levels=pin_levels, workers=workers, mode=mode,
            timeout=timeout, on_timeout=on_timeout, admission=admission,
        )

    # ------------------------------------------------------------------
    # Traversal-kernel protocol (repro.engine.kernel)
    # ------------------------------------------------------------------
    def trav_root(self):
        return self.root_id, self.bounds

    def trav_node(self, ref: int, charge: bool = True):
        return self.nm.get(ref, charge=charge)

    def trav_is_leaf(self, node) -> bool:
        return isinstance(node, DataNode)

    def trav_leaf_points(self, node):
        return node.points(), node.live_oids()

    def trav_children(self, node, region):
        from repro.engine.kernel import RectBound

        # The child's pruning bound is its ELS-quantized live-space box
        # clipped to the derived region — the same rect the single-query
        # paths test; the kd split tests are subsumed because the
        # effective rect is contained in every region along the kd path.
        return [
            (
                child_id,
                child_region,
                RectBound(self.els.effective_rect(child_id, child_region)),
            )
            for child_id, child_region in node.children_with_regions(region)
        ]

    def trav_degrade(self, exc: PageCorruptionError):
        return self._degrade(exc)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Write the tree to a single crash-consistent page file.

        The file holds the node pages at their stable allocator ids,
        followed by blob pages (the in-memory ELS table — Section 3.4 keeps
        ELS out of the node pages — the free list, and the data-space
        bounds) and a trailing superblock: root page id, page count, tree
        parameters and a checksum-of-checksums over the node pages (see
        :mod:`repro.storage.superblock`).  Every page is framed with a
        whole-page CRC32.

        The whole image is written to a temporary sibling, fsynced, and
        published with one atomic ``os.replace`` — so saving a
        lazily-faulting reopened tree *over its own path* is safe (the file
        it still reads from is never modified in place) and a crash at any
        write boundary leaves either the previous save or the new one,
        never a mixture.
        """
        from repro.storage.serialization import HybridNodeCodec

        with self._commit_lock:
            self._save_locked(os.fspath(path), HybridNodeCodec)

    def _save_locked(self, path: str, HybridNodeCodec) -> None:
        codec = HybridNodeCodec(self.dims, self.data_capacity, self.layout.page_size)
        tmp_pages = path + ".tmp"
        if os.path.exists(tmp_pages):
            os.remove(tmp_pages)
        generation = 0
        try:
            old_manifest, _ = superblock_io.read_superblock(path)
            generation = int(old_manifest.get("generation", 0)) + 1
        except (FileNotFoundError, PageCorruptionError, ValueError, KeyError):
            pass
        with _save_store(tmp_pages, self.layout.page_size) as store:
            seen: set[int] = set()
            crc_by_id: dict[int, int] = {}
            stack = [self._root_id]
            while stack:
                node_id = stack.pop()
                if node_id in seen:
                    continue
                seen.add(node_id)
                store.ensure_allocated(node_id)  # keep page ids stable
                node = self.nm.get(node_id, charge=False)
                page = codec.encode(node)
                crc_by_id[node_id] = struct.unpack_from("<I", page, 16)[0]
                store.write(node_id, page)
                if isinstance(node, IndexNode):
                    stack.extend(node.child_ids())
            page_count = store._next_id
            # Freed pages are exactly the allocator ids no live node owns;
            # recompute from reachability so the persisted free list is
            # correct even if in-memory free-list state drifted.
            free_ids = [pid for pid in range(page_count) if pid not in seen]
            # Compiled SOA snapshot, if attached: written as *raw* whole
            # pages right after the node region (no per-page frames — the
            # section is one contiguous byte range so the mmap path can
            # np.frombuffer it zero-copy), guarded by a section CRC32 in
            # the manifest.  fsck knows the section via manifest["soa"];
            # everything else skips pages past the node region.
            soa_loc = None
            snap = getattr(self, "_soa_snapshot", None)
            if snap is not None and snap.array_only:
                from repro.engine.soa import (
                    SNAPSHOT_SECTION_VERSION,
                    serialize_snapshot,
                )

                payload = serialize_snapshot(snap)
                page_size = self.layout.page_size
                soa_start = store._next_id
                for off in range(0, len(payload), page_size):
                    pid = store._next_id
                    store.ensure_allocated(pid)
                    store.write(pid, payload[off : off + page_size], charge=False)
                soa_loc = {
                    "start": soa_start,
                    "pages": store._next_id - soa_start,
                    "bytes": len(payload),
                    "crc32": zlib.crc32(payload) & 0xFFFFFFFF,
                    "version": SNAPSHOT_SECTION_VERSION,
                }
            manifest = {
                "format": superblock_io.SUPERBLOCK_FORMAT,
                "generation": generation,
                "page_size": self.layout.page_size,
                "page_count": page_count,
                "dims": self.dims,
                "min_fill": self.min_fill,
                "split_policy": self.split_policy,
                "split_position": self.split_position,
                "els_bits": self.els.bits,
                "expected_query_side": self.expected_query_side,
                "root_id": self._root_id,
                "height": self._height,
                "count": self._count,
                "checksum_of_checksums": superblock_io.checksum_of_checksums(
                    [crc_by_id.get(pid, 0) for pid in range(page_count)]
                ),
            }
            if soa_loc is not None:
                manifest["soa"] = soa_loc
            superblock_io.append_tail(
                store, manifest, {"els": self._els_blob(free_ids)}
            )
            store.flush()
        os.replace(tmp_pages, path)
        self._fsync_dir(path)
        self.source_path = os.path.abspath(path)
        self.modified_since_save = False
        self.generation = generation
        if self.wal is not None:
            # The published file now contains everything the log did: empty
            # the log and re-pin it to the new generation (moving it when
            # the tree was saved to a different path).  A crash before this
            # line leaves a stale-generation log that replay ignores.
            self.wal.reset(generation, wal_io.wal_path_for(path))

    def _els_blob(self, free_ids: list[int]) -> bytes:
        """Serialize the ELS table, free list and bounds into one npz blob."""
        entries = self.els.items()
        node_ids = np.array([node_id for node_id, _ in entries], dtype=np.int64)
        lows = (
            np.array([live.low for _, live in entries])
            if entries
            else np.empty((0, self.dims))
        )
        highs = (
            np.array([live.high for _, live in entries])
            if entries
            else np.empty((0, self.dims))
        )
        buf = io.BytesIO()
        np.savez(
            buf,
            node_ids=node_ids,
            lows=lows,
            highs=highs,
            free_ids=np.asarray(free_ids, dtype=np.int64),
            bounds_low=self.bounds.low,
            bounds_high=self.bounds.high,
        )
        return buf.getvalue()

    @staticmethod
    def _fsync_dir(path: str) -> None:
        """Make the rename durable (best effort on non-POSIX platforms)."""
        parent = os.path.dirname(os.path.abspath(path)) or "."
        try:
            dfd = os.open(parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dfd)
        except OSError:
            pass
        finally:
            os.close(dfd)

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        stats: IOStats | None = None,
        buffer_pages: int | None = None,
        on_corruption: str = "raise",
        mmap: bool = False,
        wal: bool = False,
    ) -> "HybridTree":
        """Reopen a saved tree; nodes fault in lazily from the page file.

        ``buffer_pages`` bounds the in-memory node cache (LRU, write-back):
        hits are then free, misses re-read and re-decode real pages — the
        behaviour of a disk-resident index under a fixed buffer pool.  The
        default (``None``) caches every touched node and charges one access
        per visit, the paper's cold-query accounting.

        Every page read verifies the page's frame (magic + CRC32) and
        raises :class:`PageCorruptionError` on mismatch; ``on_corruption``
        selects the query-time response (``"raise"`` or ``"scan"``).  The
        file itself is opened copy-on-write: all mutations stay in memory
        until the next ``save()``, so the published file can never be
        half-updated by a crash mid-session.

        ``mmap=True`` opens the **zero-copy read-only** path instead: the
        file is fsck'd once (every page CRC, reachability, the superblock's
        checksum-of-checksums), then mapped with
        :class:`~repro.storage.mmapstore.MmapPageStore` and decoded with
        ``HybridNodeCodec(copy=False, verify_checksums=False)`` — data-node
        vectors are read-only views over the OS page cache, steady-state
        reads pay no checksum and no copy.  The tree is strictly read-only:
        mutations raise :class:`~repro.core.nodes.FrozenNodeError` /
        :class:`~repro.storage.errors.ReadOnlyStoreError`.  The integrity
        contract assumes the file is not modified in place while mapped —
        which ``save()`` never does (atomic rename).

        **WAL replay** happens on *every* open: if a sidecar ``<path>.wal``
        exists and is pinned to this file's generation, its complete
        transactions are replayed into the (in-memory) overlay before the
        tree is returned, so any opener — including parallel-engine
        workers — sees the state as of the last durable commit.  Torn or
        uncommitted log tails are discarded, giving old-or-new recovery at
        transaction granularity.  ``wal=True`` additionally attaches a
        :class:`~repro.storage.wal.WriteAheadLog` so subsequent mutations
        are logged and group-committed, concurrent readers can pin
        snapshots (:meth:`snapshot_view`), and :meth:`checkpoint` folds
        the log back into the file; incompatible with ``mmap=True``.
        """
        from repro.storage.serialization import HybridNodeCodec

        if wal and mmap:
            raise ValueError("wal=True needs the writable open path (mmap=False)")
        path = os.fspath(path)
        manifest, page_size = superblock_io.read_superblock(path)
        generation = int(manifest.get("generation", 0))
        scan = wal_io.usable_scan(path, generation)
        replay = scan is not None and scan.transactions > 0
        blob = np.load(
            io.BytesIO(superblock_io.read_blob(path, manifest, "els", page_size))
        )
        tree = cls.__new__(cls)
        tree.dims = int(manifest["dims"])
        tree.layout = PageLayout(page_size=page_size)
        tree.data_capacity = data_node_capacity(tree.dims, tree.layout)
        tree.index_capacity = kdtree_node_capacity(tree.dims, tree.layout)
        tree.min_fill = manifest["min_fill"]
        tree.split_policy = manifest["split_policy"]
        tree.split_position = manifest["split_position"]
        tree.expected_query_side = manifest["expected_query_side"]
        tree.bounds = Rect(blob["bounds_low"], blob["bounds_high"])
        if on_corruption not in ON_CORRUPTION_POLICIES:
            raise ValueError(f"on_corruption must be one of {ON_CORRUPTION_POLICIES}")
        tree.on_corruption = on_corruption
        tree.degraded_queries = 0
        tree.source_path = os.path.abspath(path)
        tree.read_only = mmap
        tree.modified_since_save = False
        mmap_store = None
        if mmap:
            from repro.storage.mmapstore import MmapPageStore

            # The whole-file audit happens here (verify="fsck"); the codec
            # below can then skip per-decode CRCs and hand out views.
            mmap_store = MmapPageStore(path, page_size, stats=stats, verify="fsck")
            # With committed WAL transactions to replay, the mapping alone
            # is stale: wrap it in an in-memory overlay to hold the
            # replayed pages (still strictly read-only from the outside).
            store: PageStore = (
                OverlayPageStore(mmap_store) if replay else mmap_store
            )
            codec = HybridNodeCodec(
                tree.dims,
                tree.data_capacity,
                page_size,
                copy=False,
                verify_checksums=False,
            )
        else:
            base = FilePageStore(path, page_size, stats=stats, checksums=True)
            store = VersionedOverlayStore(base) if wal else OverlayPageStore(base)
            codec = HybridNodeCodec(tree.dims, tree.data_capacity, page_size)
        store.set_allocator_state(
            int(manifest["page_count"]), [int(pid) for pid in blob["free_ids"]]
        )
        tree.nm = NodeManager(
            store=store, codec=codec, stats=stats, max_cached=buffer_pages
        )
        tree.els = ELSTable(tree.dims, int(manifest["els_bits"]))
        for node_id, low, high in zip(blob["node_ids"], blob["lows"], blob["highs"]):
            tree.els.set(int(node_id), Rect(low, high))
        tree._root_id = int(manifest["root_id"])
        tree._height = int(manifest["height"])
        tree._count = int(manifest["count"])
        tree._init_wal_state()
        tree.generation = generation
        if replay:
            meta = wal_io.apply_scan(scan, store, page_size)
            tree._apply_replay_meta(meta, store)
            tree.wal_replayed_transactions = scan.transactions
            # The persisted SOA snapshot predates the replayed mutations.
            tree._soa_snapshot = None
            tree._soa_load_error = (
                f"stale after WAL replay of {scan.transactions} transaction(s)"
                if manifest.get("soa") is not None
                else None
            )
        else:
            tree._attach_saved_snapshot(manifest, page_size, mmap_store)
        if wal:
            tree.wal = wal_io.WriteAheadLog(
                wal_io.wal_path_for(path), page_size, generation
            )
        return tree

    def _apply_replay_meta(self, meta: dict, store: PageStore) -> None:
        """Install the merged commit metadata :func:`repro.storage.wal.apply_scan`
        returned: final count/root/height/bounds, the accumulated ELS delta,
        and the allocator state after the last committed transaction."""
        if "count" in meta:
            self._count = int(meta["count"])
        if "root_id" in meta:
            self._root_id = int(meta["root_id"])
        if "height" in meta:
            self._height = int(meta["height"])
        if "bounds" in meta:
            low, high = meta["bounds"]
            self.bounds = Rect(
                np.asarray(low, dtype=np.float64), np.asarray(high, dtype=np.float64)
            )
        for key, val in meta.get("els", {}).items():
            node_id = int(key)
            if val is None:
                self.els.drop(node_id)
            else:
                self.els.set(
                    node_id,
                    Rect(
                        np.asarray(val[0], dtype=np.float64),
                        np.asarray(val[1], dtype=np.float64),
                    ),
                )
        if "next_id" in meta:
            store.set_allocator_state(
                int(meta["next_id"]), [int(p) for p in meta.get("free_ids", [])]
            )

    def _attach_saved_snapshot(
        self, manifest: dict, page_size: int, mmap_store
    ) -> None:
        """Re-attach the persisted SOA snapshot, if the file carries one.

        Zero-copy over the store's mapping on the mmap path, a single read
        otherwise.  Any integrity problem (CRC mismatch, truncation,
        unparseable section) *degrades* — the tree opens fine and queries
        run on the object-walk kernel; the reason is kept in
        ``_soa_load_error`` and ``repro fsck`` reports it.
        """
        self._soa_load_error: str | None = None
        loc = manifest.get("soa")
        if loc is None:
            return
        from repro.engine.soa import deserialize_snapshot
        from repro.engine.soa.persist import SnapshotFormatError

        try:
            start = int(loc["start"]) * page_size
            nbytes = int(loc["bytes"])
            if mmap_store is not None:
                section = mmap_store._view[start : start + nbytes]
            else:
                with open(self.source_path, "rb") as f:
                    f.seek(start)
                    section = f.read(nbytes)
            if len(section) != nbytes:
                raise SnapshotFormatError("snapshot section truncated")
            if zlib.crc32(section) & 0xFFFFFFFF != int(loc["crc32"]):
                raise SnapshotFormatError("snapshot section CRC mismatch")
            self._soa_snapshot = deserialize_snapshot(section)
        except (SnapshotFormatError, KeyError, ValueError, OSError) as exc:
            self._soa_load_error = str(exc)

    def close(self) -> None:
        """Release the backing store (file handle / mmap), if it has one.

        Safe on any tree; in-memory stores are a no-op.  Zero-copy node
        views handed out by an mmap-opened tree keep the mapping alive
        until they are garbage-collected (see
        :meth:`~repro.storage.mmapstore.MmapPageStore.close`).
        """
        if self.wal is not None:
            self.wal.close()
            self.wal = None
        close = getattr(self.nm.store, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------
    # Maintenance / verification
    # ------------------------------------------------------------------
    def rebuild_els(self) -> None:
        """Recompute every live-space box exactly (tightens stale entries)."""

        def rebuild(node_id: int) -> Rect | None:
            node = self.nm.get(node_id, charge=False)
            if isinstance(node, DataNode):
                if node.count == 0:
                    self.els.drop(node_id)
                    return None
                live = node.live_rect()
            else:
                child_rects = [rebuild(c) for c in node.child_ids()]
                child_rects = [r for r in child_rects if r is not None]
                if not child_rects:
                    self.els.drop(node_id)
                    return None
                live = Rect.merge_all(child_rects)
            self.els.set(node_id, live)
            return live

        rebuild(self._root_id)

    def validate(self) -> None:
        """Assert every structural invariant; raises ``AssertionError``.

        Checked: height balance, capacity and utilization bounds, kd-tree
        well-formedness (``lsp >= rsp``, in-region positions), points inside
        their region chain, ELS boxes between live space and region, entry
        count bookkeeping.
        """
        min_entries = max(1, int(np.floor(self.min_fill * self.data_capacity)))
        total = 0
        leaf_depths: set[int] = set()

        def check(node_id: int, region: Rect, depth: int, is_root: bool) -> None:
            nonlocal total
            node = self.nm.get(node_id, charge=False)
            if isinstance(node, DataNode):
                leaf_depths.add(depth)
                total += node.count
                assert node.count <= self.data_capacity
                if not is_root:
                    assert node.count >= min_entries, (
                        f"data node {node_id} under-utilised: {node.count}"
                    )
                if node.count:
                    points = node.points().astype(np.float64)
                    assert np.all(points >= region.low - 1e-9) and np.all(
                        points <= region.high + 1e-9
                    ), f"points escape region of node {node_id}"
                    live = self.els.get(node_id)
                    if live is not None and self.els.enabled:
                        box = node.live_rect()
                        assert np.all(live.low <= box.low + 1e-9)
                        assert np.all(live.high >= box.high - 1e-9)
                return
            assert 2 <= node.fanout <= self.index_capacity, (
                f"index node {node_id} fanout {node.fanout}"
            )
            kdnodes.validate_kdtree(node.kd_root, region)
            for child_id, child_region in node.children_with_regions(region):
                child = self.nm.get(child_id, charge=False)
                child_level = child.level if isinstance(child, IndexNode) else 0
                assert child_level == node.level - 1, "level mismatch"
                check(child_id, child_region, depth + 1, False)

        check(self._root_id, self.bounds, 0, True)
        assert len(leaf_depths) == 1, f"unbalanced leaf depths: {leaf_depths}"
        assert total == self._count, f"count mismatch: {total} != {self._count}"
