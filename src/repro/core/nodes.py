"""Hybrid-tree node types: data nodes and kd-organised index nodes.

Data nodes store raw ``(vector, oid)`` entries in pre-allocated numpy blocks
so that query-time scans (range masks, batch distances) run at numpy speed.
Index nodes hold only their intranode kd-tree; child regions are derived on
demand (see :mod:`repro.core.kdnodes`).
"""

from __future__ import annotations

import numpy as np

from repro.core import kdnodes
from repro.core.kdnodes import KDNode
from repro.geometry.rect import Rect


MAX_OID = 2**32 - 1
"""Largest object id a data page can store (oids are packed as uint32)."""


class OidRangeError(ValueError):
    """An object id that cannot be stored losslessly in a data page.

    Data nodes pack oids as uint32; ``numpy`` would silently wrap an
    out-of-range value (``np.uint32(2**32) == 0``), corrupting lookups and
    deletes much later.  The insert and bulk-load paths validate instead
    and raise this typed error up front.
    """


class FrozenNodeError(RuntimeError):
    """A mutation reached a frozen (read-only) data node.

    Zero-copy decoding (``HybridNodeCodec(copy=False)``) wraps a data
    node's vectors and oids as views over the mmapped page instead of
    private arrays; such nodes must never be mutated in place, so ``add``
    and ``remove_at`` raise this instead of silently corrupting — or
    crashing inside — the shared mapping.
    """


class DataNode:
    """A leaf page: up to ``capacity`` feature vectors with object ids.

    Vectors are stored as ``float32`` rows — the same precision the byte
    budget of :func:`repro.storage.page.data_node_capacity` charges for — so
    the in-memory representation and the serialized page hold identical
    values and persistence round trips are exact.

    A node is normally a private, mutable buffer pair.  The zero-copy read
    path constructs *frozen* nodes instead (:meth:`from_views`): the arrays
    are read-only views over the mmapped page, every query kernel works on
    them unchanged, and any mutation attempt raises
    :class:`FrozenNodeError`.
    """

    __slots__ = ("vectors", "oids", "count", "_capacity", "_frozen")

    LEVEL = 0

    def __init__(self, dims: int, capacity: int):
        if capacity < 2:
            raise ValueError("data node capacity must be at least 2")
        self.vectors = np.empty((capacity, dims), dtype=np.float32)
        self.oids = np.empty(capacity, dtype=np.uint32)
        self.count = 0
        self._capacity = capacity
        self._frozen = False

    @classmethod
    def from_views(
        cls, vectors: np.ndarray, oids: np.ndarray, capacity: int | None = None
    ) -> "DataNode":
        """Build a frozen node directly over decoded array views.

        ``vectors`` is the ``(count, dims)`` float32 block and ``oids`` the
        matching uint32 vector — typically ``np.frombuffer`` views into an
        mmapped page, which arrive read-only and are kept that way.  No
        spare capacity is allocated: the node exists to be scanned, never
        grown.
        """
        if vectors.ndim != 2 or oids.shape != (vectors.shape[0],):
            raise ValueError(
                f"mismatched views: vectors {vectors.shape}, oids {oids.shape}"
            )
        node = cls.__new__(cls)
        node.vectors = vectors
        node.oids = oids
        node.count = int(vectors.shape[0])
        node._capacity = int(capacity) if capacity is not None else node.count
        node._frozen = True
        return node

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def dims(self) -> int:
        return self.vectors.shape[1]

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def is_full(self) -> bool:
        return self.count >= self.capacity

    def points(self) -> np.ndarray:
        """View of the live vector rows (do not mutate)."""
        return self.vectors[: self.count]

    def live_oids(self) -> np.ndarray:
        return self.oids[: self.count]

    def add(self, vector: np.ndarray, oid: int) -> None:
        if self._frozen:
            raise FrozenNodeError(
                "cannot add to a frozen data node (zero-copy mmap read path); "
                "reopen the tree without mmap to mutate it"
            )
        if self.is_full:
            raise RuntimeError("data node overflow; caller must split first")
        self.vectors[self.count] = vector
        self.oids[self.count] = oid
        self.count += 1

    def remove_at(self, index: int) -> None:
        """Remove the entry at ``index`` by swapping in the last entry."""
        if self._frozen:
            raise FrozenNodeError(
                "cannot remove from a frozen data node (zero-copy mmap read "
                "path); reopen the tree without mmap to mutate it"
            )
        if not 0 <= index < self.count:
            raise IndexError(index)
        last = self.count - 1
        if index != last:
            self.vectors[index] = self.vectors[last]
            self.oids[index] = self.oids[last]
        self.count = last

    def find_entry(self, vector: np.ndarray, oid: int) -> int | None:
        """Index of the entry matching ``(vector, oid)`` exactly, or None."""
        matches = np.flatnonzero(self.live_oids() == oid)
        target = np.asarray(vector, dtype=np.float32)
        for idx in matches:
            if np.array_equal(self.vectors[idx], target):
                return int(idx)
        return None

    def live_rect(self) -> Rect:
        """Bounding box of the stored points (the live-space BR)."""
        if self.count == 0:
            raise ValueError("empty data node has no live rect")
        return Rect.from_points(self.points())

    def utilization(self) -> float:
        return self.count / self.capacity


class IndexNode:
    """An internal page: an intranode kd-tree over child page pointers."""

    __slots__ = ("kd_root", "level")

    def __init__(self, kd_root: KDNode, level: int):
        if level < 1:
            raise ValueError("index nodes live at level >= 1")
        self.kd_root = kd_root
        self.level = level

    @property
    def fanout(self) -> int:
        return kdnodes.count_leaves(self.kd_root)

    def child_ids(self) -> list[int]:
        return kdnodes.child_ids(self.kd_root)

    def children_with_regions(self, region: Rect) -> list[tuple[int, Rect]]:
        """Children and their derived bounding regions (Section 3.1 mapping)."""
        return [
            (leaf.child_id, leaf_region)
            for leaf, leaf_region in kdnodes.leaves_with_regions(self.kd_root, region)
        ]

    def utilization(self, capacity: int) -> float:
        return self.fanout / capacity
