"""Top-down bulk loading of a hybrid tree.

Dynamic insertion builds the paper's tree one point at a time; for large
benchmark datasets we also provide the standard top-down alternative: apply
the same split rules (EDA dimension choice, middle position, utilization
bound) recursively over the whole dataset until partitions fit a data page,
producing one global kd split tree whose leaves are data nodes; then chop
that tree into page-sized index nodes level by level.  Every split is clean
(``lsp == rsp``), so a bulk-loaded tree starts with zero overlap — the
paper's structure in its best case; subsequent dynamic inserts and deletes
work on it normally and introduce overlap only where the paper allows it.
"""

from __future__ import annotations

import numpy as np

from repro.core import kdnodes
from repro.core.kdnodes import KDInternal, KDLeaf, KDNode
from repro.core.nodes import MAX_OID, DataNode, IndexNode, OidRangeError
from repro.core.splits import choose_data_split
from repro.geometry.rect import Rect


def _check_oids(oids, n: int) -> np.ndarray:
    """Validate an oid array fits the uint32 slots data pages store.

    ``np.asarray(oids, dtype=np.uint32)`` would silently wrap int64 values
    (``2**32`` becomes ``0``), so lookups and deletes by the original oid
    would miss forever; reject non-integer dtypes and out-of-range values
    with a typed error instead.
    """
    oids = np.asarray(oids)
    if oids.shape != (n,):
        raise ValueError("oids must align with vectors")
    if oids.dtype.kind not in "iu":
        raise OidRangeError(
            f"oids must be an integer array, got dtype {oids.dtype}"
        )
    if n:
        lo, hi = int(oids.min()), int(oids.max())
        if lo < 0 or hi > MAX_OID:
            bad = lo if lo < 0 else hi
            raise OidRangeError(
                f"oid {bad} is outside [0, {MAX_OID}], the uint32 range "
                "data pages store"
            )
    return oids.astype(np.uint32)


def bulk_load_into(tree, vectors: np.ndarray, oids: np.ndarray | None = None) -> int:
    """Populate an *empty* ``HybridTree`` with ``vectors`` in one pass.

    ``oids`` defaults to ``0..n-1``.  The tree's split policy/position and
    min-fill settings are honoured.  Returns the number of entries that had
    to fall back to per-entry :meth:`~repro.core.hybridtree.HybridTree.insert`
    because the split tree was too skewed to pack (0 for every reasonable
    ``min_fill``; see :func:`_pack_level`).
    """
    if len(tree) != 0:
        raise ValueError("bulk_load requires an empty tree")
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2 or vectors.shape[1] != tree.dims:
        raise ValueError(f"expected an (n, {tree.dims}) array")
    n = vectors.shape[0]
    if oids is None:
        oids = np.arange(n, dtype=np.uint32)
    else:
        oids = _check_oids(oids, n)
    if n == 0:
        return 0
    owns = tree._wal_begin()
    try:
        deferred = _bulk_load_inner(tree, vectors, oids, n)
    except BaseException:
        tree._wal_abort(owns)
        raise
    tree._wal_end(owns, "bulk_load")
    return deferred


def _bulk_load_inner(tree, vectors: np.ndarray, oids: np.ndarray, n: int) -> int:
    lows = vectors.min(axis=0).astype(np.float64)
    highs = vectors.max(axis=0).astype(np.float64)
    tree.bounds = tree.bounds.merge(Rect(lows, highs))

    # Root was pre-allocated as an empty data node; recycle its page.
    tree.nm.free(tree._root_id)

    def build_data_level(indices: np.ndarray) -> KDNode:
        if len(indices) <= tree.data_capacity:
            node = DataNode(tree.dims, tree.data_capacity)
            node.vectors[: len(indices)] = vectors[indices]
            node.oids[: len(indices)] = oids[indices]
            node.count = len(indices)
            node_id = tree.nm.allocate()
            tree.nm.put(node_id, node, charge=False)
            tree.els.set(node_id, node.live_rect())
            return KDLeaf(node_id)
        split = choose_data_split(
            vectors[indices].astype(np.float64),
            tree.min_fill,
            tree.split_policy,
            tree.split_position,
        )
        pos = float(np.float32(split.position))
        left = build_data_level(indices[split.left_indices])
        right = build_data_level(indices[split.right_indices])
        return KDInternal(split.dim, pos, pos, left, right)

    kd = build_data_level(np.arange(n))
    deferred: list[tuple[np.ndarray, int]] = []
    level = 1
    while isinstance(kd, KDInternal):
        kd = _pack_level(tree, kd, level, deferred)
        level += 1
    # kd is now a single leaf pointing at the root node.
    tree._root_id = kd.child_id
    tree._height = level
    tree._count = n - len(deferred)
    # Entries _pack_level could not place (pathologically skewed split
    # trees) go through the normal dynamic insert path instead.
    for vector, oid in deferred:
        tree.insert(vector, oid)
    tree.modified_since_save = True
    tree.invalidate_snapshot()
    return len(deferred)


def _collect_and_free(tree, kd: KDNode, deferred: list) -> None:
    """Dismantle an already-packed subtree: free every node under ``kd``
    (dropping its ELS boxes) and collect the raw ``(vector, oid)`` entries
    for per-insert reloading."""

    def dismantle(node_id: int) -> None:
        node = tree.nm.get(node_id, charge=False)
        if isinstance(node, DataNode):
            points = node.points()
            live = node.live_oids()
            for i in range(node.count):
                deferred.append((points[i].copy(), int(live[i])))
        else:
            for child_id in node.child_ids():
                dismantle(child_id)
        tree.nm.free(node_id)
        tree.els.drop(node_id)

    for leaf in kdnodes.iter_leaves(kd):
        dismantle(leaf.child_id)


def _pack_level(tree, kd: KDNode, level: int, deferred: list | None = None) -> KDNode:
    """Chop a kd split tree into page-sized index nodes at ``level``.

    Subtrees with at most ``index_capacity`` leaves become one index node;
    larger subtrees keep their top split and recurse, so the returned tree's
    leaves are the new (level-``level``) nodes and its internals become the
    next level's intranode structure.
    """
    if isinstance(kd, KDLeaf) or kdnodes.count_leaves(kd) <= tree.index_capacity:
        if isinstance(kd, KDLeaf):
            # A lone child cannot form a legal index node; let the caller
            # absorb it (only possible at the very top, handled by the loop).
            return kd
        node = IndexNode(kd, level)
        node_id = tree.nm.allocate()
        tree.nm.put(node_id, node, charge=False)
        lives = [tree.els.get(c) for c in node.child_ids()]
        tree.els.set(node_id, Rect.merge_all([r for r in lives if r is not None]))
        return KDLeaf(node_id)
    assert isinstance(kd, KDInternal)
    if kdnodes.count_leaves(kd.left) < 2 or kdnodes.count_leaves(kd.right) < 2:
        # A lone child next to an over-capacity sibling cannot form a legal
        # index node.  The utilization bound on splits makes leaf counts of
        # siblings comparable, so this needs a pathologically skewed split
        # tree (extreme min_fill on heavily clustered data).  Degrade
        # gracefully: dismantle the lone side, defer its entries to the
        # dynamic insert path, and pack only the bulk side.  (Both sides
        # cannot be lone: the subtree is over capacity, so >= 3 leaves.)
        if kdnodes.count_leaves(kd.left) < 2:
            lone, bulk = kd.left, kd.right
        else:
            lone, bulk = kd.right, kd.left
        assert deferred is not None, "skewed split tree outside bulk_load_into"
        _collect_and_free(tree, lone, deferred)
        return _pack_level(tree, bulk, level, deferred)
    left = _pack_level(tree, kd.left, level, deferred)
    right = _pack_level(tree, kd.right, level, deferred)
    return KDInternal(kd.dim, kd.lsp, kd.rsp, left, right)
