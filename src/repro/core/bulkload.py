"""Top-down bulk loading of a hybrid tree.

Dynamic insertion builds the paper's tree one point at a time; for large
benchmark datasets we also provide the standard top-down alternative: apply
the same split rules (EDA dimension choice, middle position, utilization
bound) recursively over the whole dataset until partitions fit a data page,
producing one global kd split tree whose leaves are data nodes; then chop
that tree into page-sized index nodes level by level.  Every split is clean
(``lsp == rsp``), so a bulk-loaded tree starts with zero overlap — the
paper's structure in its best case; subsequent dynamic inserts and deletes
work on it normally and introduce overlap only where the paper allows it.
"""

from __future__ import annotations

import numpy as np

from repro.core import kdnodes
from repro.core.kdnodes import KDInternal, KDLeaf, KDNode
from repro.core.nodes import DataNode, IndexNode
from repro.core.splits import choose_data_split
from repro.geometry.rect import Rect


def bulk_load_into(tree, vectors: np.ndarray, oids: np.ndarray | None = None) -> None:
    """Populate an *empty* ``HybridTree`` with ``vectors`` in one pass.

    ``oids`` defaults to ``0..n-1``.  The tree's split policy/position and
    min-fill settings are honoured.
    """
    if len(tree) != 0:
        raise ValueError("bulk_load requires an empty tree")
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim != 2 or vectors.shape[1] != tree.dims:
        raise ValueError(f"expected an (n, {tree.dims}) array")
    n = vectors.shape[0]
    if oids is None:
        oids = np.arange(n, dtype=np.uint32)
    else:
        oids = np.asarray(oids, dtype=np.uint32)
        if oids.shape != (n,):
            raise ValueError("oids must align with vectors")
    if n == 0:
        return

    lows = vectors.min(axis=0).astype(np.float64)
    highs = vectors.max(axis=0).astype(np.float64)
    tree.bounds = tree.bounds.merge(Rect(lows, highs))

    # Root was pre-allocated as an empty data node; recycle its page.
    tree.nm.free(tree._root_id)

    def build_data_level(indices: np.ndarray) -> KDNode:
        if len(indices) <= tree.data_capacity:
            node = DataNode(tree.dims, tree.data_capacity)
            node.vectors[: len(indices)] = vectors[indices]
            node.oids[: len(indices)] = oids[indices]
            node.count = len(indices)
            node_id = tree.nm.allocate()
            tree.nm.put(node_id, node, charge=False)
            tree.els.set(node_id, node.live_rect())
            return KDLeaf(node_id)
        split = choose_data_split(
            vectors[indices].astype(np.float64),
            tree.min_fill,
            tree.split_policy,
            tree.split_position,
        )
        pos = float(np.float32(split.position))
        left = build_data_level(indices[split.left_indices])
        right = build_data_level(indices[split.right_indices])
        return KDInternal(split.dim, pos, pos, left, right)

    kd = build_data_level(np.arange(n))
    level = 1
    while isinstance(kd, KDInternal):
        kd = _pack_level(tree, kd, level)
        level += 1
    # kd is now a single leaf pointing at the root node.
    tree._root_id = kd.child_id
    tree._height = level
    tree._count = n


def _pack_level(tree, kd: KDNode, level: int) -> KDNode:
    """Chop a kd split tree into page-sized index nodes at ``level``.

    Subtrees with at most ``index_capacity`` leaves become one index node;
    larger subtrees keep their top split and recurse, so the returned tree's
    leaves are the new (level-``level``) nodes and its internals become the
    next level's intranode structure.
    """
    if isinstance(kd, KDLeaf) or kdnodes.count_leaves(kd) <= tree.index_capacity:
        if isinstance(kd, KDLeaf):
            # A lone child cannot form a legal index node; let the caller
            # absorb it (only possible at the very top, handled by the loop).
            return kd
        node = IndexNode(kd, level)
        node_id = tree.nm.allocate()
        tree.nm.put(node_id, node, charge=False)
        lives = [tree.els.get(c) for c in node.child_ids()]
        tree.els.set(node_id, Rect.merge_all([r for r in lives if r is not None]))
        return KDLeaf(node_id)
    assert isinstance(kd, KDInternal)
    if kdnodes.count_leaves(kd.left) < 2 or kdnodes.count_leaves(kd.right) < 2:
        # A lone child next to an over-capacity sibling cannot form a legal
        # index node.  The utilization bound on splits makes leaf counts of
        # siblings comparable (ratio far below the ~225 fanout needed to hit
        # this), so the case is unreachable for any min_fill >= 0.1.
        raise NotImplementedError(
            "pathologically skewed split tree; load this dataset with insert()"
        )
    left = _pack_level(tree, kd.left, level)
    right = _pack_level(tree, kd.right, level)
    return KDInternal(kd.dim, kd.lsp, kd.rsp, left, right)
